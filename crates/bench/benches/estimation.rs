//! Headline numbers for the unified estimation layer, written both to
//! stdout and to `BENCH_estimation.json` at the workspace root so the
//! perf trajectory can be tracked across PRs.
//!
//! Three measurements:
//!
//! * raw estimate throughput over a frozen queue — the LWF/backfill
//!   re-estimation pattern — with and without the generation-keyed
//!   [`CachingPredictor`];
//! * one end-to-end wait-time experiment cell (nested forecasts), whose
//!   `Metrics` now carry the cache hit/miss counters;
//! * the scan-vs-moments accounting of [`SmithPredictor`] over a
//!   realistic prediction stream: how many history points a naive
//!   scan-everything implementation would have traversed versus how many
//!   the incremental-moment fast paths actually scanned.

use qpredict_bench::{bench, smoke_mode};
use qpredict_core::{run_wait_prediction, searched, PredictorKind};
use qpredict_predict::{CachingPredictor, RunTimePredictor, SmithPredictor};
use qpredict_search::{PredEvent, PredictionWorkload, Target};
use qpredict_sim::Algorithm;
use qpredict_workload::synthetic::toy;
use qpredict_workload::Dur;

/// A Smith predictor warmed on the first half of `wl`, as a scheduler
/// mid-trace would hold it.
fn warmed(wl: &qpredict_workload::Workload) -> SmithPredictor {
    let mut p = SmithPredictor::new(searched::set_for(wl));
    for j in wl.jobs.iter().take(wl.len() / 2) {
        p.on_complete(j);
    }
    p
}

/// Estimate throughput over an unchanged 64-job queue (the pattern every
/// scheduling attempt produces). Returns (uncached, cached) estimates
/// per second.
fn bench_queue_reestimation() -> (f64, f64) {
    let wl = toy(4_000, 64, 310);
    let probe: Vec<_> = wl.jobs.iter().skip(wl.len() / 2).take(64).collect();
    let mut plain = warmed(&wl);
    let s_plain = bench("estimation", "queue-x64/uncached", || {
        let mut acc = 0i64;
        for j in &probe {
            acc += plain.predict(j, Dur::ZERO).estimate.seconds();
        }
        acc
    });
    let mut cached = CachingPredictor::new(warmed(&wl));
    let s_cached = bench("estimation", "queue-x64/cached", || {
        let mut acc = 0i64;
        for j in &probe {
            acc += cached.predict(j, Dur::ZERO).estimate.seconds();
        }
        acc
    });
    (probe.len() as f64 / s_plain, probe.len() as f64 / s_cached)
}

/// One wait-time experiment cell end-to-end. Returns (seconds, cache hit
/// rate) — the hit rate comes from the counters the refactor put on
/// `Metrics`.
fn bench_waittime_cell() -> (f64, f64) {
    let wl = toy(400, 32, 311);
    let secs = bench("estimation", "waittime/backfill-smith", || {
        run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith)
    });
    let out = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith);
    let cache = out.metrics.estimate_cache.expect("wait study runs cached");
    (secs, cache.hit_rate())
}

/// Replay a recorded wait-prediction stream through a bare Smith
/// predictor and read its scan accounting: `scanned` is what the
/// predictor actually traversed, `naive` is what a scan-per-estimate
/// implementation would have.
fn scan_reduction() -> (u64, u64) {
    let wl = toy(1_000, 64, 312);
    let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Backfill), 2);
    let mut p = SmithPredictor::new(searched::set_for(&wl));
    for ev in &pw.events {
        match *ev {
            PredEvent::Predict { job, elapsed } => {
                p.predict(wl.job(job), elapsed);
            }
            PredEvent::Insert { job } => p.on_complete(wl.job(job)),
        }
    }
    let ops = p.estimate_ops();
    let naive = ops.scanned_points + ops.moment_points;
    (ops.scanned_points, naive)
}

/// Per-call cost of the observability layer's disarmed path (recording
/// off): one span guard plus the four counter increments the hottest
/// instrumented seam (`smith.predict`) performs. Returns seconds per
/// instrumented call, amortized over an inner loop so the timer
/// resolution doesn't dominate.
fn bench_obs_off_path() -> f64 {
    assert!(
        !qpredict_obs::recording(),
        "overhead bench measures the recording-OFF path"
    );
    const INNER: u64 = 1_000;
    let secs = bench("estimation", "obs-off/span+4-counters-x1000", || {
        let mut acc = 0u64;
        for i in 0..INNER {
            let _span = qpredict_obs::span("bench.off");
            qpredict_obs::counter_add("bench.a", 1);
            qpredict_obs::counter_add("bench.b", 1);
            qpredict_obs::counter_add("bench.c", 1);
            qpredict_obs::counter_add("bench.d", 1);
            acc = acc.wrapping_add(i);
        }
        acc
    });
    secs / INNER as f64
}

fn write_json(path: &std::path::Path, fields: &[(&str, String)]) {
    let mut s = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        s.push_str(&format!("  \"{k}\": {v}{comma}\n"));
    }
    s.push_str("}\n");
    std::fs::write(path, s).expect("write BENCH_estimation.json");
}

/// JSON number: finite, or null.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let (uncached_eps, cached_eps) = bench_queue_reestimation();
    let (waittime_secs, hit_rate) = bench_waittime_cell();
    let (scanned, naive) = scan_reduction();
    let reduction = naive as f64 / (scanned.max(1)) as f64;
    // Fraction of one uncached prediction's time that the disarmed
    // instrumentation on its path costs.
    let obs_off_per_call = bench_obs_off_path();
    let obs_off_fraction = obs_off_per_call * uncached_eps;

    // Smoke runs still exercise the emission path, but into a scratch
    // location so they never clobber the committed trajectory artifact.
    let root = if smoke_mode() {
        std::env::temp_dir()
    } else {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| {
                std::path::Path::new(&d)
                    .join("../..")
                    .canonicalize()
                    .unwrap_or_else(|_| std::path::PathBuf::from(d))
            })
            .unwrap_or_else(|_| std::path::PathBuf::from("."))
    };
    let path = root.join("BENCH_estimation.json");
    write_json(
        &path,
        &[
            ("bench", "\"estimation\"".to_string()),
            ("smoke", smoke_mode().to_string()),
            ("uncached_estimates_per_sec", num(uncached_eps)),
            ("cached_estimates_per_sec", num(cached_eps)),
            ("cache_speedup", num(cached_eps / uncached_eps)),
            ("waittime_end_to_end_sec", num(waittime_secs)),
            ("waittime_cache_hit_rate", num(hit_rate)),
            ("history_points_scanned", scanned.to_string()),
            ("history_points_naive_scan", naive.to_string()),
            ("scan_reduction_factor", num(reduction)),
            ("obs_off_ns_per_call", num(obs_off_per_call * 1e9)),
            ("obs_off_overhead_fraction", num(obs_off_fraction)),
        ],
    );
    println!("estimation/scan-reduction          {reduction:.1}x fewer points scanned");
    println!(
        "estimation/obs-off-overhead        {:.2} ns/call ({:.3}% of an uncached predict)",
        obs_off_per_call * 1e9,
        100.0 * obs_off_fraction
    );
    println!("wrote {}", path.display());
    assert!(
        reduction >= 2.0,
        "moment fast paths must eliminate >=2x of naive history scanning, got {reduction:.2}x"
    );
    assert!(
        obs_off_fraction < 0.02,
        "disarmed observability must stay under 2% of an uncached predict, \
         got {:.3}%",
        100.0 * obs_off_fraction
    );
}
