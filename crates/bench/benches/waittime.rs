//! Cost of queue wait-time prediction: one nested forecast as a function
//! of queue depth, and the full per-table pipeline at small scale.

use qpredict_bench::bench;
use qpredict_core::{forecast_start, run_wait_prediction, PredictorKind};
use qpredict_sim::{Algorithm, Snapshot};
use qpredict_workload::synthetic::toy;
use qpredict_workload::{Dur, JobId, Time};

fn bench_forecast_depth() {
    let wl = toy(1_200, 64, 304);
    for depth in [4usize, 16, 64, 256] {
        // Build a consistent snapshot: job 0 running, `depth` jobs
        // queued, the target last.
        let snap = Snapshot {
            now: Time(1_000_000),
            free_nodes: wl.machine_nodes - wl.jobs[0].nodes,
            running: vec![(JobId(0), Time(999_000))],
            queued: (1..=depth as u32).map(|i| (JobId(i), i as u64)).collect(),
        };
        for alg in [Algorithm::Fcfs, Algorithm::Backfill] {
            bench("forecast", &format!("{}/{depth}", alg.name()), || {
                forecast_start(
                    &wl,
                    alg,
                    &snap,
                    |j, e| j.limit_or_max().min(Dur(36_000)).max(e + Dur(1)),
                    |j, e| j.runtime.max(e + Dur(1)),
                    JobId(depth as u32),
                )
            });
        }
    }
}

fn bench_wait_pipeline() {
    let wl = toy(400, 32, 305);
    for kind in [PredictorKind::Actual, PredictorKind::Smith] {
        bench(
            "wait-pipeline",
            &format!("backfill-400jobs/{}", kind.name()),
            || run_wait_prediction(&wl, Algorithm::Backfill, kind.clone()),
        );
    }
}

fn main() {
    bench_forecast_depth();
    bench_wait_pipeline();
}
