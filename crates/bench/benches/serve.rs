//! Throughput of the online predictor service, written both to stdout and
//! to `BENCH_serve.json` at the workspace root so the perf trajectory can
//! be tracked across PRs.
//!
//! Four configurations feed the same synthesized event stream end to end:
//!
//! * ephemeral — no WAL, no snapshots (the deterministic core alone);
//! * WAL with `fsync never` — durability writes without sync cost;
//! * WAL with `fsync batch` — the default batched-sync policy;
//! * WAL with `fsync always` — a sync per event, the worst case.
//!
//! Every run must end on the same state fingerprint — the bench doubles
//! as a cheap cross-policy determinism check.

use std::path::PathBuf;

use qpredict_bench::{bench, smoke_mode};
use qpredict_serve::{FsyncPolicy, ServeConfig, Service};
use qpredict_workload::synthesize_events;
use qpredict_workload::synthetic::toy;

fn event_stream(jobs: usize) -> Vec<String> {
    let wl = toy(jobs, 64, 313);
    synthesize_events(&wl, 8)
        .iter()
        .map(|e| e.encode())
        .collect()
}

fn cfg(fsync: FsyncPolicy) -> ServeConfig {
    ServeConfig {
        snapshot_every: 64,
        fsync,
        ..ServeConfig::default()
    }
}

/// A scratch state directory, recreated empty for every run (a fresh
/// durable open refuses a directory that already holds a WAL).
fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("qpredict-bench-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench state dir");
    dir
}

/// Feed the whole stream through one service; returns the final state
/// fingerprint so callers can check cross-policy determinism.
fn run_stream(lines: &[String], durable: Option<(&PathBuf, FsyncPolicy)>) -> u64 {
    let (config, dir) = match durable {
        Some((dir, fsync)) => (cfg(fsync), Some(dir.as_path())),
        None => (cfg(FsyncPolicy::Never), None),
    };
    let mut svc = Service::open(config, dir, None, false).expect("open service");
    for l in lines {
        svc.feed_line(l).expect("feed");
    }
    svc.finish().expect("finish");
    svc.state().fingerprint()
}

/// Events per second for one durability policy. Cleans the state dir
/// between iterations inside the timed closure: recreating an empty
/// directory is part of what a fresh service run costs.
fn bench_policy(lines: &[String], label: &str, policy: Option<FsyncPolicy>) -> (f64, u64) {
    let mut fp = 0u64;
    let secs = match policy {
        None => bench("serve", label, || {
            fp = run_stream(lines, None);
            fp
        }),
        Some(p) => {
            let tag = label.replace('/', "-");
            bench("serve", label, || {
                let dir = fresh_dir(&tag);
                fp = run_stream(lines, Some((&dir, p)));
                fp
            })
        }
    };
    (lines.len() as f64 / secs, fp)
}

fn write_json(path: &std::path::Path, fields: &[(&str, String)]) {
    let mut s = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        s.push_str(&format!("  \"{k}\": {v}{comma}\n"));
    }
    s.push_str("}\n");
    std::fs::write(path, s).expect("write BENCH_serve.json");
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let jobs = if smoke_mode() { 40 } else { 250 };
    let lines = event_stream(jobs);

    let (eps_ephemeral, fp0) = bench_policy(&lines, "ephemeral", None);
    let (eps_never, fp1) = bench_policy(&lines, "wal/fsync-never", Some(FsyncPolicy::Never));
    let (eps_batch, fp2) = bench_policy(&lines, "wal/fsync-batch64", Some(FsyncPolicy::Batch(64)));
    let (eps_always, fp3) = bench_policy(&lines, "wal/fsync-always", Some(FsyncPolicy::Always));

    assert!(
        fp0 == fp1 && fp1 == fp2 && fp2 == fp3,
        "state fingerprints diverged across durability policies: \
         {fp0:016X} {fp1:016X} {fp2:016X} {fp3:016X}"
    );

    let root = if smoke_mode() {
        std::env::temp_dir()
    } else {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| {
                std::path::Path::new(&d)
                    .join("../..")
                    .canonicalize()
                    .unwrap_or_else(|_| std::path::PathBuf::from(d))
            })
            .unwrap_or_else(|_| std::path::PathBuf::from("."))
    };
    let path = root.join("BENCH_serve.json");
    write_json(
        &path,
        &[
            ("bench", "\"serve\"".to_string()),
            ("smoke", smoke_mode().to_string()),
            ("stream_events", lines.len().to_string()),
            ("events_per_sec_ephemeral", num(eps_ephemeral)),
            ("events_per_sec_wal_fsync_never", num(eps_never)),
            ("events_per_sec_wal_fsync_batch64", num(eps_batch)),
            ("events_per_sec_wal_fsync_always", num(eps_always)),
            (
                "fsync_batching_speedup",
                num(eps_batch / eps_always.max(1e-12)),
            ),
            (
                "wal_overhead_fraction",
                num(1.0 - eps_never / eps_ephemeral.max(1e-12)),
            ),
        ],
    );
    println!(
        "serve/fsync-batching-speedup       {:.1}x over fsync-always",
        eps_batch / eps_always.max(1e-12)
    );
    println!("wrote {}", path.display());
}
