//! Engine throughput: jobs scheduled per second under each algorithm,
//! and availability-profile microbenchmarks.

use qpredict_bench::bench;
use qpredict_sim::{ActualEstimator, Algorithm, MaxRuntimeEstimator, Profile, Simulation};
use qpredict_workload::synthetic::toy;
use qpredict_workload::{Dur, Time};

fn bench_engine() {
    let wl = toy(2_000, 64, 301);
    for alg in Algorithm::ALL {
        bench("engine", &format!("oracle/{}", alg.name()), || {
            Simulation::run(&wl, alg, &mut ActualEstimator)
        });
    }
    // Backfill is the estimator-hungry algorithm; measure it with the
    // max-runtime estimator too (the EASY configuration).
    let mut est = MaxRuntimeEstimator::from_workload(&wl);
    bench("engine", "maxrt/Backfill", || {
        Simulation::run(&wl, Algorithm::Backfill, &mut est)
    });
}

fn bench_profile() {
    for n_running in [8usize, 64, 256] {
        let running: Vec<(u32, Time)> = (0..n_running)
            .map(|i| (1 + (i as u32 % 4), Time(100 + 37 * i as i64)))
            .collect();
        bench("profile", &format!("build/{n_running}"), || {
            Profile::new(1024, Time(0), &running)
        });
        bench("profile", &format!("fit+reserve x32/{n_running}"), || {
            let mut p = Profile::new(1024, Time(0), &running);
            for k in 0..32u32 {
                let nodes = 1 + k % 64;
                let at = p.earliest_fit(nodes, Dur(50 + k as i64));
                p.reserve(at, Dur(50 + k as i64), nodes);
            }
            p
        });
    }
}

fn main() {
    bench_engine();
    bench_profile();
}
