//! Engine throughput: jobs scheduled per second under each algorithm,
//! and availability-profile microbenchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use qpredict_sim::{ActualEstimator, Algorithm, MaxRuntimeEstimator, Profile, Simulation};
use qpredict_workload::synthetic::toy;
use qpredict_workload::{Dur, Time};

fn bench_engine(c: &mut Criterion) {
    let wl = toy(2_000, 64, 301);
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(wl.len() as u64));
    for alg in Algorithm::ALL {
        g.bench_with_input(BenchmarkId::new("oracle", alg.name()), &alg, |b, &alg| {
            b.iter(|| Simulation::run(&wl, alg, &mut ActualEstimator))
        });
    }
    // Backfill is the estimator-hungry algorithm; measure it with the
    // max-runtime estimator too (the EASY configuration).
    let mut est = MaxRuntimeEstimator::from_workload(&wl);
    g.bench_function("maxrt/Backfill", |b| {
        b.iter(|| Simulation::run(&wl, Algorithm::Backfill, &mut est))
    });
    g.finish();
}

fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile");
    for n_running in [8usize, 64, 256] {
        let running: Vec<(u32, Time)> = (0..n_running)
            .map(|i| (1 + (i as u32 % 4), Time(100 + 37 * i as i64)))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("build", n_running),
            &running,
            |b, running| b.iter(|| Profile::new(1024, Time(0), running)),
        );
        g.bench_with_input(
            BenchmarkId::new("fit+reserve x32", n_running),
            &running,
            |b, running| {
                b.iter(|| {
                    let mut p = Profile::new(1024, Time(0), running);
                    for k in 0..32u32 {
                        let nodes = 1 + k % 64;
                        let at = p.earliest_fit(nodes, Dur(50 + k as i64));
                        p.reserve(at, Dur(50 + k as i64), nodes);
                    }
                    p
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engine, bench_profile);
criterion_main!(benches);
