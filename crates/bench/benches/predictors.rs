//! Predictor microbenchmarks: cost of one prediction and one history
//! insertion for each predictor, after realistic warm-up.

use qpredict_bench::bench;
use qpredict_core::PredictorKind;
use qpredict_predict::RunTimePredictor;
use qpredict_workload::synthetic::toy;
use qpredict_workload::Dur;

fn warmed(kind: &PredictorKind, wl: &qpredict_workload::Workload) -> impl RunTimePredictor {
    let mut p = kind.build(wl);
    for j in wl.jobs.iter().take(wl.len() / 2) {
        p.on_complete(j);
    }
    p
}

fn bench_predict() {
    let wl = toy(4_000, 64, 302);
    let probe: Vec<_> = wl.jobs.iter().skip(wl.len() / 2).take(64).collect();
    for kind in PredictorKind::ALL {
        let mut p = warmed(&kind, &wl);
        bench("predict", &format!("queued/{}", kind.name()), || {
            let mut acc = 0i64;
            for j in &probe {
                acc += p.predict(j, Dur::ZERO).estimate.seconds();
            }
            acc
        });
        let mut p = warmed(&kind, &wl);
        bench("predict", &format!("running/{}", kind.name()), || {
            let mut acc = 0i64;
            for j in &probe {
                acc += p.predict(j, Dur(600)).estimate.seconds();
            }
            acc
        });
    }
}

fn bench_insert() {
    let wl = toy(4_000, 64, 303);
    for kind in [
        PredictorKind::Smith,
        PredictorKind::Gibbons,
        PredictorKind::DowneyMedian,
    ] {
        bench(
            "insert",
            &format!("on_complete x1000/{}", kind.name()),
            || {
                let mut p = kind.build(&wl);
                for j in wl.jobs.iter().take(1000) {
                    p.on_complete(j);
                }
                p.predict(&wl.jobs[2000], Dur::ZERO).estimate
            },
        );
    }
}

fn main() {
    bench_predict();
    bench_insert();
}
