//! Predictor microbenchmarks: cost of one prediction and one history
//! insertion for each predictor, after realistic warm-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qpredict_core::PredictorKind;
use qpredict_predict::RunTimePredictor;
use qpredict_workload::synthetic::toy;
use qpredict_workload::Dur;

fn warmed(kind: &PredictorKind, wl: &qpredict_workload::Workload) -> impl RunTimePredictor {
    let mut p = kind.build(wl);
    for j in wl.jobs.iter().take(wl.len() / 2) {
        p.on_complete(j);
    }
    p
}

fn bench_predict(c: &mut Criterion) {
    let wl = toy(4_000, 64, 302);
    let probe: Vec<_> = wl.jobs.iter().skip(wl.len() / 2).take(64).collect();
    let mut g = c.benchmark_group("predict");
    for kind in PredictorKind::ALL {
        let mut p = warmed(&kind, &wl);
        g.bench_with_input(
            BenchmarkId::new("queued", kind.name()),
            &kind,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0i64;
                    for j in &probe {
                        acc += p.predict(j, Dur::ZERO).estimate.seconds();
                    }
                    acc
                })
            },
        );
        let mut p = warmed(&kind, &wl);
        g.bench_with_input(
            BenchmarkId::new("running", kind.name()),
            &kind,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0i64;
                    for j in &probe {
                        acc += p.predict(j, Dur(600)).estimate.seconds();
                    }
                    acc
                })
            },
        );
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let wl = toy(4_000, 64, 303);
    let mut g = c.benchmark_group("insert");
    for kind in [PredictorKind::Smith, PredictorKind::Gibbons, PredictorKind::DowneyMedian] {
        g.bench_with_input(
            BenchmarkId::new("on_complete x1000", kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut p = kind.build(&wl);
                    for j in wl.jobs.iter().take(1000) {
                        p.on_complete(j);
                    }
                    p.predict(&wl.jobs[2000], Dur::ZERO).estimate
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_predict, bench_insert);
criterion_main!(benches);
