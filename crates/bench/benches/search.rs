//! Search-machinery benchmarks: fitness evaluation throughput, one GA
//! generation, and chromosome encode/decode.

use qpredict_bench::bench;
use qpredict_predict::TemplateSet;
use qpredict_search::{decode, encode, evaluate, search, GaConfig, PredictionWorkload, Target};
use qpredict_sim::Algorithm;
use qpredict_workload::synthetic::toy;
use qpredict_workload::Characteristic;

fn bench_fitness() {
    let wl = toy(1_000, 64, 306);
    let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 2);
    let set = TemplateSet::default_for(
        &[
            Characteristic::User,
            Characteristic::Executable,
            Characteristic::Arguments,
        ],
        true,
    );
    bench(
        "fitness",
        &format!("evaluate/{}preds", pw.n_predictions),
        || evaluate(&set, &wl, &pw),
    );
}

fn bench_ga_generation() {
    let wl = toy(500, 64, 307);
    let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
    bench("ga", "pop12-gen2", || {
        let cfg = GaConfig {
            population: 12,
            generations: 2,
            threads: 1,
            seed: 9,
            ..GaConfig::default()
        };
        search(&wl, &pw, &cfg)
    });
}

fn bench_encoding() {
    let set = TemplateSet::default_for(
        &[
            Characteristic::User,
            Characteristic::Queue,
            Characteristic::Executable,
        ],
        true,
    );
    let bits = encode(&set);
    bench("encoding", "encode", || encode(&set));
    bench("encoding", "decode", || decode(&bits));
}

fn main() {
    bench_fitness();
    bench_ga_generation();
    bench_encoding();
}
