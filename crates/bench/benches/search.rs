//! Search-machinery benchmarks: fitness evaluation throughput, one GA
//! generation, and chromosome encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use qpredict_predict::TemplateSet;
use qpredict_search::{decode, encode, evaluate, search, GaConfig, PredictionWorkload, Target};
use qpredict_sim::Algorithm;
use qpredict_workload::synthetic::toy;
use qpredict_workload::Characteristic;

fn bench_fitness(c: &mut Criterion) {
    let wl = toy(1_000, 64, 306);
    let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 2);
    let set = TemplateSet::default_for(
        &[
            Characteristic::User,
            Characteristic::Executable,
            Characteristic::Arguments,
        ],
        true,
    );
    let mut g = c.benchmark_group("fitness");
    g.throughput(Throughput::Elements(pw.n_predictions as u64));
    g.bench_with_input(
        BenchmarkId::new("evaluate", pw.n_predictions),
        &pw,
        |b, pw| b.iter(|| evaluate(&set, &wl, pw)),
    );
    g.finish();
}

fn bench_ga_generation(c: &mut Criterion) {
    let wl = toy(500, 64, 307);
    let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
    let mut g = c.benchmark_group("ga");
    g.sample_size(10);
    g.bench_function("pop12-gen2", |b| {
        b.iter(|| {
            let cfg = GaConfig {
                population: 12,
                generations: 2,
                threads: 1,
                seed: 9,
                ..GaConfig::default()
            };
            search(&wl, &pw, &cfg)
        })
    });
    g.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let set = TemplateSet::default_for(
        &[
            Characteristic::User,
            Characteristic::Queue,
            Characteristic::Executable,
        ],
        true,
    );
    let bits = encode(&set);
    let mut g = c.benchmark_group("encoding");
    g.bench_function("encode", |b| b.iter(|| encode(&set)));
    g.bench_function("decode", |b| b.iter(|| decode(&bits)));
    g.finish();
}

criterion_group!(benches, bench_fitness, bench_ga_generation, bench_encoding);
criterion_main!(benches);
