//! Regenerate the paper's tables.
//!
//! ```text
//! paper [--jobs N|--jobs full] [--threads T] [--out FILE] <what>...
//!
//! what: table1 table2 table3 table4 ... table15 compress2x ga-ablation
//!       ga-search all
//! ```
//!
//! `all` regenerates tables 1–15 plus the compressed-SDSC experiment and
//! writes a markdown report (default `experiments_data.md`).
//! `ga-search` runs the genetic template search per workload and prints
//! the winning template sets (expensive; scale with `--jobs`).

use std::fmt::Write as _;
use std::time::Instant;

use qpredict_bench::{human_secs, parse_scale};
use qpredict_core::grid::default_threads;
use qpredict_core::paper::{self, Scale};
use qpredict_core::tables::Table;
use qpredict_core::PredictorKind;
use qpredict_search::{
    greedy_search, search, search_supervised, GaConfig, GreedyConfig, PredictionWorkload,
    SupervisorConfig, Target,
};
use qpredict_sim::Algorithm;
use qpredict_workload::Workload;

struct Args {
    scale: Scale,
    threads: usize,
    out: Option<String>,
    what: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Full,
        threads: default_threads(),
        out: None,
        what: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().expect("--jobs needs a value");
                args.scale = parse_scale(&v).expect("--jobs takes `full` or a count");
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads takes a count");
            }
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: paper [--jobs N|full] [--threads T] [--out FILE] \
                     <table1..table15|compress2x|statewait|easy-ablation|\
                     ga-ablation|ga-search|all>..."
                );
                std::process::exit(0);
            }
            other => args.what.push(other.to_string()),
        }
    }
    if args.what.is_empty() {
        args.what.push("all".to_string());
    }
    args
}

fn emit(report: &mut String, t: &Table) {
    println!("{t}");
    let _ = writeln!(report, "{}", t.to_markdown());
}

fn run_one(what: &str, wls: &[Workload], threads: usize, report: &mut String) {
    let started = Instant::now();
    match what {
        "table1" => emit(report, &paper::table1(wls)),
        "table2" => emit(report, &paper::table2(wls)),
        "table3" => emit(report, &paper::table3()),
        "table4" | "table5" | "table6" | "table7" | "table8" | "table9" => {
            let n: u8 = what[5..].parse().expect("table number");
            emit(report, &paper::wait_table(n, wls, threads));
        }
        "table10" | "table11" | "table12" | "table13" | "table14" | "table15" => {
            let n: u8 = what[5..].parse().expect("table number");
            emit(report, &paper::sched_table(n, wls, threads));
        }
        "compress2x" => emit(report, &paper::compress2x(wls, threads)),
        "ga-ablation" => emit(report, &ga_ablation(wls, threads)),
        "ga-search" => emit(report, &ga_search(wls, threads)),
        "statewait" => emit(report, &statewait_table(wls, threads)),
        "easy-ablation" => emit(report, &easy_ablation(wls, threads)),
        "warmup" => emit(report, &warmup_table(wls, threads)),
        other => {
            eprintln!("unknown experiment {other:?}; see --help");
            std::process::exit(2);
        }
    }
    eprintln!("[{what}: {}]", human_secs(started.elapsed().as_secs_f64()));
}

/// Search-strategy ablation (DESIGN.md `ga-ablation`): default templates
/// vs greedy search vs the GA, scored on the ANL wait-prediction stream.
fn ga_ablation(wls: &[Workload], threads: usize) -> Table {
    let wl = &wls[0]; // ANL
    let pw = PredictionWorkload::build_capped(wl, Target::WaitPrediction(Algorithm::Lwf), 30_000);
    let mut t = Table::new(
        "ga-ablation",
        format!(
            "Template-search ablation on {} ({} predictions): run-time MAE",
            wl.name, pw.n_predictions
        ),
        &["Strategy", "RT MAE (min)", "Templates", "Evaluations"],
    );

    let curated = qpredict_core::searched::curated_seed_for(wl);
    let e = qpredict_search::evaluate(&curated, wl, &pw);
    t.push_row(vec![
        "curated seed".into(),
        format!("{:.2}", e.mean_abs_error_min()),
        curated.len().to_string(),
        "1".into(),
    ]);
    let shipped = qpredict_core::searched::set_for(wl);
    let e = qpredict_search::evaluate(&shipped, wl, &pw);
    t.push_row(vec![
        "shipped GA set".into(),
        format!("{:.2}", e.mean_abs_error_min()),
        shipped.len().to_string(),
        "1".into(),
    ]);

    let (greedy_set, traj) = greedy_search(
        wl,
        &pw,
        &GreedyConfig {
            max_templates: 6,
            threads,
        },
    );
    let e = qpredict_search::evaluate(&greedy_set, wl, &pw);
    t.push_row(vec![
        "greedy".into(),
        format!("{:.2}", e.mean_abs_error_min()),
        greedy_set.len().to_string(),
        format!("~{}", traj.len() * 40),
    ]);

    let cfg = GaConfig {
        population: 24,
        generations: 12,
        threads,
        seeds: vec![curated],
        ..GaConfig::default()
    };
    let ga = search(wl, &pw, &cfg);
    t.push_row(vec![
        "genetic algorithm".into(),
        format!("{:.2}", ga.best_error_min),
        ga.best.len().to_string(),
        ga.evaluations.to_string(),
    ]);
    t
}

/// Run the GA per workload, validate the winner against the curated set
/// on a held-out stream, and print the better set (plus paste-ready Rust
/// for `qpredict-core/src/searched.rs`).
fn ga_search(wls: &[Workload], threads: usize) -> Table {
    let mut t = Table::new(
        "ga-search",
        "Genetic template search per workload (train/validate on wait-prediction streams)",
        &[
            "Workload",
            "Curated val MAE",
            "GA val MAE",
            "Winner",
            "Health",
        ],
    );
    for wl in wls {
        let train =
            PredictionWorkload::build_capped(wl, Target::WaitPrediction(Algorithm::Lwf), 30_000);
        // Held-out validation: the stream a *backfill* scheduler demands
        // (different instants, includes running jobs).
        let val = PredictionWorkload::build_capped(
            wl,
            Target::WaitPrediction(Algorithm::Backfill),
            30_000,
        );
        let curated = qpredict_core::searched::curated_seed_for(wl);
        let cfg = GaConfig {
            population: 28,
            generations: 20,
            threads,
            seeds: vec![curated.clone()],
            ..GaConfig::default()
        };
        let sup = SupervisorConfig {
            threads,
            ..SupervisorConfig::default()
        };
        let supervised =
            search_supervised(wl, &train, &cfg, &sup, None).expect("unfaulted search is clean");
        let (r, health) = (supervised.result, supervised.health);
        let curated_val = qpredict_search::evaluate(&curated, wl, &val).mean_abs_error_min();
        let ga_val = qpredict_search::evaluate(&r.best, wl, &val).mean_abs_error_min();
        let ga_wins = ga_val < curated_val;
        t.push_row(vec![
            wl.name.clone(),
            format!("{curated_val:.2}"),
            format!("{ga_val:.2}"),
            if ga_wins { "GA" } else { "curated" }.to_string(),
            format!(
                "{} attempts, {} retries, {} quarantined",
                health.attempts, health.retries, health.quarantined
            ),
        ]);
        if ga_wins {
            eprintln!(
                "// {}: GA set (val MAE {ga_val:.2} min vs curated {curated_val:.2})",
                wl.name
            );
            eprintln!("{}", set_to_rust(&r.best));
        }
    }
    t
}

/// Extension experiment (the paper's stated future work): the
/// state-based wait-time predictor vs the simulation-based technique,
/// on the algorithm where the paper hoped it would help — LWF, whose
/// simulation-based predictions carry a large built-in error.
fn statewait_table(wls: &[Workload], threads: usize) -> Table {
    use qpredict_core::{run_state_wait_prediction, run_wait_prediction};
    let algs = [Algorithm::Lwf, Algorithm::Backfill];
    let cells: Vec<_> = wls
        .iter()
        .flat_map(|w| {
            algs.iter().map(move |&alg| {
                move || {
                    let sim = run_wait_prediction(w, alg, PredictorKind::Smith);
                    let state = run_state_wait_prediction(w, alg, PredictorKind::Smith);
                    (sim, state)
                }
            })
        })
        .collect();
    let outcomes = qpredict_core::run_cells(cells, threads);
    let mut t = Table::new(
        "statewait",
        "Future-work extension: state-based vs simulation-based wait prediction (MAE min / % of mean wait)",
        &[
            "Workload",
            "Algorithm",
            "Simulation MAE",
            "Sim %",
            "State MAE",
            "State %",
        ],
    );
    for (sim, state) in outcomes {
        t.push_row(vec![
            sim.workload.clone(),
            sim.algorithm.name().to_string(),
            format!("{:.2}", sim.wait_errors.mean_abs_error_min()),
            format!("{:.0}", sim.wait_errors.pct_of_mean_actual()),
            format!("{:.2}", state.wait_errors.mean_abs_error_min()),
            format!("{:.0}", state.wait_errors.pct_of_mean_actual()),
        ]);
    }
    t
}

/// Extension: the paper's suggested training-set fix for the cold-start
/// ramp-up. Evaluates the Smith predictor on each trace's second half,
/// cold vs pre-trained on the first half.
fn warmup_table(wls: &[Workload], threads: usize) -> Table {
    use qpredict_core::{run_wait_prediction, run_wait_prediction_warm};
    let cells: Vec<_> = wls
        .iter()
        .map(|w| {
            move || {
                let half = w.len() / 2;
                let eval = w.suffix(half);
                let cold = run_wait_prediction(&eval, Algorithm::Backfill, PredictorKind::Smith);
                let warm =
                    run_wait_prediction_warm(w, Algorithm::Backfill, PredictorKind::Smith, half);
                (cold, warm)
            }
        })
        .collect();
    let outcomes = qpredict_core::run_cells(cells, threads);
    let mut t = Table::new(
        "warmup",
        "Cold start vs training-set initialization (Smith, backfill, second half of each trace)",
        &[
            "Workload",
            "Cold RT MAE",
            "Warm RT MAE",
            "Cold wait MAE",
            "Warm wait MAE",
        ],
    );
    for (w, (cold, warm)) in wls.iter().zip(outcomes) {
        t.push_row(vec![
            w.name.clone(),
            format!("{:.2}", cold.runtime_errors.mean_abs_error_min()),
            format!("{:.2}", warm.runtime_errors.mean_abs_error_min()),
            format!("{:.2}", cold.wait_errors.mean_abs_error_min()),
            format!("{:.2}", warm.wait_errors.mean_abs_error_min()),
        ]);
    }
    t
}

/// Ablation: the paper's conservative backfill vs EASY backfill, under
/// maximum run times and under the Smith predictor.
fn easy_ablation(wls: &[Workload], threads: usize) -> Table {
    use qpredict_core::run_scheduling;
    let kinds = [PredictorKind::MaxRuntime, PredictorKind::Smith];
    let algs = [Algorithm::Backfill, Algorithm::EasyBackfill];
    let mut cells: Vec<Box<dyn FnOnce() -> qpredict_core::SchedulingOutcome + Send + '_>> =
        Vec::new();
    for w in wls {
        for kind in &kinds {
            for &alg in &algs {
                let kind = kind.clone();
                cells.push(Box::new(move || run_scheduling(w, alg, kind)));
            }
        }
    }
    let outcomes = qpredict_core::run_cells(cells, threads);
    let mut t = Table::new(
        "easy-ablation",
        "Backfill flavour ablation: conservative (paper) vs EASY mean waits (min)",
        &["Workload", "Predictor", "Conservative", "EASY"],
    );
    let mut it = outcomes.into_iter();
    for w in wls {
        for kind in &kinds {
            let cons = it.next().expect("grid shape");
            let easy = it.next().expect("grid shape");
            t.push_row(vec![
                w.name.clone(),
                kind.name().to_string(),
                format!("{:.2}", cons.metrics.mean_wait.minutes()),
                format!("{:.2}", easy.metrics.mean_wait.minutes()),
            ]);
        }
    }
    t
}

/// Render a template set as paste-ready Rust for `searched.rs`.
fn set_to_rust(set: &qpredict_predict::TemplateSet) -> String {
    use std::fmt::Write;
    let mut out = String::from("TemplateSet::new(vec![\n");
    for t in set.templates() {
        let chars: Vec<String> = t.chars.iter().map(|c| format!("C::{c:?}")).collect();
        let _ = write!(out, "    Template::mean_over(&[{}])", chars.join(", "));
        match t.estimator {
            qpredict_predict::EstimatorKind::Mean => {}
            other => {
                let _ = write!(out, ".with_estimator(EstimatorKind::{other:?})");
            }
        }
        if let Some(k) = t.node_range_log2 {
            let _ = write!(out, ".with_node_range({k})");
        }
        if let Some(h) = t.max_history {
            let _ = write!(out, ".with_max_history({h})");
        }
        if t.relative {
            let _ = write!(out, ".relative()");
        }
        if t.use_rtime {
            let _ = write!(out, ".with_rtime()");
        }
        let _ = writeln!(out, ",");
    }
    out.push_str("])");
    out
}

fn main() {
    let args = parse_args();
    let what: Vec<String> = if args.what.iter().any(|w| w == "all") {
        let mut v: Vec<String> = (1..=15).map(|i| format!("table{i}")).collect();
        v.push("compress2x".into());
        v.push("statewait".into());
        v.push("easy-ablation".into());
        v.push("warmup".into());
        v
    } else {
        args.what.clone()
    };

    let t0 = Instant::now();
    eprintln!(
        "generating workloads ({:?}, {} threads)...",
        args.scale, args.threads
    );
    let wls = paper::workloads(args.scale);
    eprintln!("[workloads: {}]", human_secs(t0.elapsed().as_secs_f64()));

    let mut report = String::new();
    let _ = writeln!(
        report,
        "# qpredict experiment data\n\nScale: {:?}; threads: {}.\n",
        args.scale, args.threads
    );
    // Oracle predictor sanity marker for the report.
    let _ = writeln!(
        report,
        "Predictors: {}.\n",
        PredictorKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for w in &what {
        run_one(w, &wls, args.threads, &mut report);
    }
    if let Some(path) = &args.out {
        std::fs::write(path, &report).expect("write report");
        eprintln!("report written to {path}");
    }
    eprintln!("[total: {}]", human_secs(t0.elapsed().as_secs_f64()));
}
