//! Shared helpers for the benchmark harness and the `paper` table
//! regenerator.

use qpredict_core::paper::Scale;

/// Parse a `--jobs N` style scale argument (`full` or a job count).
pub fn parse_scale(s: &str) -> Option<Scale> {
    if s.eq_ignore_ascii_case("full") {
        return Some(Scale::Full);
    }
    s.parse::<usize>().ok().map(Scale::Jobs)
}

/// Render a duration in seconds human-readably.
pub fn human_secs(s: f64) -> String {
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.1} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("full"), Some(Scale::Full));
        assert_eq!(parse_scale("FULL"), Some(Scale::Full));
        assert_eq!(parse_scale("2500"), Some(Scale::Jobs(2500)));
        assert_eq!(parse_scale("x"), None);
    }

    #[test]
    fn human_times() {
        assert_eq!(human_secs(5.0), "5.0 s");
        assert_eq!(human_secs(120.0), "2.0 min");
    }
}
