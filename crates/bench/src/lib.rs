//! Shared helpers for the benchmark harness and the `paper` table
//! regenerator.
//!
//! The benchmarks use the self-contained [`bench()`] timer rather than an
//! external harness crate: the workspace must build with no dependencies
//! outside the standard library (offline environments), and plain
//! wall-clock medians are enough to catch the order-of-magnitude
//! regressions these benches exist to guard.

use std::hint::black_box;
use std::time::Instant;

use qpredict_core::paper::Scale;

/// One-iteration smoke mode, for CI: `QPREDICT_BENCH_SMOKE=1` makes
/// every [`bench()`] call run its closure exactly once and report that
/// single timing. The numbers are meaningless as benchmarks; the point
/// is that every bench *executes* (panics, assertion failures, and JSON
/// emission bugs surface) in seconds instead of minutes.
pub fn smoke_mode() -> bool {
    std::env::var_os("QPREDICT_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Time `f` and print its median per-iteration cost as
/// `<group>/<label>  <time>`. Runs a few warm-up iterations, then enough
/// timed batches to damp scheduler noise. Returns the median seconds per
/// iteration so callers can post-process if they wish.
pub fn bench<T>(group: &str, label: &str, mut f: impl FnMut() -> T) -> f64 {
    if smoke_mode() {
        let t = Instant::now();
        black_box(f());
        let s = t.elapsed().as_secs_f64().max(1e-9);
        println!("{group}/{label:<28} {} (smoke)", human_iter_time(s));
        return s;
    }
    // Warm up and estimate a batch size targeting ~50 ms per batch.
    let warm = Instant::now();
    black_box(f());
    black_box(f());
    let per_iter = (warm.elapsed().as_secs_f64() / 2.0).max(1e-9);
    let batch = ((0.05 / per_iter) as usize).clamp(1, 1_000_000);
    let mut samples = Vec::with_capacity(7);
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    println!("{group}/{label:<28} {}", human_iter_time(median));
    median
}

/// Render a per-iteration time with an adaptive unit.
fn human_iter_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s/iter")
    } else if s >= 1e-3 {
        format!("{:.3} ms/iter", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs/iter", s * 1e6)
    } else {
        format!("{:.1} ns/iter", s * 1e9)
    }
}

/// Parse a `--jobs N` style scale argument (`full` or a job count).
pub fn parse_scale(s: &str) -> Option<Scale> {
    if s.eq_ignore_ascii_case("full") {
        return Some(Scale::Full);
    }
    s.parse::<usize>().ok().map(Scale::Jobs)
}

/// Render a duration in seconds human-readably.
pub fn human_secs(s: f64) -> String {
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.1} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("full"), Some(Scale::Full));
        assert_eq!(parse_scale("FULL"), Some(Scale::Full));
        assert_eq!(parse_scale("2500"), Some(Scale::Jobs(2500)));
        assert_eq!(parse_scale("x"), None);
    }

    #[test]
    fn human_times() {
        assert_eq!(human_secs(5.0), "5.0 s");
        assert_eq!(human_secs(120.0), "2.0 min");
    }
}
