//! Deeper workload analysis: distributions, identity-group structure,
//! and estimate quality.
//!
//! These diagnostics answer the question a user of history-based
//! prediction must ask of any trace before trusting the technique: *does
//! job identity actually carry run-time information here?* They quantify
//! the within-group vs global dispersion the paper's templates exploit,
//! the shape of the run-time distribution Downey's model assumes, and how
//! loose the user-supplied limits are.

use std::collections::HashMap;

use crate::job::Characteristic;
use crate::symbols::Sym;
use crate::workload::Workload;

/// Quantiles of a sample (seconds, minutes — caller's unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Quantiles {
    /// Compute quantiles of `values` (need not be sorted). Returns zeros
    /// for an empty sample.
    pub fn of(values: &[f64]) -> Quantiles {
        if values.is_empty() {
            return Quantiles {
                p10: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| -> f64 {
            let idx = (p * (v.len() - 1) as f64).round() as usize;
            v[idx.min(v.len() - 1)]
        };
        Quantiles {
            p10: q(0.10),
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
            max: *v.last().expect("non-empty"),
        }
    }
}

/// How much run-time information a grouping characteristic carries.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDispersion {
    /// Which characteristics define the groups.
    pub group_by: Vec<Characteristic>,
    /// Number of groups with at least `min_group` members.
    pub groups: usize,
    /// Jobs covered by those groups.
    pub covered_jobs: usize,
    /// Mean absolute deviation of run times around the global mean,
    /// seconds.
    pub global_mad: f64,
    /// Mean absolute deviation around each group's own mean, pooled,
    /// seconds.
    pub within_mad: f64,
}

impl GroupDispersion {
    /// `within_mad / global_mad`: below 1.0 means the grouping predicts;
    /// the smaller, the better. 1.0 when undefined.
    pub fn dispersion_ratio(&self) -> f64 {
        if self.global_mad > 0.0 {
            self.within_mad / self.global_mad
        } else {
            1.0
        }
    }
}

/// Measure how strongly jobs sharing the `group_by` characteristics
/// cluster in run time. Groups smaller than `min_group` are ignored.
pub fn group_dispersion(
    w: &Workload,
    group_by: &[Characteristic],
    min_group: usize,
) -> GroupDispersion {
    let mut groups: HashMap<Vec<Sym>, Vec<f64>> = HashMap::new();
    'job: for j in &w.jobs {
        let mut key = Vec::with_capacity(group_by.len());
        for &c in group_by {
            match j.characteristic(c) {
                Some(s) => key.push(s),
                None => continue 'job,
            }
        }
        groups.entry(key).or_default().push(j.runtime.as_secs_f64());
    }
    let n = w.len().max(1) as f64;
    let global_mean: f64 = w.jobs.iter().map(|j| j.runtime.as_secs_f64()).sum::<f64>() / n;
    let global_mad: f64 = w
        .jobs
        .iter()
        .map(|j| (j.runtime.as_secs_f64() - global_mean).abs())
        .sum::<f64>()
        / n;
    let mut within_sum = 0.0;
    let mut covered = 0usize;
    let mut kept = 0usize;
    for v in groups.values().filter(|v| v.len() >= min_group.max(1)) {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        within_sum += v.iter().map(|x| (x - m).abs()).sum::<f64>();
        covered += v.len();
        kept += 1;
    }
    GroupDispersion {
        group_by: group_by.to_vec(),
        groups: kept,
        covered_jobs: covered,
        global_mad,
        within_mad: if covered > 0 {
            within_sum / covered as f64
        } else {
            global_mad
        },
    }
}

/// A full analysis report for one workload.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Run-time quantiles, minutes.
    pub runtime_quantiles_min: Quantiles,
    /// Node-count quantiles.
    pub node_quantiles: Quantiles,
    /// Interarrival quantiles, seconds.
    pub interarrival_quantiles_s: Quantiles,
    /// Ratio `runtime / limit` quantiles over jobs with limits (empty
    /// sample gives zeros).
    pub limit_ratio_quantiles: Quantiles,
    /// Dispersion for each grouping that the workload can support,
    /// tightest first.
    pub dispersions: Vec<GroupDispersion>,
    /// Jobs per user quantiles.
    pub jobs_per_user: Quantiles,
}

/// Run the standard analysis battery.
pub fn analyze(w: &Workload) -> AnalysisReport {
    use Characteristic as C;
    let runtimes_min: Vec<f64> = w.jobs.iter().map(|j| j.runtime.minutes()).collect();
    let nodes: Vec<f64> = w.jobs.iter().map(|j| j.nodes as f64).collect();
    let inter: Vec<f64> = w
        .jobs
        .windows(2)
        .map(|p| (p[1].submit - p[0].submit).as_secs_f64())
        .collect();
    let ratios: Vec<f64> = w
        .jobs
        .iter()
        .filter_map(|j| {
            j.max_runtime
                .map(|m| j.runtime.as_secs_f64() / m.as_secs_f64().max(1.0))
        })
        .collect();
    let candidate_groupings: Vec<Vec<C>> = vec![
        vec![C::User, C::Executable, C::Arguments],
        vec![C::User, C::Executable],
        vec![C::User, C::Script],
        vec![C::User, C::Queue],
        vec![C::User],
        vec![C::Executable],
        vec![C::Queue],
        vec![C::Type],
    ];
    let mut dispersions: Vec<GroupDispersion> = candidate_groupings
        .into_iter()
        .filter(|g| g.iter().all(|&c| w.records(c)))
        .map(|g| group_dispersion(w, &g, 3))
        .filter(|d| d.groups > 0)
        .collect();
    dispersions.sort_by(|a, b| {
        a.dispersion_ratio()
            .partial_cmp(&b.dispersion_ratio())
            .expect("finite")
    });
    let mut per_user: HashMap<Sym, usize> = HashMap::new();
    for j in &w.jobs {
        if let Some(u) = j.characteristic(C::User) {
            *per_user.entry(u).or_default() += 1;
        }
    }
    let per_user_counts: Vec<f64> = per_user.values().map(|&c| c as f64).collect();
    AnalysisReport {
        runtime_quantiles_min: Quantiles::of(&runtimes_min),
        node_quantiles: Quantiles::of(&nodes),
        interarrival_quantiles_s: Quantiles::of(&inter),
        limit_ratio_quantiles: Quantiles::of(&ratios),
        dispersions,
        jobs_per_user: Quantiles::of(&per_user_counts),
    }
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let q = |q: &Quantiles| {
            format!(
                "p10 {:.1}  p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}",
                q.p10, q.p50, q.p90, q.p99, q.max
            )
        };
        writeln!(f, "run time (min):   {}", q(&self.runtime_quantiles_min))?;
        writeln!(f, "nodes:            {}", q(&self.node_quantiles))?;
        writeln!(f, "interarrival (s): {}", q(&self.interarrival_quantiles_s))?;
        if self.limit_ratio_quantiles.max > 0.0 {
            writeln!(f, "runtime/limit:    {}", q(&self.limit_ratio_quantiles))?;
        }
        writeln!(f, "jobs per user:    {}", q(&self.jobs_per_user))?;
        writeln!(f, "identity groupings (within/global run-time dispersion):")?;
        for d in &self.dispersions {
            let names: Vec<&str> = d.group_by.iter().map(|c| c.abbrev()).collect();
            writeln!(
                f,
                "  ({:<6}) ratio {:.2}  ({} groups, {} jobs)",
                names.join(","),
                d.dispersion_ratio(),
                d.groups,
                d.covered_jobs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBuilder, JobId};
    use crate::synthetic;
    use crate::time::{Dur, Time};

    #[test]
    fn quantiles_of_known_sample() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let q = Quantiles::of(&v);
        // Nearest-rank on 0..=99 indices: p50 -> round(49.5) = index 50.
        assert_eq!(q.p50, 51.0);
        assert_eq!(q.p10, 11.0);
        assert_eq!(q.max, 100.0);
    }

    #[test]
    fn quantiles_empty() {
        let q = Quantiles::of(&[]);
        assert_eq!(q.max, 0.0);
    }

    #[test]
    fn grouping_detects_signal() {
        // Two users with very different run times.
        let mut w = Workload::new("t", 8);
        let a = w.symbols.intern("a");
        let b = w.symbols.intern("b");
        for i in 0..20 {
            let (u, rt) = if i % 2 == 0 { (a, 100) } else { (b, 10_000) };
            w.jobs.push(
                JobBuilder::new()
                    .with(Characteristic::User, u)
                    .runtime(Dur(rt))
                    .submit(Time(i))
                    .build(JobId(i as u32)),
            );
        }
        w.finalize();
        let d = group_dispersion(&w, &[Characteristic::User], 3);
        assert_eq!(d.groups, 2);
        assert_eq!(d.covered_jobs, 20);
        assert!(d.dispersion_ratio() < 0.1, "ratio {}", d.dispersion_ratio());
    }

    #[test]
    fn grouping_without_characteristic_is_empty() {
        let w = synthetic::toy(100, 16, 1);
        let d = group_dispersion(&w, &[Characteristic::Queue], 2);
        assert_eq!(d.groups, 0);
        assert_eq!(d.dispersion_ratio(), 1.0);
    }

    #[test]
    fn analyze_synthetic_site_shows_identity_signal() {
        let w = synthetic::toy(1000, 32, 5);
        let r = analyze(&w);
        assert!(!r.dispersions.is_empty());
        // The tightest grouping must beat the global dispersion clearly —
        // this is the property the whole paper rests on.
        assert!(
            r.dispersions[0].dispersion_ratio() < 0.7,
            "no identity signal: {}",
            r.dispersions[0].dispersion_ratio()
        );
        // Limits recorded -> ratio quantiles populated and <= ~1.
        assert!(r.limit_ratio_quantiles.max <= 1.001);
        assert!(r.limit_ratio_quantiles.p50 > 0.0);
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn display_lists_groupings_tightest_first() {
        let w = synthetic::toy(500, 32, 6);
        let r = analyze(&w);
        for pair in r.dispersions.windows(2) {
            assert!(pair[0].dispersion_ratio() <= pair[1].dispersion_ratio() + 1e-12);
        }
    }
}
