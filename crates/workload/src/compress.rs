//! Interarrival-time compression.
//!
//! Section 4 of the paper tests the hypothesis that the Smith predictor
//! helps most when scheduling is "hard" (high offered load) by compressing
//! the interarrival times of the two SDSC workloads by a factor of two and
//! re-running the scheduling experiments. This module implements that
//! transform for arbitrary factors.

use crate::time::Time;
use crate::workload::Workload;

/// Return a copy of `w` whose interarrival times are divided by `factor`
/// (so `factor = 2.0` doubles the offered load). Run times, node counts,
/// and characteristics are untouched; the first job keeps its submission
/// time and later submissions are rescaled toward it.
///
/// # Panics
/// Panics if `factor` is not finite and positive.
pub fn compress_interarrivals(w: &Workload, factor: f64) -> Workload {
    assert!(
        factor.is_finite() && factor > 0.0,
        "compression factor must be positive and finite"
    );
    let mut out = w.clone();
    out.name = format!("{}/x{factor:.2}", w.name);
    if let Some(first) = w.jobs.first() {
        let t0 = first.submit.seconds() as f64;
        for j in &mut out.jobs {
            let dt = j.submit.seconds() as f64 - t0;
            j.submit = Time((t0 + dt / factor).round() as i64);
        }
    }
    out.finalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBuilder, JobId};
    use crate::stats::WorkloadStats;
    use crate::time::Dur;

    fn wl() -> Workload {
        let mut w = Workload::new("t", 16);
        w.jobs = (0..5)
            .map(|i| {
                JobBuilder::new()
                    .submit(Time(100 + 60 * i))
                    .nodes(4)
                    .runtime(Dur(30))
                    .build(JobId(i as u32))
            })
            .collect();
        w.finalize();
        w
    }

    #[test]
    fn halves_interarrivals() {
        let w = wl();
        let c = compress_interarrivals(&w, 2.0);
        assert_eq!(c.jobs[0].submit, Time(100));
        assert_eq!(c.jobs[1].submit, Time(130));
        assert_eq!(c.jobs[4].submit, Time(220));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn doubles_offered_load() {
        let w = wl();
        let c = compress_interarrivals(&w, 2.0);
        let s0 = WorkloadStats::of(&w);
        let s1 = WorkloadStats::of(&c);
        assert!((s1.offered_load / s0.offered_load - 2.0).abs() < 1e-9);
    }

    #[test]
    fn factor_one_is_identity() {
        let w = wl();
        let c = compress_interarrivals(&w, 1.0);
        for (a, b) in w.jobs.iter().zip(&c.jobs) {
            assert_eq!(a.submit, b.submit);
        }
    }

    #[test]
    fn runtime_and_nodes_untouched() {
        let w = wl();
        let c = compress_interarrivals(&w, 3.0);
        for (a, b) in w.jobs.iter().zip(&c.jobs) {
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.nodes, b.nodes);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_factor() {
        compress_interarrivals(&wl(), 0.0);
    }
}
