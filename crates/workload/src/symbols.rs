//! String interning for job characteristics.
//!
//! Workload traces repeat the same user names, executables, and queue names
//! tens of thousands of times. Interning them as [`Sym`] handles makes job
//! records small (`Copy`) and makes category keys in the predictors cheap to
//! hash and compare.

use std::collections::HashMap;

/// An interned string handle. Only meaningful relative to the
/// [`SymbolTable`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The raw index of this symbol in its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only interner mapping strings to dense [`Sym`] handles.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    map: HashMap<Box<str>, Sym>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its handle. Repeated calls with the same
    /// string return the same handle.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("symbol table overflow"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up a previously interned string without inserting.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Resolve a handle back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different table and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The handle at position `index` in interning order, if interned.
    /// Together with [`SymbolTable::iter`] this lets snapshot codecs
    /// rebuild `Sym`-keyed state: persist strings in interning order,
    /// re-intern on restore, and `sym_at(i)` reproduces the handles.
    pub fn sym_at(&self, index: usize) -> Option<Sym> {
        (index < self.names.len()).then_some(Sym(index as u32))
    }

    /// Iterate over `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("wsmith");
        let b = t.intern("foster");
        let a2 = t.intern("wsmith");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.intern("q16m");
        assert_eq!(t.resolve(a), "q16m");
        assert_eq!(t.get("q16m"), Some(a));
        assert_eq!(t.get("q64l"), None);
    }

    #[test]
    fn iter_preserves_order() {
        let mut t = SymbolTable::new();
        let syms: Vec<Sym> = ["a", "b", "c"].iter().map(|s| t.intern(s)).collect();
        let collected: Vec<(Sym, String)> = t.iter().map(|(s, n)| (s, n.to_string())).collect();
        assert_eq!(collected.len(), 3);
        for (i, (s, n)) in collected.iter().enumerate() {
            assert_eq!(*s, syms[i]);
            assert_eq!(n, ["a", "b", "c"][i]);
        }
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
