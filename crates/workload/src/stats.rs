//! Descriptive statistics over a workload (the paper's Table 1 columns and
//! the offered-load figures used for calibration).

use crate::job::Characteristic;
use crate::time::{Dur, Time};
use crate::workload::Workload;

/// Summary statistics of a [`Workload`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Number of jobs in the trace.
    pub requests: usize,
    /// Machine size in nodes.
    pub machine_nodes: u32,
    /// Mean run time in minutes (Table 1's "Mean Run Time").
    pub mean_runtime_min: f64,
    /// Median run time in minutes.
    pub median_runtime_min: f64,
    /// Mean requested node count.
    pub mean_nodes: f64,
    /// Total work in node-hours.
    pub total_work_node_hours: f64,
    /// Submission span: first to last submission.
    pub span: Dur,
    /// Offered load: total work divided by machine capacity over the
    /// submission span (`sum(nodes*rt) / (machine_nodes * span)`).
    pub offered_load: f64,
    /// Number of distinct users (0 when the trace lacks user data).
    pub users: usize,
    /// Number of distinct queues.
    pub queues: usize,
    /// Mean ratio of run time to maximum run time, over jobs that record a
    /// limit (a measure of how loose user estimates are).
    pub mean_runtime_to_limit: Option<f64>,
}

impl WorkloadStats {
    /// Compute statistics for `w`. Returns a zeroed struct for an empty
    /// workload.
    pub fn of(w: &Workload) -> WorkloadStats {
        if w.is_empty() {
            return WorkloadStats {
                requests: 0,
                machine_nodes: w.machine_nodes,
                mean_runtime_min: 0.0,
                median_runtime_min: 0.0,
                mean_nodes: 0.0,
                total_work_node_hours: 0.0,
                span: Dur::ZERO,
                offered_load: 0.0,
                users: 0,
                queues: 0,
                mean_runtime_to_limit: None,
            };
        }
        let n = w.jobs.len() as f64;
        let mut runtimes: Vec<i64> = w.jobs.iter().map(|j| j.runtime.seconds()).collect();
        runtimes.sort_unstable();
        let median = if runtimes.len() % 2 == 1 {
            runtimes[runtimes.len() / 2] as f64
        } else {
            (runtimes[runtimes.len() / 2 - 1] + runtimes[runtimes.len() / 2]) as f64 / 2.0
        };
        let total_rt: f64 = runtimes.iter().map(|&r| r as f64).sum();
        let total_work: f64 = w.jobs.iter().map(|j| j.work()).sum();
        let total_nodes: f64 = w.jobs.iter().map(|j| j.nodes as f64).sum();
        let first = w.jobs.first().map(|j| j.submit).unwrap_or(Time::ZERO);
        let last = w.jobs.last().map(|j| j.submit).unwrap_or(Time::ZERO);
        let span = last - first;
        let offered = if span.is_positive() {
            total_work / (w.machine_nodes as f64 * span.seconds() as f64)
        } else {
            0.0
        };
        let (mut ratio_sum, mut ratio_n) = (0.0, 0usize);
        for j in &w.jobs {
            if let Some(m) = j.max_runtime {
                if m.is_positive() {
                    ratio_sum += j.runtime.seconds() as f64 / m.seconds() as f64;
                    ratio_n += 1;
                }
            }
        }
        WorkloadStats {
            requests: w.jobs.len(),
            machine_nodes: w.machine_nodes,
            mean_runtime_min: total_rt / n / 60.0,
            median_runtime_min: median / 60.0,
            mean_nodes: total_nodes / n,
            total_work_node_hours: total_work / 3600.0,
            span,
            offered_load: offered,
            users: w.distinct_values(Characteristic::User).len(),
            queues: w.distinct_values(Characteristic::Queue).len(),
            mean_runtime_to_limit: if ratio_n > 0 {
                Some(ratio_sum / ratio_n as f64)
            } else {
                None
            },
        }
    }
}

impl std::fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {}  nodes: {}  users: {}  queues: {}",
            self.requests, self.machine_nodes, self.users, self.queues
        )?;
        writeln!(
            f,
            "mean rt: {:.2} min  median rt: {:.2} min  mean nodes: {:.1}",
            self.mean_runtime_min, self.median_runtime_min, self.mean_nodes
        )?;
        write!(
            f,
            "span: {:.1} days  offered load: {:.3}  work: {:.0} node-h",
            self.span.as_secs_f64() / 86_400.0,
            self.offered_load,
            self.total_work_node_hours
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBuilder, JobId};

    #[test]
    fn empty_workload_stats() {
        let w = Workload::new("empty", 10);
        let s = WorkloadStats::of(&w);
        assert_eq!(s.requests, 0);
        assert_eq!(s.offered_load, 0.0);
    }

    #[test]
    fn basic_stats() {
        let mut w = Workload::new("t", 10);
        w.jobs = vec![
            JobBuilder::new()
                .nodes(2)
                .runtime(Dur(600))
                .submit(Time(0))
                .build(JobId(0)),
            JobBuilder::new()
                .nodes(4)
                .runtime(Dur(1200))
                .submit(Time(600))
                .build(JobId(1)),
        ];
        w.finalize();
        let s = WorkloadStats::of(&w);
        assert_eq!(s.requests, 2);
        // mean rt = (600+1200)/2 = 900 s = 15 min
        assert!((s.mean_runtime_min - 15.0).abs() < 1e-9);
        assert!((s.median_runtime_min - 15.0).abs() < 1e-9);
        assert!((s.mean_nodes - 3.0).abs() < 1e-9);
        // work = 2*600 + 4*1200 = 6000 node-s; span 600 s, 10 nodes
        assert!((s.offered_load - 6000.0 / 6000.0).abs() < 1e-9);
        assert!((s.total_work_node_hours - 6000.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn runtime_to_limit_ratio() {
        let mut w = Workload::new("t", 10);
        w.jobs = vec![
            JobBuilder::new()
                .runtime(Dur(100))
                .max_runtime(Dur(200))
                .build(JobId(0)),
            JobBuilder::new()
                .runtime(Dur(100))
                .submit(Time(1))
                .build(JobId(1)),
        ];
        w.finalize();
        let s = WorkloadStats::of(&w);
        assert_eq!(s.mean_runtime_to_limit, Some(0.5));
    }

    #[test]
    fn median_odd_count() {
        let mut w = Workload::new("t", 10);
        w.jobs = (0..3)
            .map(|i| {
                JobBuilder::new()
                    .runtime(Dur(60 * (i + 1)))
                    .submit(Time(i))
                    .build(JobId(i as u32))
            })
            .collect();
        w.finalize();
        let s = WorkloadStats::of(&w);
        assert!((s.median_runtime_min - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_does_not_panic() {
        let mut w = Workload::new("t", 10);
        w.jobs = vec![JobBuilder::new().build(JobId(0))];
        w.finalize();
        let s = WorkloadStats::of(&w);
        assert!(!format!("{s}").is_empty());
    }
}
