//! A small, seedable, deterministic pseudo-random number generator.
//!
//! The workspace must build without any external crates (the target
//! environment is offline), so the synthetic generators, the genetic
//! search, and the fault-injection harness all draw randomness from this
//! hand-rolled xoshiro256++ implementation instead of the `rand` crate.
//! The generator is *not* cryptographic; it only needs to be fast, well
//! distributed, and bit-for-bit reproducible across platforms — the
//! determinism guarantees of the simulator and the fault harness rest on
//! that last property.
//!
//! Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators" (the public-domain xoshiro256++ algorithm), with the
//! recommended SplitMix64 seeding.

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

/// SplitMix64 step used to expand a 64-bit seed into the full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Create a generator from a 64-bit seed. Equal seeds produce equal
    /// streams forever.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Snapshot the internal state, e.g. for checkpointing a long
    /// computation. Feeding the snapshot to [`Rng64::from_state`]
    /// reproduces the remainder of the stream bit for bit.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`Rng64::state`] snapshot.
    ///
    /// The all-zero state is a fixed point of xoshiro256++ (the stream
    /// would be constant zero), so it is nudged to a valid seeded state.
    pub fn from_state(s: [u64; 4]) -> Rng64 {
        if s == [0; 4] {
            return Rng64::seed_from_u64(0);
        }
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index needs a non-empty range");
        // Multiply-shift rejection-free mapping is biased by at most
        // n / 2^64, far below anything our statistical tests resolve.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// A uniform `i64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 as u128 + 1;
        lo + ((self.next_u64() as u128 * span) >> 64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Rng64::seed_from_u64(4);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut r = Rng64::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "bucket {i}: {c}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = Rng64::seed_from_u64(6);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = r.gen_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Rng64::seed_from_u64(9);
        for _ in 0..17 {
            a.next_u64();
        }
        let snap = a.state();
        let tail: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let mut b = Rng64::from_state(snap);
        let resumed: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn zero_state_is_rejected() {
        let mut r = Rng64::from_state([0; 4]);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn bool_probability_respected() {
        let mut r = Rng64::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 - 25_000.0).abs() < 800.0, "{hits}");
    }
}
