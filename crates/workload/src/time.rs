//! Integer-second time arithmetic.
//!
//! All simulation clocks and job durations in the workspace use whole
//! seconds. The traces the paper draws on have one-second resolution, and
//! integer time keeps event ordering exactly deterministic — two runs of a
//! simulation with the same inputs produce byte-identical outcomes.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An absolute instant on the simulation clock, in seconds.
///
/// `Time::ZERO` is the epoch of a trace (typically the submission instant of
/// its first job, or earlier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub i64);

/// A span of simulated time, in seconds. May be negative when it represents
/// a signed difference (for example a prediction error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub i64);

impl Time {
    /// The trace epoch.
    pub const ZERO: Time = Time(0);
    /// The latest representable instant; useful as an "infinitely far away"
    /// sentinel in availability profiles.
    pub const MAX: Time = Time(i64::MAX);

    /// Seconds since the epoch.
    #[inline]
    pub fn seconds(self) -> i64 {
        self.0
    }

    /// Fractional minutes since the epoch.
    #[inline]
    pub fn minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// The signed span from `earlier` to `self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0 - earlier.0)
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);
    /// One second.
    pub const SECOND: Dur = Dur(1);
    /// One minute.
    pub const MINUTE: Dur = Dur(60);
    /// One hour.
    pub const HOUR: Dur = Dur(3600);
    /// One day.
    pub const DAY: Dur = Dur(86_400);
    /// The longest representable span; used as an "unbounded" sentinel.
    pub const MAX: Dur = Dur(i64::MAX);

    /// Construct from whole seconds.
    #[inline]
    pub const fn secs(s: i64) -> Dur {
        Dur(s)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn mins(m: i64) -> Dur {
        Dur(m * 60)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn hours(h: i64) -> Dur {
        Dur(h * 3600)
    }

    /// Construct from fractional seconds, rounding to the nearest second.
    /// Values are clamped into the representable range; NaN maps to
    /// [`Dur::ZERO`] explicitly (it previously fell through the
    /// comparisons to an `as` cast, which *happens* to saturate to zero
    /// — now it's a contract rather than a cast artifact).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Dur {
        if s.is_nan() {
            Dur::ZERO
        } else if s >= i64::MAX as f64 {
            Dur::MAX
        } else if s <= i64::MIN as f64 {
            Dur(i64::MIN)
        } else {
            Dur(s.round() as i64)
        }
    }

    /// The span in whole seconds.
    #[inline]
    pub fn seconds(self) -> i64 {
        self.0
    }

    /// The span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// The span in fractional minutes.
    #[inline]
    pub fn minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// The span in fractional hours.
    #[inline]
    pub fn hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Dur {
        Dur(self.0.abs())
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// True when the span is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Neg for Dur {
    type Output = Dur;
    #[inline]
    fn neg(self) -> Dur {
        Dur(-self.0)
    }
}

impl Mul<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: i64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: i64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        let (sign, s) = if s < 0 { ("-", -s) } else { ("", s) };
        if s >= 3600 {
            write!(
                f,
                "{sign}{}h{:02}m{:02}s",
                s / 3600,
                (s % 3600) / 60,
                s % 60
            )
        } else if s >= 60 {
            write!(f, "{sign}{}m{:02}s", s / 60, s % 60)
        } else {
            write!(f, "{sign}{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_dur_arithmetic() {
        let t = Time(100);
        let d = Dur(40);
        assert_eq!(t + d, Time(140));
        assert_eq!(t - d, Time(60));
        assert_eq!(Time(140) - t, Dur(40));
        assert_eq!(t.since(Time(60)), Dur(40));
        assert_eq!(Time(60).since(t), Dur(-40));
    }

    #[test]
    fn dur_constructors() {
        assert_eq!(Dur::mins(2), Dur(120));
        assert_eq!(Dur::hours(1), Dur(3600));
        assert_eq!(Dur::from_secs_f64(1.4), Dur(1));
        assert_eq!(Dur::from_secs_f64(1.6), Dur(2));
        assert_eq!(Dur::from_secs_f64(f64::INFINITY), Dur::MAX);
        assert_eq!(Dur::from_secs_f64(f64::NEG_INFINITY), Dur(i64::MIN));
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(-2.5), Dur(-3)); // .round() is half-away-from-zero
    }

    #[test]
    fn dur_units() {
        assert!((Dur(90).minutes() - 1.5).abs() < 1e-12);
        assert!((Dur(5400).hours_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Dur(-5).abs(), Dur(5));
        assert_eq!(-Dur(5), Dur(-5));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Time::MAX + Dur(1), Time::MAX);
        assert_eq!(Dur::MAX + Dur(1), Dur::MAX);
        assert_eq!(Dur::MAX * 2, Dur::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dur(59).to_string(), "59s");
        assert_eq!(Dur(61).to_string(), "1m01s");
        assert_eq!(Dur(3723).to_string(), "1h02m03s");
        assert_eq!(Dur(-61).to_string(), "-1m01s");
        assert_eq!(Time(5).to_string(), "t+5s");
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(Time(3).max(Time(5)), Time(5));
        assert_eq!(Time(3).min(Time(5)), Time(3));
        assert_eq!(Dur(3).max(Dur(5)), Dur(5));
        assert_eq!(Dur(3).min(Dur(5)), Dur(3));
        assert!(Dur(1).is_positive());
        assert!(!Dur(0).is_positive());
    }
}
