//! Job *events*: the streaming counterpart of a batch [`Workload`].
//!
//! A batch trace records each job once, with everything known after the
//! fact. A live service instead sees a stream of per-job events —
//! submission, start, completion, cancellation — interleaved with
//! wait-time queries, possibly duplicated, disordered, or late. This
//! module defines that event model and a line-oriented text codec for
//! event logs (one event per line, `#` comments), used by the serve
//! crate's WAL and by fixtures.
//!
//! ```text
//! submit <id> <t> nodes=<n> [limit=<secs>] [u=<val>] [e=<val>] [q=<val>] ...
//! start <id> <t>
//! finish <id> <t> [rt=<secs>]
//! cancel <id> <t>
//! query <id> <t>
//! ```
//!
//! `<id>` is the producer's external job identifier (any `u64`); `<t>`
//! is integer seconds. Characteristic values on `submit` lines use the
//! [`Characteristic::abbrev`] single-letter keys from the paper's
//! Table 2 and must be whitespace-free. A `finish` without `rt=` means
//! the run time is `t - start_time`; with `rt=` the producer asserts the
//! exact run time (the two disagree only in disordered streams). A
//! `query` asks the service for the predicted queue wait of job `<id>`
//! at time `<t>`.

use std::fmt::Write as _;

use crate::job::{Characteristic, CHARACTERISTICS};
use crate::time::{Dur, Time};
use crate::workload::Workload;

/// The submit-time facts about a job, as the service learns them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitSpec {
    /// Nodes requested.
    pub nodes: u32,
    /// Requested maximum run time, when the site records one.
    pub limit: Option<Dur>,
    /// Characteristic values (user, executable, queue, …) as strings;
    /// the service interns them into its own symbol table.
    pub chars: Vec<(Characteristic, String)>,
}

/// What happened (or is being asked) about one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The job entered the queue.
    Submit(SubmitSpec),
    /// The job began running.
    Start,
    /// The job completed. `runtime` overrides the `start`-derived run
    /// time when the producer asserts it (e.g. replayed accounting logs).
    Finish {
        /// Producer-asserted run time, if any.
        runtime: Option<Dur>,
    },
    /// The job left the queue (or was killed) without a usable run time.
    Cancel,
    /// Ask for the job's predicted queue wait time.
    Query,
}

impl EventKind {
    /// Canonical ordering rank of this kind *within one timestamp*:
    /// lifecycle transitions apply in causal order and queries observe
    /// the post-transition state. This rank is part of the reorder
    /// buffer's sort key, so any arrival order inside the reorder
    /// horizon converges to one canonical apply order.
    pub fn rank(&self) -> u8 {
        match self {
            EventKind::Submit(_) => 0,
            EventKind::Start => 1,
            EventKind::Finish { .. } => 2,
            EventKind::Cancel => 3,
            EventKind::Query => 4,
        }
    }

    /// The codec keyword (`submit`, `start`, …).
    pub fn keyword(&self) -> &'static str {
        match self {
            EventKind::Submit(_) => "submit",
            EventKind::Start => "start",
            EventKind::Finish { .. } => "finish",
            EventKind::Cancel => "cancel",
            EventKind::Query => "query",
        }
    }
}

/// One event in a job stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEvent {
    /// The producer's external job identifier.
    pub id: u64,
    /// When the event happened (producer clock, integer seconds).
    pub time: Time,
    /// What happened.
    pub kind: EventKind,
}

impl JobEvent {
    /// The canonical apply-order key: time, then external id, then
    /// lifecycle rank. Total and deterministic, so sorting any
    /// permutation of a set of events yields one order.
    pub fn sort_key(&self) -> (i64, u64, u8) {
        (self.time.0, self.id, self.kind.rank())
    }

    /// Serialize to one codec line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = format!("{} {} {}", self.kind.keyword(), self.id, self.time.0);
        match &self.kind {
            EventKind::Submit(spec) => {
                let _ = write!(s, " nodes={}", spec.nodes);
                if let Some(limit) = spec.limit {
                    let _ = write!(s, " limit={}", limit.0);
                }
                for (c, v) in &spec.chars {
                    let _ = write!(s, " {}={}", c.abbrev(), v);
                }
            }
            EventKind::Finish { runtime: Some(rt) } => {
                let _ = write!(s, " rt={}", rt.0);
            }
            _ => {}
        }
        s
    }

    /// Parse one codec line. Returns a one-line reason on failure; never
    /// panics on arbitrary input.
    pub fn parse(line: &str) -> Result<JobEvent, String> {
        let mut words = line.split_whitespace();
        let keyword = words.next().ok_or("empty event line")?;
        let id = words
            .next()
            .ok_or("missing job id")?
            .parse::<u64>()
            .map_err(|e| format!("bad job id: {e}"))?;
        let time = Time(
            words
                .next()
                .ok_or("missing timestamp")?
                .parse::<i64>()
                .map_err(|e| format!("bad timestamp: {e}"))?,
        );
        let rest: Vec<&str> = words.collect();
        let kind = match keyword {
            "submit" => {
                let mut nodes = None;
                let mut limit = None;
                let mut chars = Vec::new();
                for word in &rest {
                    let (key, value) = word
                        .split_once('=')
                        .ok_or_else(|| format!("expected key=value, found {word:?}"))?;
                    match key {
                        "nodes" => {
                            nodes = Some(
                                value
                                    .parse::<u32>()
                                    .map_err(|e| format!("bad nodes: {e}"))?,
                            )
                        }
                        "limit" => {
                            let secs = value
                                .parse::<i64>()
                                .map_err(|e| format!("bad limit: {e}"))?;
                            if secs <= 0 {
                                return Err(format!("non-positive limit {secs}"));
                            }
                            limit = Some(Dur(secs));
                        }
                        other => {
                            let c = CHARACTERISTICS
                                .iter()
                                .copied()
                                .find(|c| c.abbrev() == other)
                                .ok_or_else(|| format!("unknown submit key {other:?}"))?;
                            if chars.iter().any(|(seen, _)| *seen == c) {
                                return Err(format!("characteristic {other:?} repeated"));
                            }
                            if value.is_empty() {
                                return Err(format!("empty value for {other:?}"));
                            }
                            chars.push((c, value.to_string()));
                        }
                    }
                }
                let nodes = nodes.ok_or("submit needs nodes=")?;
                if nodes == 0 {
                    return Err("submit with nodes=0".into());
                }
                EventKind::Submit(SubmitSpec {
                    nodes,
                    limit,
                    chars,
                })
            }
            "start" | "cancel" | "query" if !rest.is_empty() => {
                return Err(format!("{keyword} takes no extra fields"));
            }
            "start" => EventKind::Start,
            "cancel" => EventKind::Cancel,
            "query" => EventKind::Query,
            "finish" => {
                let mut runtime = None;
                for word in &rest {
                    let value = word
                        .strip_prefix("rt=")
                        .ok_or_else(|| format!("unknown finish field {word:?}"))?;
                    let secs = value
                        .parse::<i64>()
                        .map_err(|e| format!("bad run time: {e}"))?;
                    if secs <= 0 {
                        return Err(format!("non-positive run time {secs}"));
                    }
                    runtime = Some(Dur(secs));
                }
                EventKind::Finish { runtime }
            }
            other => return Err(format!("unknown event keyword {other:?}")),
        };
        Ok(JobEvent { id, time, kind })
    }
}

/// Derive a deterministic event stream from a batch workload, for
/// fixtures and benches: each job submits at its trace submit time,
/// starts after a small deterministic queue delay, and finishes after
/// its recorded run time; every `query_every`-th job gets a wait-time
/// query one second after submission. Events come back in canonical
/// [`JobEvent::sort_key`] order. This is *not* a valid schedule for any
/// particular machine — it exercises the service, not the scheduler.
pub fn synthesize_events(w: &Workload, query_every: usize) -> Vec<JobEvent> {
    let mut events = Vec::with_capacity(w.jobs.len() * 3 + w.jobs.len() / query_every.max(1));
    for (i, job) in w.jobs.iter().enumerate() {
        let id = job.id.0 as u64 + 1;
        let mut chars = Vec::new();
        for c in CHARACTERISTICS {
            if let Some(sym) = job.chars[c.index()] {
                chars.push((c, w.symbols.resolve(sym).to_string()));
            }
        }
        events.push(JobEvent {
            id,
            time: job.submit,
            kind: EventKind::Submit(SubmitSpec {
                nodes: job.nodes,
                limit: job.max_runtime,
                chars,
            }),
        });
        if query_every > 0 && i % query_every == 0 {
            events.push(JobEvent {
                id,
                time: Time(job.submit.0 + 1),
                kind: EventKind::Query,
            });
        }
        let start = Time(job.submit.0 + 2 + (i as i64 % 7) * 30);
        events.push(JobEvent {
            id,
            time: start,
            kind: EventKind::Start,
        });
        events.push(JobEvent {
            id,
            time: Time(start.0 + job.runtime.0),
            kind: EventKind::Finish { runtime: None },
        });
    }
    events.sort_by_key(|e| e.sort_key());
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn sample_events() -> Vec<JobEvent> {
        vec![
            JobEvent {
                id: 7,
                time: Time(100),
                kind: EventKind::Submit(SubmitSpec {
                    nodes: 16,
                    limit: Some(Dur(3600)),
                    chars: vec![
                        (Characteristic::User, "wsmith".into()),
                        (Characteristic::Queue, "q16m".into()),
                    ],
                }),
            },
            JobEvent {
                id: 7,
                time: Time(160),
                kind: EventKind::Start,
            },
            JobEvent {
                id: 7,
                time: Time(200),
                kind: EventKind::Query,
            },
            JobEvent {
                id: 7,
                time: Time(760),
                kind: EventKind::Finish {
                    runtime: Some(Dur(600)),
                },
            },
            JobEvent {
                id: 8,
                time: Time(760),
                kind: EventKind::Finish { runtime: None },
            },
            JobEvent {
                id: 9,
                time: Time(800),
                kind: EventKind::Cancel,
            },
        ]
    }

    #[test]
    fn encode_parse_round_trips() {
        for event in sample_events() {
            let line = event.encode();
            let back = JobEvent::parse(&line).unwrap_or_else(|e| panic!("{line:?}: {e}"));
            assert_eq!(event, back, "{line:?}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_reasons() {
        for bad in [
            "",
            "launch 1 5",
            "submit x 5 nodes=4",
            "submit 1 notatime nodes=4",
            "submit 1 5",
            "submit 1 5 nodes=0",
            "submit 1 5 nodes=4 limit=0",
            "submit 1 5 nodes=4 zz=9",
            "submit 1 5 nodes=4 u=a u=b",
            "submit 1 5 nodes=4 u=",
            "submit 1 5 nodes=4 banana",
            "start 1 5 extra=1",
            "finish 1 5 rt=0",
            "finish 1 5 wat=3",
            "query 1 5 extra",
        ] {
            assert!(JobEvent::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn sort_key_orders_lifecycle_within_a_timestamp() {
        let mut events = sample_events();
        events.reverse();
        events.sort_by_key(|e| e.sort_key());
        let ranks: Vec<(i64, u64, u8)> = events.iter().map(|e| e.sort_key()).collect();
        let mut sorted = ranks.clone();
        sorted.sort();
        assert_eq!(ranks, sorted);
        // Same (time, id): submit < start < finish < cancel < query.
        assert!(
            EventKind::Submit(SubmitSpec {
                nodes: 1,
                limit: None,
                chars: vec![]
            })
            .rank()
                < EventKind::Start.rank()
        );
        assert!(EventKind::Start.rank() < EventKind::Finish { runtime: None }.rank());
        assert!(EventKind::Finish { runtime: None }.rank() < EventKind::Cancel.rank());
        assert!(EventKind::Cancel.rank() < EventKind::Query.rank());
    }

    #[test]
    fn synthesized_stream_is_canonical_and_complete() {
        let w = synthetic::toy(120, 64, 42);
        let events = synthesize_events(&w, 10);
        let keys: Vec<_> = events.iter().map(|e| e.sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "stream must be in canonical order");
        let submits = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Submit(_)))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Finish { .. }))
            .count();
        let queries = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Query))
            .count();
        assert_eq!(submits, 120);
        assert_eq!(finishes, 120);
        assert_eq!(queries, 12);
        // Every line survives the codec.
        for e in &events {
            assert_eq!(JobEvent::parse(&e.encode()).unwrap(), *e);
        }
    }
}
