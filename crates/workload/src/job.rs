//! The job model: one batch request to a space-shared parallel machine.
//!
//! Mirrors the paper's Table 2. A job carries up to eight *categorical
//! characteristics* (type, queue, class, user, LoadLeveler script,
//! executable, arguments, network adaptor), a requested node count, a
//! submission time, an actual run time, and an optional user-supplied
//! maximum run time. Which characteristics are populated depends on the
//! originating site — e.g. the ANL trace records executables and arguments
//! but has no queues, while SDSC records queues but no executables.

use crate::symbols::Sym;
use crate::time::{Dur, Time};

/// Dense identifier of a job within a [`crate::Workload`]; equal to its
/// index in the workload's job vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The job's index into `Workload::jobs`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The categorical job characteristics of the paper's Table 2, in the
/// paper's order. The numeric characteristics (node count, maximum run
/// time) are separate fields on [`Job`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Characteristic {
    /// Job type: e.g. `batch`/`interactive` (ANL) or
    /// `serial`/`parallel`/`pvm3` (CTC).
    Type = 0,
    /// Submission queue (SDSC records 29–35 queues).
    Queue = 1,
    /// Job class, e.g. `DSI`/`PIOFS` (CTC).
    Class = 2,
    /// Submitting user.
    User = 3,
    /// LoadLeveler script name (CTC).
    Script = 4,
    /// Executable name (ANL).
    Executable = 5,
    /// Executable arguments (ANL).
    Arguments = 6,
    /// Network adaptor requested (CTC).
    NetworkAdaptor = 7,
}

/// All characteristics, in declaration order. Index `i` holds the variant
/// with discriminant `i`.
pub const CHARACTERISTICS: [Characteristic; 8] = [
    Characteristic::Type,
    Characteristic::Queue,
    Characteristic::Class,
    Characteristic::User,
    Characteristic::Script,
    Characteristic::Executable,
    Characteristic::Arguments,
    Characteristic::NetworkAdaptor,
];

impl Characteristic {
    /// The abbreviation used in the paper's Table 2 and in template
    /// notation like `(u, e, n=4)`.
    pub fn abbrev(self) -> &'static str {
        match self {
            Characteristic::Type => "t",
            Characteristic::Queue => "q",
            Characteristic::Class => "c",
            Characteristic::User => "u",
            Characteristic::Script => "s",
            Characteristic::Executable => "e",
            Characteristic::Arguments => "a",
            Characteristic::NetworkAdaptor => "na",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Characteristic::Type => "Type",
            Characteristic::Queue => "Queue",
            Characteristic::Class => "Class",
            Characteristic::User => "User",
            Characteristic::Script => "Loadleveler script",
            Characteristic::Executable => "Executable",
            Characteristic::Arguments => "Arguments",
            Characteristic::NetworkAdaptor => "Network adaptor",
        }
    }

    /// Dense index (0..8).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One request to run an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Dense identifier; equals the index in the owning workload.
    pub id: JobId,
    /// Categorical characteristics, indexed by [`Characteristic::index`].
    /// `None` means the originating trace does not record that field.
    pub chars: [Option<Sym>; 8],
    /// Number of nodes requested (and used — the traces record one value).
    pub nodes: u32,
    /// Submission instant.
    pub submit: Time,
    /// Actual run time once started. Always at least one second.
    pub runtime: Dur,
    /// User-supplied maximum run time (wall-clock limit), when the trace
    /// records one. For SDSC-style workloads this is derived per queue; see
    /// [`crate::Workload::derive_queue_max_runtimes`].
    pub max_runtime: Option<Dur>,
}

impl Job {
    /// The value of one categorical characteristic, if recorded.
    #[inline]
    pub fn characteristic(&self, c: Characteristic) -> Option<Sym> {
        self.chars[c.index()]
    }

    /// Node-seconds of work this job performs (`nodes x runtime`).
    #[inline]
    pub fn work(&self) -> f64 {
        self.nodes as f64 * self.runtime.seconds() as f64
    }

    /// The job's wall-clock limit or, if none, an unbounded sentinel.
    #[inline]
    pub fn limit_or_max(&self) -> Dur {
        self.max_runtime.unwrap_or(Dur::MAX)
    }
}

/// Builder for [`Job`] used by trace parsers and synthetic generators.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    chars: [Option<Sym>; 8],
    nodes: u32,
    submit: Time,
    runtime: Dur,
    max_runtime: Option<Dur>,
}

impl Default for JobBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl JobBuilder {
    /// A builder for a 1-node, 1-second job submitted at the epoch.
    pub fn new() -> Self {
        JobBuilder {
            chars: [None; 8],
            nodes: 1,
            submit: Time::ZERO,
            runtime: Dur::SECOND,
            max_runtime: None,
        }
    }

    /// Set a categorical characteristic.
    pub fn with(mut self, c: Characteristic, v: Sym) -> Self {
        self.chars[c.index()] = Some(v);
        self
    }

    /// Set a categorical characteristic from an optional value.
    pub fn with_opt(mut self, c: Characteristic, v: Option<Sym>) -> Self {
        self.chars[c.index()] = v;
        self
    }

    /// Set the node count (clamped to at least 1).
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n.max(1);
        self
    }

    /// Set the submission instant.
    pub fn submit(mut self, t: Time) -> Self {
        self.submit = t;
        self
    }

    /// Set the actual run time (clamped to at least one second).
    pub fn runtime(mut self, d: Dur) -> Self {
        self.runtime = d.max(Dur::SECOND);
        self
    }

    /// Set the user-supplied maximum run time. Clamped to at least the
    /// run time set so far? No — limits in real traces are sometimes
    /// exceeded slightly; the value is stored as given (but at least 1 s).
    pub fn max_runtime(mut self, d: Dur) -> Self {
        self.max_runtime = Some(d.max(Dur::SECOND));
        self
    }

    /// Finish building; `id` must be the index the job will occupy in its
    /// workload.
    pub fn build(self, id: JobId) -> Job {
        Job {
            id,
            chars: self.chars,
            nodes: self.nodes,
            submit: self.submit,
            runtime: self.runtime,
            max_runtime: self.max_runtime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    #[test]
    fn builder_defaults_are_sane() {
        let j = JobBuilder::new().build(JobId(0));
        assert_eq!(j.nodes, 1);
        assert_eq!(j.runtime, Dur::SECOND);
        assert_eq!(j.max_runtime, None);
        assert!(j.chars.iter().all(|c| c.is_none()));
    }

    #[test]
    fn builder_sets_fields() {
        let mut syms = SymbolTable::new();
        let u = syms.intern("wsmith");
        let j = JobBuilder::new()
            .with(Characteristic::User, u)
            .nodes(16)
            .submit(Time(50))
            .runtime(Dur::mins(10))
            .max_runtime(Dur::hours(1))
            .build(JobId(3));
        assert_eq!(j.characteristic(Characteristic::User), Some(u));
        assert_eq!(j.characteristic(Characteristic::Queue), None);
        assert_eq!(j.nodes, 16);
        assert_eq!(j.submit, Time(50));
        assert_eq!(j.runtime, Dur(600));
        assert_eq!(j.max_runtime, Some(Dur(3600)));
        assert_eq!(j.id, JobId(3));
    }

    #[test]
    fn clamps_degenerate_values() {
        let j = JobBuilder::new()
            .nodes(0)
            .runtime(Dur(0))
            .max_runtime(Dur(-5))
            .build(JobId(0));
        assert_eq!(j.nodes, 1);
        assert_eq!(j.runtime, Dur(1));
        assert_eq!(j.max_runtime, Some(Dur(1)));
    }

    #[test]
    fn work_is_nodes_times_runtime() {
        let j = JobBuilder::new().nodes(8).runtime(Dur(100)).build(JobId(0));
        assert_eq!(j.work(), 800.0);
    }

    #[test]
    fn characteristic_metadata() {
        assert_eq!(Characteristic::User.abbrev(), "u");
        assert_eq!(Characteristic::NetworkAdaptor.abbrev(), "na");
        assert_eq!(Characteristic::Queue.index(), 1);
        for (i, c) in CHARACTERISTICS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn limit_or_max() {
        let j = JobBuilder::new().build(JobId(0));
        assert_eq!(j.limit_or_max(), Dur::MAX);
        let j = JobBuilder::new().max_runtime(Dur(60)).build(JobId(0));
        assert_eq!(j.limit_or_max(), Dur(60));
    }
}
