//! Standard Workload Format (SWF) reader/writer.
//!
//! The traces the paper uses (ANL SP2, CTC SP2, SDSC Paragon) are today
//! distributed in SWF via the Parallel Workloads Archive. This module lets
//! a user of the library point the simulator at a real trace file; the rest
//! of the workspace falls back to the calibrated synthetic generators when
//! no trace is available (as in this reproduction).
//!
//! The SWF line format is 18 whitespace-separated integer fields:
//!
//! ```text
//!  1 job number          7 used memory        13 group id
//!  2 submit time         8 requested procs    14 executable number
//!  3 wait time           9 requested time     15 queue number
//!  4 run time           10 requested memory   16 partition number
//!  5 allocated procs    11 status             17 preceding job
//!  6 avg cpu time       12 user id            18 think time
//! ```
//!
//! Missing values are `-1`. Comment/header lines start with `;`.
//!
//! # Ingestion policies
//!
//! Archive traces accumulate damage: truncated lines, editor artifacts,
//! duplicated records, clock skew. [`parse_with`] takes an
//! [`IngestPolicy`]:
//!
//! * [`IngestPolicy::Strict`] fails fast on the first malformed line
//!   (non-integer field, wrong field count), exactly like [`parse`].
//! * [`IngestPolicy::Lenient`] skips malformed lines instead, recording
//!   each skip in an [`IngestReport`] — per-category counts, the first few
//!   sample messages per category, and every skipped line number — so a
//!   damaged trace still yields a usable [`Workload`] plus an auditable
//!   account of what was dropped.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::job::{Characteristic, JobBuilder, JobId};
use crate::time::{Dur, Time};
use crate::workload::Workload;

/// Error from SWF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// How [`parse_with`] treats malformed trace lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPolicy {
    /// Fail fast on the first malformed line (the historical behaviour).
    #[default]
    Strict,
    /// Skip malformed lines, recording each skip in the [`IngestReport`].
    Lenient,
}

impl IngestPolicy {
    /// Parse a policy name (`strict` | `lenient`, case-insensitive).
    pub fn parse(s: &str) -> Option<IngestPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "strict" => Some(IngestPolicy::Strict),
            "lenient" => Some(IngestPolicy::Lenient),
            _ => None,
        }
    }

    /// Canonical name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            IngestPolicy::Strict => "strict",
            IngestPolicy::Lenient => "lenient",
        }
    }
}

/// Why a trace line was skipped (or flagged) during ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipCategory {
    /// A field did not parse as an integer.
    NonIntegerField,
    /// Fewer than the 18 required fields.
    TooFewFields,
    /// Negative submit time.
    NegativeSubmit,
    /// Non-positive run time or processor count (cancelled or corrupt
    /// record; skipped under every policy, as archive practice dictates).
    CancelledRecord,
    /// A job number already seen earlier in the trace.
    DuplicateJobId,
    /// Submit time earlier than the previously accepted record's.
    NonMonotonicSubmit,
    /// More than 18 fields. A *warning*: the record is still ingested
    /// using the first 18 fields.
    TrailingFields,
}

impl SkipCategory {
    /// Every category, for iteration/reporting.
    pub const ALL: [SkipCategory; 7] = [
        SkipCategory::NonIntegerField,
        SkipCategory::TooFewFields,
        SkipCategory::NegativeSubmit,
        SkipCategory::CancelledRecord,
        SkipCategory::DuplicateJobId,
        SkipCategory::NonMonotonicSubmit,
        SkipCategory::TrailingFields,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SkipCategory::NonIntegerField => "non-integer field",
            SkipCategory::TooFewFields => "too few fields",
            SkipCategory::NegativeSubmit => "negative submit time",
            SkipCategory::CancelledRecord => "cancelled/corrupt record",
            SkipCategory::DuplicateJobId => "duplicate job id",
            SkipCategory::NonMonotonicSubmit => "non-monotonic submit",
            SkipCategory::TrailingFields => "trailing extra fields",
        }
    }

    /// Warnings flag a line without dropping it.
    pub fn is_warning(self) -> bool {
        matches!(self, SkipCategory::TrailingFields)
    }

    fn index(self) -> usize {
        SkipCategory::ALL
            .iter()
            .position(|&c| c == self)
            .expect("category listed in ALL")
    }
}

impl std::fmt::Display for SkipCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded ingestion incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestSample {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description (includes the offending field where
    /// applicable).
    pub message: String,
}

/// How many sample messages [`IngestReport`] keeps per category.
pub const MAX_SAMPLES_PER_CATEGORY: usize = 5;

/// Structured account of a lenient (or strict) ingestion pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Non-comment, non-blank lines seen.
    pub data_lines: usize,
    /// Records accepted into the workload.
    pub records_ok: usize,
    /// Line numbers of every skipped (not merely flagged) line, in order.
    pub skipped_lines: Vec<usize>,
    counts: [usize; SkipCategory::ALL.len()],
    samples: Vec<(SkipCategory, IngestSample)>,
}

impl IngestReport {
    /// Incidents recorded in `category`.
    pub fn count(&self, category: SkipCategory) -> usize {
        self.counts[category.index()]
    }

    /// Total lines dropped (warnings excluded).
    pub fn skipped_total(&self) -> usize {
        self.skipped_lines.len()
    }

    /// Total warning incidents (line kept, but flagged).
    pub fn warnings_total(&self) -> usize {
        SkipCategory::ALL
            .iter()
            .filter(|c| c.is_warning())
            .map(|&c| self.count(c))
            .sum()
    }

    /// True when nothing was skipped or flagged.
    pub fn is_clean(&self) -> bool {
        self.skipped_total() == 0 && self.warnings_total() == 0
    }

    /// The first recorded samples for `category` (at most
    /// [`MAX_SAMPLES_PER_CATEGORY`]).
    pub fn samples(&self, category: SkipCategory) -> impl Iterator<Item = &IngestSample> {
        self.samples
            .iter()
            .filter(move |(c, _)| *c == category)
            .map(|(_, s)| s)
    }

    fn record(&mut self, category: SkipCategory, line: usize, message: String) {
        self.counts[category.index()] += 1;
        if !category.is_warning() {
            self.skipped_lines.push(line);
        }
        if self.samples.iter().filter(|(c, _)| *c == category).count() < MAX_SAMPLES_PER_CATEGORY {
            self.samples
                .push((category, IngestSample { line, message }));
        }
    }

    /// Multi-line human-readable summary (empty string when clean).
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ingest: {} of {} data lines accepted, {} skipped, {} warnings",
            self.records_ok,
            self.data_lines,
            self.skipped_total(),
            self.warnings_total(),
        );
        for c in SkipCategory::ALL {
            let n = self.count(c);
            if n == 0 {
                continue;
            }
            let kind = if c.is_warning() { "warning" } else { "skipped" };
            let _ = writeln!(out, "  {n:6} {kind}: {c}");
            for s in self.samples(c) {
                let _ = writeln!(out, "         line {}: {}", s.line, s.message);
            }
        }
        out
    }
}

/// SWF field name for a 0-based field index, for error messages.
fn field_name(i: usize) -> &'static str {
    const NAMES: [&str; 18] = [
        "job number",
        "submit time",
        "wait time",
        "run time",
        "allocated procs",
        "avg cpu time",
        "used memory",
        "requested procs",
        "requested time",
        "requested memory",
        "status",
        "user id",
        "group id",
        "executable number",
        "queue number",
        "partition number",
        "preceding job",
        "think time",
    ];
    NAMES.get(i).copied().unwrap_or("extra field")
}

/// Parse an SWF document from a string, failing fast on malformed lines.
///
/// * `name` — workload display name.
/// * `machine_nodes` — machine size; jobs requesting more nodes are clamped
///   (real archive traces occasionally contain such records).
///
/// Jobs with non-positive run time or zero processors are skipped, matching
/// common practice when replaying archive traces (they represent cancelled
/// or corrupted records). Equivalent to
/// `parse_with(.., IngestPolicy::Strict)` with the report discarded.
pub fn parse(name: &str, machine_nodes: u32, text: &str) -> Result<Workload, SwfError> {
    parse_with(name, machine_nodes, text, IngestPolicy::Strict).map(|(w, _)| w)
}

/// Parse an SWF document under an explicit [`IngestPolicy`].
///
/// Under [`IngestPolicy::Lenient`] this never fails: every malformed line
/// is skipped and recorded in the returned [`IngestReport`]. Under
/// [`IngestPolicy::Strict`] the first malformed line aborts the parse with
/// an error naming the line and offending field; records that are merely
/// cancelled/corrupt (non-positive run time or procs, negative submit) are
/// skipped under both policies and counted in the report.
pub fn parse_with(
    name: &str,
    machine_nodes: u32,
    text: &str,
    policy: IngestPolicy,
) -> Result<(Workload, IngestReport), SwfError> {
    let mut w = Workload::new(name, machine_nodes);
    let mut report = IngestReport::default();
    let mut next_id = 0u32;
    let mut seen_job_numbers: HashSet<i64> = HashSet::new();
    let mut last_submit: Option<i64> = None;
    'lines: for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        report.data_lines += 1;

        let mut fields: Vec<i64> = Vec::with_capacity(18);
        for (i, f) in line.split_whitespace().enumerate() {
            match f.parse::<i64>() {
                Ok(v) => fields.push(v),
                Err(_) => {
                    let message = format!(
                        "non-integer value {f:?} in field {} ({})",
                        i + 1,
                        field_name(i)
                    );
                    match policy {
                        IngestPolicy::Strict => {
                            return Err(SwfError {
                                line: lineno,
                                message,
                            });
                        }
                        IngestPolicy::Lenient => {
                            report.record(SkipCategory::NonIntegerField, lineno, message);
                            continue 'lines;
                        }
                    }
                }
            }
        }
        if fields.len() < 18 {
            let message = format!("expected 18 fields, found {}", fields.len());
            match policy {
                IngestPolicy::Strict => {
                    return Err(SwfError {
                        line: lineno,
                        message,
                    })
                }
                IngestPolicy::Lenient => {
                    report.record(SkipCategory::TooFewFields, lineno, message);
                    continue;
                }
            }
        }
        if fields.len() > 18 {
            // Tolerated under both policies: some archive exports append
            // site-specific columns. Flag it and use the first 18.
            report.record(
                SkipCategory::TrailingFields,
                lineno,
                format!("{} fields, expected 18; extras ignored", fields.len()),
            );
        }

        let job_number = fields[0];
        let submit = fields[1];
        let runtime = fields[3];
        let procs = if fields[4] > 0 { fields[4] } else { fields[7] };

        if submit < 0 {
            report.record(
                SkipCategory::NegativeSubmit,
                lineno,
                format!("negative value {submit} in field 2 (submit time)"),
            );
            continue;
        }
        if runtime <= 0 || procs <= 0 {
            let what = if runtime <= 0 {
                format!("non-positive value {runtime} in field 4 (run time)")
            } else {
                format!("non-positive value {procs} in fields 5/8 (procs)")
            };
            report.record(SkipCategory::CancelledRecord, lineno, what);
            continue;
        }
        // A repeated job number is never legitimate in one trace: keeping
        // both records would double-count the job in every aggregate, so
        // the duplicate is skipped (and tallied) under *both* policies.
        if job_number >= 0 && !seen_job_numbers.insert(job_number) {
            report.record(
                SkipCategory::DuplicateJobId,
                lineno,
                format!("job number {job_number} already seen (field 1)"),
            );
            continue;
        }
        if policy == IngestPolicy::Lenient {
            // Ordering checks only the lenient reader performs: the
            // strict path keeps its historical semantics.
            if let Some(prev) = last_submit {
                if submit < prev {
                    report.record(
                        SkipCategory::NonMonotonicSubmit,
                        lineno,
                        format!("submit time {submit} precedes previous record's {prev} (field 2)"),
                    );
                    continue;
                }
            }
            last_submit = Some(submit);
        }

        let requested_time = fields[8];
        let user = fields[11];
        let exe = fields[13];
        let queue = fields[14];

        let mut b = JobBuilder::new()
            .submit(Time(submit))
            .runtime(Dur(runtime))
            .nodes((procs as u32).min(machine_nodes));
        if requested_time > 0 {
            b = b.max_runtime(Dur(requested_time));
        }
        if user >= 0 {
            let s = w.symbols.intern(&format!("user{user}"));
            b = b.with(Characteristic::User, s);
        }
        if exe >= 0 {
            let s = w.symbols.intern(&format!("app{exe}"));
            b = b.with(Characteristic::Executable, s);
        }
        if queue >= 0 {
            let s = w.symbols.intern(&format!("queue{queue}"));
            b = b.with(Characteristic::Queue, s);
        }
        w.jobs.push(b.build(JobId(next_id)));
        next_id += 1;
        report.records_ok += 1;
    }
    w.finalize();
    Ok((w, report))
}

/// Serialize a workload to SWF text. Characteristics that do not fit SWF's
/// numeric model (type, class, script, arguments, network adaptor) are
/// dropped; user/executable/queue symbols are written as their dense
/// symbol indices. Round-tripping therefore preserves exactly the fields
/// SWF can represent.
pub fn write(w: &Workload) -> String {
    let mut out = String::with_capacity(w.jobs.len() * 64 + 128);
    let _ = writeln!(out, "; Workload: {}", w.name);
    let _ = writeln!(out, "; MaxNodes: {}", w.machine_nodes);
    let _ = writeln!(out, "; Generated by qpredict-workload");
    for j in &w.jobs {
        let user = j
            .characteristic(Characteristic::User)
            .map_or(-1, |s| s.index() as i64);
        let exe = j
            .characteristic(Characteristic::Executable)
            .map_or(-1, |s| s.index() as i64);
        let queue = j
            .characteristic(Characteristic::Queue)
            .map_or(-1, |s| s.index() as i64);
        let req_time = j.max_runtime.map_or(-1, |d| d.seconds());
        let _ = writeln!(
            out,
            "{} {} -1 {} {} -1 -1 {} {} -1 1 {} -1 {} {} -1 -1 -1",
            j.id.0 as i64 + 1,
            j.submit.seconds(),
            j.runtime.seconds(),
            j.nodes,
            j.nodes,
            req_time,
            user,
            exe,
            queue,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; header comment
1 0 10 300 4 -1 -1 4 600 -1 1 7 1 3 2 -1 -1 -1
2 60 0 120 8 -1 -1 8 -1 -1 1 9 1 -1 0 -1 -1 -1
3 90 0 -1 4 -1 -1 4 600 -1 0 7 1 3 2 -1 -1 -1
";

    #[test]
    fn parses_basic_fields() {
        let w = parse("t", 64, SAMPLE).unwrap();
        // third record has runtime -1 and is skipped
        assert_eq!(w.len(), 2);
        let j = &w.jobs[0];
        assert_eq!(j.submit, Time(0));
        assert_eq!(j.runtime, Dur(300));
        assert_eq!(j.nodes, 4);
        assert_eq!(j.max_runtime, Some(Dur(600)));
        assert_eq!(
            w.symbols
                .resolve(j.characteristic(Characteristic::User).unwrap()),
            "user7"
        );
        assert_eq!(
            w.symbols
                .resolve(j.characteristic(Characteristic::Executable).unwrap()),
            "app3"
        );
        assert_eq!(
            w.symbols
                .resolve(j.characteristic(Characteristic::Queue).unwrap()),
            "queue2"
        );
        // second record: no requested time, no executable
        let j = &w.jobs[1];
        assert_eq!(j.max_runtime, None);
        assert_eq!(j.characteristic(Characteristic::Executable), None);
    }

    #[test]
    fn rejects_short_lines() {
        let err = parse("t", 64, "1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("18 fields"));
    }

    #[test]
    fn rejects_garbage() {
        let err = parse("t", 64, "1 2 x 300 4 -1 -1 4 600 -1 1 7 1 3 2 -1 -1 -1\n").unwrap_err();
        assert!(err.message.contains("non-integer"));
        // The satellite requirement: the message names the offending field.
        assert!(err.message.contains("field 3"), "{}", err.message);
        assert!(err.message.contains("wait time"), "{}", err.message);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn clamps_to_machine() {
        let w = parse(
            "t",
            4,
            "1 0 0 300 16 -1 -1 16 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n",
        )
        .unwrap();
        assert_eq!(w.jobs[0].nodes, 4);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn write_then_parse_round_trips() {
        let w = parse("t", 64, SAMPLE).unwrap();
        let text = write(&w);
        let w2 = parse("t", 64, &text).unwrap();
        assert_eq!(w.len(), w2.len());
        for (a, b) in w.jobs.iter().zip(&w2.jobs) {
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.max_runtime, b.max_runtime);
            // symbol *values* may be renamed (user7 -> user0) but presence
            // must round-trip
            assert_eq!(
                a.characteristic(Characteristic::User).is_some(),
                b.characteristic(Characteristic::User).is_some()
            );
            assert_eq!(
                a.characteristic(Characteristic::Queue).is_some(),
                b.characteristic(Characteristic::Queue).is_some()
            );
        }
    }

    #[test]
    fn uses_requested_procs_when_allocated_missing() {
        let w = parse(
            "t",
            64,
            "1 0 0 300 -1 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n",
        )
        .unwrap();
        assert_eq!(w.jobs[0].nodes, 8);
    }

    #[test]
    fn lenient_recovers_from_garbage() {
        let text = "\
; damaged trace
1 0 10 300 4 -1 -1 4 600 -1 1 7 1 3 2 -1 -1 -1
2 60 0 oops 8 -1 -1 8 -1 -1 1 9 1 -1 0 -1 -1 -1
3 90 0 120
4 120 0 120 8 -1 -1 8 -1 -1 1 9 1 -1 0 -1 -1 -1
";
        // Strict fails at the first malformed line.
        let err = parse("t", 64, text).unwrap_err();
        assert_eq!(err.line, 3);
        // Lenient keeps going and accounts for both skips.
        let (w, r) = parse_with("t", 64, text, IngestPolicy::Lenient).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(r.data_lines, 4);
        assert_eq!(r.records_ok, 2);
        assert_eq!(r.count(SkipCategory::NonIntegerField), 1);
        assert_eq!(r.count(SkipCategory::TooFewFields), 1);
        assert_eq!(r.skipped_lines, vec![3, 4]);
        let sample = r.samples(SkipCategory::NonIntegerField).next().unwrap();
        assert_eq!(sample.line, 3);
        assert!(sample.message.contains("field 4"), "{}", sample.message);
    }

    #[test]
    fn lenient_drops_duplicates_and_time_travel() {
        let text = "\
1 50 0 300 4 -1 -1 4 -1 -1 1 7 1 3 2 -1 -1 -1
1 60 0 120 8 -1 -1 8 -1 -1 1 9 1 -1 0 -1 -1 -1
3 30 0 120 8 -1 -1 8 -1 -1 1 9 1 -1 0 -1 -1 -1
4 90 0 120 8 -1 -1 8 -1 -1 1 9 1 -1 0 -1 -1 -1
";
        let (w, r) = parse_with("t", 64, text, IngestPolicy::Lenient).unwrap();
        assert_eq!(w.len(), 2); // lines 2 (dup id) and 3 (submit went backwards) dropped
        assert_eq!(r.count(SkipCategory::DuplicateJobId), 1);
        assert_eq!(r.count(SkipCategory::NonMonotonicSubmit), 1);
        assert_eq!(r.skipped_lines, vec![2, 3]);
        // Strict mode also refuses the duplicate id (keeping both would
        // double-count the job) but keeps its historical tolerance of
        // submit times that go backwards.
        let (w, r) = parse_with("t", 64, text, IngestPolicy::Strict).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(r.count(SkipCategory::DuplicateJobId), 1);
        assert_eq!(r.count(SkipCategory::NonMonotonicSubmit), 0);
        assert_eq!(r.skipped_lines, vec![2]);
    }

    #[test]
    fn trailing_fields_are_flagged_not_dropped() {
        let text = "1 0 0 300 4 -1 -1 4 -1 -1 1 7 1 3 2 -1 -1 -1 99 99\n";
        let (w, r) = parse_with("t", 64, text, IngestPolicy::Lenient).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(r.count(SkipCategory::TrailingFields), 1);
        assert_eq!(r.skipped_total(), 0);
        assert_eq!(r.warnings_total(), 1);
        assert!(!r.is_clean());
        assert!(r.summary().contains("trailing extra fields"));
    }

    #[test]
    fn negative_submit_is_categorised() {
        let text = "1 -5 0 300 4 -1 -1 4 -1 -1 1 7 1 3 2 -1 -1 -1\n";
        let (w, r) = parse_with("t", 64, text, IngestPolicy::Lenient).unwrap();
        assert_eq!(w.len(), 0);
        assert_eq!(r.count(SkipCategory::NegativeSubmit), 1);
    }

    #[test]
    fn report_summary_mentions_each_category() {
        let (_, r) = parse_with(
            "t",
            64,
            "1 0 0 -1 4 -1 -1 4 -1 -1 1 7 1 3 2 -1 -1 -1\n1 2 3\n",
            IngestPolicy::Lenient,
        )
        .unwrap();
        let s = r.summary();
        assert!(s.contains("cancelled/corrupt record"), "{s}");
        assert!(s.contains("too few fields"), "{s}");
        assert!(s.contains("0 of 2 data lines accepted"), "{s}");
    }

    #[test]
    fn clean_trace_reports_clean() {
        let (_, r) = parse_with(
            "t",
            64,
            "1 0 0 300 4 -1 -1 4 -1 -1 1 7 1 3 2 -1 -1 -1\n",
            IngestPolicy::Lenient,
        )
        .unwrap();
        assert!(r.is_clean());
        assert_eq!(r.summary(), "");
    }
}
