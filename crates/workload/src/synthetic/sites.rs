//! Calibrated site models for the paper's four workloads (Table 1).
//!
//! | Workload | System        | Nodes | Requests | Mean run time |
//! |----------|---------------|-------|----------|---------------|
//! | ANL      | IBM SP2       | 80*   | 7994     | 97.75 min     |
//! | CTC      | IBM SP2       | 512   | 13217    | 171.14 min    |
//! | SDSC95   | Intel Paragon | 400   | 22885    | 108.21 min    |
//! | SDSC96   | Intel Paragon | 400   | 22337    | 166.98 min    |
//!
//! *The ANL trace dropped one-third of requests when recorded; the paper
//! compensates by simulating an 80-node machine instead of 120, and so do
//! we.
//!
//! Offered loads are calibrated to the utilizations the paper's simulations
//! report in Tables 10–15 (ANL ~0.71 — the "highest offered load" — CTC
//! ~0.51, SDSC95 ~0.41, SDSC96 ~0.47). Characteristic availability follows
//! Table 2.

use super::model::{generate, QueueScheme, SiteSpec, TypeScheme};
use crate::workload::Workload;

/// Names of the four paper workloads, in the paper's order.
pub const ALL_SITES: [&str; 4] = ["ANL", "CTC", "SDSC95", "SDSC96"];

/// Spec for the Argonne National Laboratory SP2 workload.
///
/// Characteristics (Table 2): type (batch/interactive), user, executable,
/// arguments, maximum run time. Highest offered load of the four — this is
/// the workload where the paper finds prediction accuracy matters most.
pub fn anl_spec() -> SiteSpec {
    let mut s = SiteSpec::base("ANL");
    s.machine_nodes = 80;
    s.n_jobs = 7994;
    s.mean_runtime_min = 97.75;
    s.offered_load = 0.715;
    s.seed = 0xA71_0001;
    s.n_users = 90;
    s.type_scheme = Some(TypeScheme::AnlBatchInteractive {
        interactive_frac: 0.35,
    });
    s.records_executable = true;
    s.records_arguments = true;
    s.records_max_runtime = true;
    s.runtime_sigma = 0.65;
    s.node_skew = 0.45;
    s.max_job_nodes = Some(64); // the corrected 80-node machine ran sub-full jobs
    s.max_runtime_hours = 8.0;
    s
}

/// Spec for the Cornell Theory Center SP2 workload.
///
/// Characteristics (Table 2): type (serial/parallel/pvm3), class
/// (DSI/PIOFS), user, LoadLeveler script, network adaptor, maximum run
/// time. Large machine, low offered load.
pub fn ctc_spec() -> SiteSpec {
    let mut s = SiteSpec::base("CTC");
    s.machine_nodes = 512;
    s.n_jobs = 13_217;
    s.mean_runtime_min = 171.14;
    s.offered_load = 0.525;
    s.seed = 0xC7C_0002;
    s.n_users = 180;
    s.type_scheme = Some(TypeScheme::CtcSerialParallelPvm { pvm_frac: 0.10 });
    s.class_prob = Some(0.12);
    s.records_script = true;
    s.records_network_adaptor = true;
    s.records_max_runtime = true;
    // The paper found its own predictor *worst* on CTC (limited template
    // search); CTC gets the noisiest run times of the four sites.
    s.runtime_sigma = 0.95;
    s.node_skew = 0.75; // many serial/small jobs on the SP2
    s.session_repeat_prob = 0.5;
    s.max_job_nodes = Some(256); // CTC's general pool topped out well below 512
    s.max_runtime_hours = 18.0;
    s.daily_amplitude = 0.5;
    s
}

fn sdsc_queue_scheme() -> QueueScheme {
    QueueScheme {
        // 4+1 time classes x 3+1 node classes + express row ~ 29-35 queues
        // of the real Paragon.
        time_bucket_hours: vec![0.5, 2.0, 6.0, 18.0],
        node_buckets: vec![16, 64, 256],
        express: true,
    }
}

/// Spec for the San Diego Supercomputer Center Paragon, 1995 trace.
///
/// Characteristics (Table 2): queue (29–35 queues), user. No recorded
/// maximum run times — the max-run-time predictor derives per-queue maxima
/// as the paper does.
pub fn sdsc95_spec() -> SiteSpec {
    let mut s = SiteSpec::base("SDSC95");
    s.machine_nodes = 400;
    s.n_jobs = 22_885;
    s.mean_runtime_min = 108.21;
    s.offered_load = 0.425;
    s.seed = 0x5D5C_1995;
    s.n_users = 220;
    s.queue_scheme = Some(sdsc_queue_scheme());
    s.records_max_runtime = false;
    s.records_executable = false;
    s.runtime_sigma = 0.75;
    s.node_skew = 0.6;
    s.max_job_nodes = Some(256);
    s.max_runtime_hours = 12.0;
    s.daily_amplitude = 0.55;
    s
}

/// Spec for the San Diego Supercomputer Center Paragon, 1996 trace.
pub fn sdsc96_spec() -> SiteSpec {
    let mut s = sdsc95_spec();
    s.name = "SDSC96".to_string();
    s.n_jobs = 22_337;
    s.mean_runtime_min = 166.98;
    s.offered_load = 0.48;
    s.seed = 0x5D5C_1996;
    s.runtime_sigma = 0.6; // the paper's most predictable workload
    s
}

/// Generate the ANL workload.
pub fn anl() -> Workload {
    generate(&anl_spec())
}

/// Generate the CTC workload.
pub fn ctc() -> Workload {
    generate(&ctc_spec())
}

/// Generate the SDSC95 workload.
pub fn sdsc95() -> Workload {
    generate(&sdsc95_spec())
}

/// Generate the SDSC96 workload.
pub fn sdsc96() -> Workload {
    generate(&sdsc96_spec())
}

/// Look up a site spec by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<SiteSpec> {
    match name.to_ascii_uppercase().as_str() {
        "ANL" => Some(anl_spec()),
        "CTC" => Some(ctc_spec()),
        "SDSC95" => Some(sdsc95_spec()),
        "SDSC96" => Some(sdsc96_spec()),
        _ => None,
    }
}

/// Generate a workload by site name (`"ANL"`, `"CTC"`, `"SDSC95"`,
/// `"SDSC96"`).
pub fn by_name(name: &str) -> Option<Workload> {
    spec_by_name(name).map(|s| generate(&s))
}

/// A small, fast workload for tests and examples: `n_jobs` jobs on a
/// `machine_nodes`-node machine at moderate load, with users, executables,
/// arguments, and max run times recorded.
pub fn toy(n_jobs: usize, machine_nodes: u32, seed: u64) -> Workload {
    let mut s = SiteSpec::base("toy");
    s.machine_nodes = machine_nodes;
    s.n_jobs = n_jobs;
    s.n_users = (n_jobs / 40).clamp(4, 60);
    s.mean_runtime_min = 45.0;
    s.offered_load = 0.6;
    s.seed = seed;
    s.records_executable = true;
    s.records_arguments = true;
    s.records_max_runtime = true;
    generate(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Characteristic;
    use crate::stats::WorkloadStats;

    /// Shrunken copies of the real specs so the calibration tests stay
    /// fast; the full-size figures are exercised by the `paper` binary.
    fn small(mut s: SiteSpec) -> Workload {
        s.n_jobs = 2000;
        generate(&s)
    }

    #[test]
    fn anl_shape() {
        let w = small(anl_spec());
        let st = WorkloadStats::of(&w);
        assert_eq!(w.machine_nodes, 80);
        assert!((st.mean_runtime_min - 97.75).abs() / 97.75 < 0.02);
        assert!((st.offered_load - 0.715).abs() < 0.06);
        assert!(w.records(Characteristic::Type));
        assert!(w.records(Characteristic::Executable));
        assert!(w.records(Characteristic::Arguments));
        assert!(!w.records(Characteristic::Queue));
        assert!(!w.records(Characteristic::Script));
        assert!(w.records_max_runtime());
    }

    #[test]
    fn ctc_shape() {
        let w = small(ctc_spec());
        let st = WorkloadStats::of(&w);
        assert_eq!(w.machine_nodes, 512);
        assert!((st.mean_runtime_min - 171.14).abs() / 171.14 < 0.02);
        assert!(w.records(Characteristic::Type));
        assert!(w.records(Characteristic::Class));
        assert!(w.records(Characteristic::Script));
        assert!(w.records(Characteristic::NetworkAdaptor));
        assert!(!w.records(Characteristic::Queue));
        assert!(!w.records(Characteristic::Executable));
        assert!(w.records_max_runtime());
    }

    #[test]
    fn sdsc_shapes() {
        for (spec, mean) in [(sdsc95_spec(), 108.21), (sdsc96_spec(), 166.98)] {
            let w = small(spec);
            let st = WorkloadStats::of(&w);
            assert_eq!(w.machine_nodes, 400);
            assert!((st.mean_runtime_min - mean).abs() / mean < 0.02);
            assert!(w.records(Characteristic::Queue));
            assert!(w.records(Characteristic::User));
            assert!(!w.records(Characteristic::Executable));
            assert!(!w.records_max_runtime());
            assert!(
                st.queues >= 10,
                "SDSC should have many queues: {}",
                st.queues
            );
        }
    }

    #[test]
    fn full_job_counts_match_table1() {
        // Only check the specs (generation at full size is exercised by
        // integration tests and the paper binary).
        assert_eq!(anl_spec().n_jobs, 7994);
        assert_eq!(ctc_spec().n_jobs, 13_217);
        assert_eq!(sdsc95_spec().n_jobs, 22_885);
        assert_eq!(sdsc96_spec().n_jobs, 22_337);
    }

    #[test]
    fn lookup_by_name() {
        for n in ALL_SITES {
            assert!(spec_by_name(n).is_some());
            assert!(spec_by_name(&n.to_lowercase()).is_some());
        }
        assert!(spec_by_name("NERSC").is_none());
    }

    #[test]
    fn toy_is_quick_and_valid() {
        let w = toy(300, 32, 1);
        assert_eq!(w.len(), 300);
        w.validate().unwrap();
        assert!(w.records_max_runtime());
    }

    #[test]
    fn offered_loads_ordered_like_paper() {
        // ANL must carry the highest offered load, SDSC95 the lowest.
        let anl = WorkloadStats::of(&small(anl_spec())).offered_load;
        let ctc = WorkloadStats::of(&small(ctc_spec())).offered_load;
        let s95 = WorkloadStats::of(&small(sdsc95_spec())).offered_load;
        let s96 = WorkloadStats::of(&small(sdsc96_spec())).offered_load;
        assert!(
            anl > ctc && ctc > s96 && s96 > s95,
            "{anl} {ctc} {s96} {s95}"
        );
    }
}
