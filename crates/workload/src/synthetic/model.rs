//! The generic synthetic site generator.
//!
//! [`SiteSpec`] describes a site's statistical shape; [`generate`] turns it
//! into a concrete [`Workload`]. See the module docs of
//! [`crate::synthetic`] for the calibration philosophy.

use crate::job::{Characteristic, JobBuilder, JobId};
use crate::symbols::Sym;
use crate::time::{Dur, Time};
use crate::workload::Workload;

use super::dist;
use crate::rng::Rng64;

/// How a site populates the job-`Type` characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TypeScheme {
    /// ANL style: applications are `batch` or `interactive`; interactive
    /// applications are much shorter and smaller.
    AnlBatchInteractive {
        /// Fraction of applications that are interactive.
        interactive_frac: f64,
    },
    /// CTC style: jobs are `serial` (1 node), `pvm3` (per-application
    /// flag), or `parallel`.
    CtcSerialParallelPvm {
        /// Fraction of applications built against PVM.
        pvm_frac: f64,
    },
}

/// How a site maps jobs onto submission queues (SDSC style).
#[derive(Debug, Clone, PartialEq)]
pub struct QueueScheme {
    /// Upper bounds (hours) of the queue time classes; a final unbounded
    /// class is implied.
    pub time_bucket_hours: Vec<f64>,
    /// Upper bounds (nodes) of the queue size classes; a final class up to
    /// the machine size is implied.
    pub node_buckets: Vec<u32>,
    /// Whether short jobs sometimes land in additional express queues.
    pub express: bool,
}

/// Statistical description of a site; input to [`generate`].
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Workload display name.
    pub name: String,
    /// Machine size in nodes.
    pub machine_nodes: u32,
    /// Number of requests to generate.
    pub n_jobs: usize,
    /// Target mean run time in minutes (matched exactly by rescaling).
    pub mean_runtime_min: f64,
    /// Target offered load (total work / capacity over the submission
    /// span); the arrival span is solved from this.
    pub offered_load: f64,
    /// RNG seed; generation is deterministic given the spec.
    pub seed: u64,
    /// Number of distinct users.
    pub n_users: usize,
    /// Zipf exponent of user activity (larger = more skewed).
    pub user_zipf: f64,
    /// Mean number of distinct applications per user.
    pub mean_apps_per_user: f64,
    /// Within-application run-time dispersion (sigma of the log-normal).
    /// Controls how predictable history makes a job.
    pub runtime_sigma: f64,
    /// Across-application dispersion of mean run times.
    pub app_mean_sigma: f64,
    /// Skew of the power-of-two node-count distribution (larger = more
    /// small jobs).
    pub node_skew: f64,
    /// Probability that a user's next job reuses the same application as
    /// their previous one (temporal locality / submission streaks).
    pub session_repeat_prob: f64,
    /// Probability an application is a shared community code whose
    /// executable name is common across users.
    pub shared_app_prob: f64,
    /// Type recording scheme, if the site records job types.
    pub type_scheme: Option<TypeScheme>,
    /// Probability of a special job class (`DSI`/`PIOFS`), if recorded.
    pub class_prob: Option<f64>,
    /// Whether LoadLeveler script names are recorded.
    pub records_script: bool,
    /// Whether executable names are recorded.
    pub records_executable: bool,
    /// Whether executable arguments are recorded.
    pub records_arguments: bool,
    /// Whether network-adaptor requests are recorded.
    pub records_network_adaptor: bool,
    /// Queue scheme, if the site routes jobs through queues.
    pub queue_scheme: Option<QueueScheme>,
    /// Largest node count a single job may request (defaults to the
    /// machine size). Real sites rarely allow full-machine jobs in the
    /// general queues; capping them keeps conservative backfill from
    /// periodic full drains the traces never exhibited.
    pub max_job_nodes: Option<u32>,
    /// Hard cap on run times, hours (queue policies bounded jobs on all
    /// four systems).
    pub max_runtime_hours: f64,
    /// Whether user-supplied maximum run times are recorded (ANL, CTC).
    pub records_max_runtime: bool,
    /// `ln` of the typical user overestimation factor for max run times.
    pub overestimate_mu: f64,
    /// Dispersion of the overestimation factor.
    pub overestimate_sigma: f64,
    /// Amplitude of the daily arrival-rate modulation in `[0, 1)`.
    pub daily_amplitude: f64,
}

impl SiteSpec {
    /// A neutral starting spec; site constructors override fields.
    pub fn base(name: &str) -> SiteSpec {
        SiteSpec {
            name: name.to_string(),
            machine_nodes: 128,
            n_jobs: 10_000,
            mean_runtime_min: 120.0,
            offered_load: 0.5,
            seed: 0x5EED,
            n_users: 120,
            user_zipf: 1.1,
            mean_apps_per_user: 3.0,
            runtime_sigma: 0.7,
            app_mean_sigma: 1.0,
            node_skew: 0.55,
            session_repeat_prob: 0.6,
            shared_app_prob: 0.12,
            type_scheme: None,
            class_prob: None,
            records_script: false,
            records_executable: false,
            records_arguments: false,
            records_network_adaptor: false,
            queue_scheme: None,
            max_job_nodes: None,
            max_runtime_hours: 18.0,
            records_max_runtime: false,
            overestimate_mu: 1.4, // e^1.4 ~ 4x overestimate
            overestimate_sigma: 0.8,
            daily_amplitude: 0.35,
        }
    }

    /// Copy of the spec with a different job count (for tests/benches).
    pub fn with_jobs(mut self, n: usize) -> SiteSpec {
        self.n_jobs = n;
        self
    }

    /// Copy of the spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> SiteSpec {
        self.seed = seed;
        self
    }
}

/// One application in a user's repertoire.
struct App {
    exe: Option<Sym>,
    script: Option<Sym>,
    adaptor: Option<Sym>,
    class: Option<Sym>,
    /// Relative mean run time (rescaled globally at the end).
    mean_rel: f64,
    sigma: f64,
    pref_nodes: u32,
    interactive: bool,
    pvm: bool,
    /// Argument variants: `(symbol, run-time multiplier)`.
    args: Vec<(Sym, f64)>,
}

struct User {
    sym: Sym,
    apps: Vec<App>,
    /// Typical max-run-time overestimation factor for this user.
    overestimate: f64,
    /// Index of the application the user last submitted.
    current_app: usize,
    /// Argument variant the user last used.
    current_arg: usize,
}

/// Generate a workload from a site spec. Deterministic given the spec.
///
/// # Panics
/// Panics if the spec is degenerate (`n_jobs == 0`, `n_users == 0`,
/// non-positive load or mean run time).
pub fn generate(spec: &SiteSpec) -> Workload {
    assert!(spec.n_jobs > 0, "n_jobs must be positive");
    assert!(spec.n_users > 0, "n_users must be positive");
    assert!(spec.offered_load > 0.0, "offered load must be positive");
    assert!(
        spec.mean_runtime_min > 0.0,
        "mean run time must be positive"
    );

    let mut rng = Rng64::seed_from_u64(spec.seed);
    let node_cap = spec
        .max_job_nodes
        .unwrap_or(spec.machine_nodes)
        .clamp(1, spec.machine_nodes);
    let mut w = Workload::new(spec.name.clone(), spec.machine_nodes);

    // Pre-intern the fixed vocabulary.
    let type_batch = w.symbols.intern("batch");
    let type_interactive = w.symbols.intern("interactive");
    let type_serial = w.symbols.intern("serial");
    let type_parallel = w.symbols.intern("parallel");
    let type_pvm3 = w.symbols.intern("pvm3");
    let class_dsi = w.symbols.intern("DSI");
    let class_piofs = w.symbols.intern("PIOFS");
    let adaptors: Vec<Sym> = ["css0", "csss", "en0"]
        .iter()
        .map(|a| w.symbols.intern(a))
        .collect();
    let shared_exes: Vec<Sym> = (0..10)
        .map(|i| w.symbols.intern(&format!("shared_code{i}")))
        .collect();

    let mut users = build_users(
        spec,
        node_cap,
        &mut rng,
        &mut w,
        &adaptors,
        &shared_exes,
        class_dsi,
        class_piofs,
    );
    let user_pick = dist::Zipf::new(users.len(), spec.user_zipf);

    // --- Draw the job sequence (user, app, variant, relative runtime, nodes).
    struct Draft {
        user: usize,
        app: usize,
        arg: usize,
        rt_rel: f64,
        nodes: u32,
    }
    let mut drafts = Vec::with_capacity(spec.n_jobs);
    for _ in 0..spec.n_jobs {
        let ui = user_pick.sample(&mut rng);
        let (ai, argi) = {
            let u = &mut users[ui];
            let repeat = rng.gen_f64() < spec.session_repeat_prob;
            let ai = if repeat {
                u.current_app
            } else {
                rng.gen_index(u.apps.len())
            };
            u.current_app = ai;
            let app = &u.apps[ai];
            let argi = if app.args.len() <= 1 {
                0
            } else if repeat && rng.gen_f64() < 0.7 {
                u.current_arg.min(app.args.len() - 1)
            } else {
                rng.gen_index(app.args.len())
            };
            u.current_arg = argi;
            (ai, argi)
        };
        let app = &users[ui].apps[ai];
        let mult = if app.args.is_empty() {
            1.0
        } else {
            app.args[argi].1
        };
        let rt_rel = app.mean_rel * mult * dist::lognormal_with_mean(&mut rng, 1.0, app.sigma);
        let mut nodes = app.pref_nodes;
        // Occasional scale-up/scale-down runs of the same application.
        let r = rng.gen_f64();
        if r < 0.08 {
            nodes = (nodes * 2).min(node_cap);
        } else if r < 0.16 {
            nodes = (nodes / 2).max(1);
        }
        drafts.push(Draft {
            user: ui,
            app: ai,
            arg: argi,
            rt_rel,
            nodes,
        });
    }

    // --- Users request *habitual* wall-clock limits: one factor per
    // (user, application, argument variant), applied to the application's
    // typical run time — NOT to the individual job's run time. Real
    // limits carry identity-level information only; encoding per-job run
    // times in them would hand the max-run-time baseline an oracle-grade
    // short-job signal no real scheduler has.
    use std::collections::HashMap;
    let mut habit: HashMap<(usize, usize, usize), f64> = HashMap::new();
    for d in &drafts {
        habit.entry((d.user, d.app, d.arg)).or_insert_with(|| {
            users[d.user].overestimate
                * dist::lognormal_with_mean(&mut rng, 1.0, spec.overestimate_sigma * 0.4)
        });
    }
    // Relative typical run time of each draft's (app, variant).
    let typical_rel = |d: &Draft| -> f64 {
        let app = &users[d.user].apps[d.app];
        let mult = if app.args.is_empty() {
            1.0
        } else {
            app.args[d.arg].1
        };
        app.mean_rel * mult
    };

    // --- Rescale run times so the empirical mean hits the target exactly
    // (after integer rounding, the policy cap, and the kill-at-limit
    // clamp, iterate a few times).
    let target_mean_s = spec.mean_runtime_min * 60.0;
    let max_rt_s = spec.max_runtime_hours.max(1.0) * 3600.0;
    let mut scale = {
        let mean_rel: f64 = drafts.iter().map(|d| d.rt_rel).sum::<f64>() / drafts.len() as f64;
        target_mean_s / mean_rel
    };
    let limit_for = |d: &Draft, scale: f64| -> i64 {
        let intent = typical_rel(d) * scale * habit[&(d.user, d.app, d.arg)];
        dist::round_to_familiar_limit(intent.min(max_rt_s * 2.0))
    };
    let mut runtimes: Vec<i64> = Vec::new();
    for _ in 0..6 {
        runtimes = drafts
            .iter()
            .map(|d| {
                let mut rt = (d.rt_rel * scale).round().clamp(1.0, max_rt_s) as i64;
                if spec.records_max_runtime {
                    // Jobs hitting their wall-clock limit are killed, as
                    // on the real systems.
                    rt = rt.min(limit_for(d, scale)).max(1);
                }
                rt
            })
            .collect();
        let mean: f64 = runtimes.iter().map(|&r| r as f64).sum::<f64>() / runtimes.len() as f64;
        if (mean - target_mean_s).abs() / target_mean_s < 1e-4 {
            break;
        }
        scale *= target_mean_s / mean;
    }

    // --- Solve the arrival span from the offered load and draw arrivals
    // with daily modulation.
    let total_work: f64 = drafts
        .iter()
        .zip(&runtimes)
        .map(|(d, &rt)| d.nodes as f64 * rt as f64)
        .sum();
    let span_s = total_work / (spec.machine_nodes as f64 * spec.offered_load);
    let arrivals = draw_arrivals(&mut rng, spec.n_jobs, span_s, spec.daily_amplitude);

    // --- Materialize jobs.
    let queue_syms = spec
        .queue_scheme
        .as_ref()
        .map(|qs| intern_queues(&mut w, qs));
    for (i, (draft, (&rt, &arrival))) in drafts
        .iter()
        .zip(runtimes.iter().zip(arrivals.iter()))
        .enumerate()
    {
        let user = &users[draft.user];
        let app = &user.apps[draft.app];
        let runtime = Dur(rt.max(1));
        let mut b = JobBuilder::new()
            .submit(Time(arrival))
            .runtime(runtime)
            .nodes(draft.nodes.clamp(1, node_cap))
            .with(Characteristic::User, user.sym);
        if spec.records_executable {
            if let Some(e) = app.exe {
                b = b.with(Characteristic::Executable, e);
            }
        }
        if spec.records_arguments && !app.args.is_empty() {
            b = b.with(Characteristic::Arguments, app.args[draft.arg].0);
        }
        if spec.records_script {
            b = b.with_opt(Characteristic::Script, app.script);
        }
        if spec.records_network_adaptor {
            b = b.with_opt(Characteristic::NetworkAdaptor, app.adaptor);
        }
        if spec.class_prob.is_some() {
            b = b.with_opt(Characteristic::Class, app.class);
        }
        if let Some(scheme) = spec.type_scheme {
            let t = match scheme {
                TypeScheme::AnlBatchInteractive { .. } => {
                    if app.interactive {
                        type_interactive
                    } else {
                        type_batch
                    }
                }
                TypeScheme::CtcSerialParallelPvm { .. } => {
                    if draft.nodes == 1 {
                        type_serial
                    } else if app.pvm {
                        type_pvm3
                    } else {
                        type_parallel
                    }
                }
            };
            b = b.with(Characteristic::Type, t);
        }
        // The habitual per-(user, app, variant) intent drives both the
        // wall-clock limit and (for queued sites) the queue choice.
        let intent_s = typical_rel(draft) * scale * habit[&(draft.user, draft.app, draft.arg)];
        if spec.records_max_runtime {
            let lim = limit_for(draft, scale).max(rt);
            b = b.max_runtime(Dur(lim));
        }
        if let (Some(scheme), Some(qsyms)) = (spec.queue_scheme.as_ref(), queue_syms.as_ref()) {
            let q = pick_queue(scheme, qsyms, intent_s, draft.nodes, &mut rng);
            b = b.with(Characteristic::Queue, q);
        }
        w.jobs.push(b.build(JobId(i as u32)));
    }
    w.finalize();
    debug_assert!(w.validate().is_ok(), "{:?}", w.validate());
    w
}

#[allow(clippy::too_many_arguments)]
fn build_users(
    spec: &SiteSpec,
    node_cap: u32,
    rng: &mut Rng64,
    w: &mut Workload,
    adaptors: &[Sym],
    shared_exes: &[Sym],
    class_dsi: Sym,
    class_piofs: Sym,
) -> Vec<User> {
    let mut users = Vec::with_capacity(spec.n_users);
    for ui in 0..spec.n_users {
        let sym = w.symbols.intern(&format!("u{ui:03}"));
        let n_apps = 1
            + (dist::exponential(rng, 1.0 / (spec.mean_apps_per_user - 1.0).max(0.1)).floor()
                as usize)
                .min(11);
        let mut apps = Vec::with_capacity(n_apps);
        for ai in 0..n_apps {
            let interactive = matches!(
                spec.type_scheme,
                Some(TypeScheme::AnlBatchInteractive { interactive_frac })
                    if rng.gen_f64() < interactive_frac
            );
            let pvm = matches!(
                spec.type_scheme,
                Some(TypeScheme::CtcSerialParallelPvm { pvm_frac })
                    if rng.gen_f64() < pvm_frac
            );
            let mut mean_rel = dist::lognormal_with_mean(rng, 1.0, spec.app_mean_sigma);
            let mut pref_nodes = dist::power_of_two(rng, node_cap, spec.node_skew);
            if interactive {
                mean_rel *= 0.08;
                pref_nodes = pref_nodes.min(8);
            }
            let exe = if rng.gen_f64() < spec.shared_app_prob {
                shared_exes[rng.gen_index(shared_exes.len())]
            } else {
                w.symbols.intern(&format!("u{ui:03}_app{ai}"))
            };
            let script = spec
                .records_script
                .then(|| w.symbols.intern(&format!("u{ui:03}_job{ai}.ll")));
            let adaptor = spec
                .records_network_adaptor
                .then(|| adaptors[dist::weighted_index(rng, &[0.7, 0.2, 0.1])]);
            let class = spec.class_prob.and_then(|p| {
                let r = rng.gen_f64();
                if r < p / 2.0 {
                    Some(class_dsi)
                } else if r < p {
                    Some(class_piofs)
                } else {
                    None
                }
            });
            let n_variants = if spec.records_arguments {
                1 + dist::weighted_index(rng, &[0.5, 0.25, 0.15, 0.10])
            } else {
                1
            };
            let args: Vec<(Sym, f64)> = (0..n_variants)
                .map(|vi| {
                    let name = w.symbols.intern(&format!("u{ui:03}_app{ai}_v{vi}"));
                    // Distinct problem sizes: successive variants roughly
                    // double the run time, with jitter.
                    let mult = (2.0f64).powi(vi as i32 - (n_variants as i32 - 1) / 2)
                        * dist::lognormal_with_mean(rng, 1.0, 0.15);
                    (name, mult)
                })
                .collect();
            apps.push(App {
                exe: Some(exe),
                script,
                adaptor,
                class,
                mean_rel,
                sigma: spec.runtime_sigma * rng.gen_range_f64(0.6, 1.4),
                pref_nodes,
                interactive,
                pvm,
                args,
            });
        }
        users.push(User {
            sym,
            apps,
            overestimate: dist::lognormal(rng, spec.overestimate_mu, spec.overestimate_sigma * 0.6)
                .max(1.05),
            current_app: 0,
            current_arg: 0,
        });
    }
    users
}

/// Draw `n` sorted arrival times (seconds) over `[0, span_s]` from a
/// process whose rate has a sinusoidal daily cycle of amplitude `a`.
fn draw_arrivals(rng: &mut Rng64, n: usize, span_s: f64, a: f64) -> Vec<i64> {
    const DAY: f64 = 86_400.0;
    let a = a.clamp(0.0, 0.95);
    // Cumulative rate Lambda(t) = t + (a*DAY/2pi) * (1 - cos(2pi t / DAY)).
    let lambda = |t: f64| {
        t + a * DAY / std::f64::consts::TAU * (1.0 - (std::f64::consts::TAU * t / DAY).cos())
    };
    let total = lambda(span_s);
    let mut arrivals: Vec<i64> = (0..n)
        .map(|_| {
            let target = rng.gen_f64() * total;
            // Invert Lambda by bisection; Lambda is strictly increasing.
            let (mut lo, mut hi) = (0.0, span_s);
            for _ in 0..50 {
                let mid = 0.5 * (lo + hi);
                if lambda(mid) < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (0.5 * (lo + hi)).round() as i64
        })
        .collect();
    arrivals.sort_unstable();
    arrivals
}

/// Intern the queue-name vocabulary for a queue scheme. Layout:
/// `queues[time_class][node_class]`, plus optional express queues indexed
/// afterwards per node class.
fn intern_queues(w: &mut Workload, qs: &QueueScheme) -> Vec<Vec<Sym>> {
    let n_time = qs.time_bucket_hours.len() + 1;
    let n_node = qs.node_buckets.len() + 1;
    let letters = ["s", "m", "l", "v", "x", "y", "z"];
    let mut out = Vec::with_capacity(n_time + 1);
    for t in 0..n_time {
        let mut row = Vec::with_capacity(n_node);
        for nc in 0..n_node {
            let cap = qs.node_buckets.get(nc).copied().unwrap_or(w.machine_nodes);
            row.push(w.symbols.intern(&format!(
                "q{}{}",
                cap,
                letters.get(t).copied().unwrap_or("w")
            )));
        }
        out.push(row);
    }
    if qs.express {
        let mut row = Vec::with_capacity(n_node);
        for nc in 0..n_node {
            let cap = qs.node_buckets.get(nc).copied().unwrap_or(w.machine_nodes);
            row.push(w.symbols.intern(&format!("q{cap}e")));
        }
        out.push(row);
    }
    out
}

fn pick_queue(
    qs: &QueueScheme,
    queues: &[Vec<Sym>],
    intent_s: f64,
    nodes: u32,
    rng: &mut Rng64,
) -> Sym {
    let node_class = qs
        .node_buckets
        .iter()
        .position(|&b| nodes <= b)
        .unwrap_or(qs.node_buckets.len());
    let time_class = qs
        .time_bucket_hours
        .iter()
        .position(|&b| intent_s <= b * 3600.0)
        .unwrap_or(qs.time_bucket_hours.len());
    // Short jobs sometimes go to the express queue for their size class.
    if qs.express && time_class == 0 && rng.gen_f64() < 0.4 {
        return queues[queues.len() - 1][node_class];
    }
    queues[time_class][node_class]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::WorkloadStats;

    fn quick_spec() -> SiteSpec {
        let mut s = SiteSpec::base("quick");
        s.n_jobs = 1500;
        s.machine_nodes = 64;
        s.mean_runtime_min = 30.0;
        s.offered_load = 0.6;
        s.n_users = 30;
        s.records_executable = true;
        s.records_arguments = true;
        s.records_max_runtime = true;
        s
    }

    #[test]
    fn hits_job_count_and_mean_runtime() {
        let w = generate(&quick_spec());
        assert_eq!(w.len(), 1500);
        let st = WorkloadStats::of(&w);
        assert!(
            (st.mean_runtime_min - 30.0).abs() / 30.0 < 0.02,
            "mean {} want 30",
            st.mean_runtime_min
        );
    }

    #[test]
    fn hits_offered_load() {
        let w = generate(&quick_spec());
        let st = WorkloadStats::of(&w);
        assert!(
            (st.offered_load - 0.6).abs() < 0.05,
            "load {}",
            st.offered_load
        );
    }

    #[test]
    fn is_deterministic() {
        let a = generate(&quick_spec());
        let b = generate(&quick_spec());
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn seed_changes_output() {
        let a = generate(&quick_spec());
        let b = generate(&quick_spec().with_seed(7));
        assert_ne!(a.jobs, b.jobs);
    }

    #[test]
    fn validates_and_fits_machine() {
        let w = generate(&quick_spec());
        w.validate().unwrap();
        assert!(w.jobs.iter().all(|j| j.nodes <= 64));
    }

    #[test]
    fn max_runtimes_bound_runtimes() {
        let w = generate(&quick_spec());
        for j in &w.jobs {
            let m = j.max_runtime.expect("spec records max runtimes");
            assert!(m >= j.runtime, "limit {m:?} < runtime {:?}", j.runtime);
        }
    }

    #[test]
    fn history_gives_signal() {
        // Jobs sharing (user, executable, arguments) must cluster: the
        // within-group dispersion must be far below the global dispersion.
        let w = generate(&quick_spec());
        use std::collections::HashMap;
        let mut groups: HashMap<(Sym, Sym), Vec<f64>> = HashMap::new();
        for j in &w.jobs {
            if let (Some(u), Some(a)) = (
                j.characteristic(Characteristic::User),
                j.characteristic(Characteristic::Arguments),
            ) {
                groups
                    .entry((u, a))
                    .or_default()
                    .push(j.runtime.as_secs_f64());
            }
        }
        let global_mean: f64 =
            w.jobs.iter().map(|j| j.runtime.as_secs_f64()).sum::<f64>() / w.len() as f64;
        let global_mad: f64 = w
            .jobs
            .iter()
            .map(|j| (j.runtime.as_secs_f64() - global_mean).abs())
            .sum::<f64>()
            / w.len() as f64;
        let mut within_mad_sum = 0.0;
        let mut within_n = 0usize;
        for v in groups.values().filter(|v| v.len() >= 5) {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            within_mad_sum += v.iter().map(|x| (x - m).abs()).sum::<f64>();
            within_n += v.len();
        }
        assert!(within_n > 100, "too few repeated groups: {within_n}");
        let within_mad = within_mad_sum / within_n as f64;
        assert!(
            within_mad < 0.65 * global_mad,
            "within {within_mad:.0}s vs global {global_mad:.0}s — history carries no signal"
        );
    }

    #[test]
    fn queue_scheme_produces_queues_correlated_with_runtime() {
        let mut s = quick_spec();
        s.records_max_runtime = false;
        s.queue_scheme = Some(QueueScheme {
            time_bucket_hours: vec![0.5, 2.0, 6.0],
            node_buckets: vec![8, 32],
            express: true,
        });
        let w = generate(&s);
        let st = WorkloadStats::of(&w);
        assert!(st.queues >= 6, "expected several queues, got {}", st.queues);
        // Jobs in the same queue should have more similar runtimes than
        // jobs overall (queue encodes an intent bucket).
        let maxima = w.derive_queue_max_runtimes();
        let mins: Vec<f64> = maxima
            .iter()
            .filter(|(k, _)| k.is_some())
            .map(|(_, d)| d.minutes())
            .collect();
        let spread = mins.iter().cloned().fold(f64::MIN, f64::max)
            / mins.iter().cloned().fold(f64::MAX, f64::min).max(1e-9);
        assert!(spread > 2.0, "queue maxima should differ, spread {spread}");
    }

    #[test]
    fn arrivals_are_sorted_and_span_solves_load() {
        let mut r = Rng64::seed_from_u64(1);
        let arr = draw_arrivals(&mut r, 500, 1_000_000.0, 0.5);
        assert_eq!(arr.len(), 500);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(*arr.last().unwrap() <= 1_000_000);
        assert!(*arr.first().unwrap() >= 0);
    }

    #[test]
    #[should_panic(expected = "n_jobs")]
    fn rejects_empty_spec() {
        generate(&SiteSpec::base("x").with_jobs(0));
    }
}
