//! Small, self-contained random distributions used by the synthetic
//! generators.
//!
//! Implemented here (rather than pulling `rand_distr`) to keep the
//! dependency set to the workspace's allowed list; each sampler is a few
//! lines and unit-tested against its analytic moments.

use crate::rng::Rng64;

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal(rng: &mut Rng64) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen_f64();
    let u2: f64 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample `Normal(mean, sd)`.
pub fn normal(rng: &mut Rng64, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Sample `LogNormal(mu, sigma)` (parameters of the underlying normal).
/// The mean of the distribution is `exp(mu + sigma^2 / 2)`.
pub fn lognormal(rng: &mut Rng64, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample `LogNormal` parameterized by its *mean* and the sigma of the
/// underlying normal; convenient when calibrating to a target mean.
pub fn lognormal_with_mean(rng: &mut Rng64, mean: f64, sigma: f64) -> f64 {
    assert!(mean > 0.0, "lognormal mean must be positive");
    let mu = mean.ln() - sigma * sigma / 2.0;
    lognormal(rng, mu, sigma)
}

/// Sample `Exponential(rate)`; mean is `1 / rate`.
pub fn exponential(rng: &mut Rng64, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.gen_f64();
    -u.ln() / rate
}

/// A Zipf-like discrete distribution over `0..n`: item `i` has weight
/// `1 / (i + 1)^s`. Precomputes the cumulative table for O(log n)
/// sampling.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf table over `n` items with exponent `s`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample an index in `0..n`, lower indices more likely.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_f64() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Sample an index from explicit non-negative weights.
///
/// # Panics
/// Panics when `weights` is empty or sums to zero.
pub fn weighted_index(rng: &mut Rng64, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must sum to a positive finite value"
    );
    let mut x = rng.gen_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Sample a power of two in `[1, cap]`, biased toward small values with
/// weight `1 / 2^(k * skew)` for exponent `k`.
pub fn power_of_two(rng: &mut Rng64, cap: u32, skew: f64) -> u32 {
    assert!(cap >= 1);
    let max_exp = 31 - cap.leading_zeros(); // floor(log2(cap))
    let weights: Vec<f64> = (0..=max_exp)
        .map(|k| 1.0 / (2.0f64).powf(k as f64 * skew))
        .collect();
    1 << weighted_index(rng, &weights)
}

/// Round a duration in seconds *up* to the nearest "familiar" wall-clock
/// limit, as users do when filling in maximum run times: 5/10/15/30 min,
/// 1/2/4/6/8/12/18/24/36/48 h, then whole days.
pub fn round_to_familiar_limit(seconds: f64) -> i64 {
    const GRID: [i64; 14] = [
        300, 600, 900, 1800, 3600, 7200, 14_400, 21_600, 28_800, 43_200, 64_800, 86_400, 129_600,
        172_800,
    ];
    let s = seconds.max(1.0);
    for &g in &GRID {
        if s <= g as f64 {
            return g;
        }
    }
    // Whole days beyond the grid.
    let days = (s / 86_400.0).ceil() as i64;
    days * 86_400
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng() -> Rng64 {
        Rng64::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_with_mean_hits_mean() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| lognormal_with_mean(&mut r, 100.0, 0.7))
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zipf_prefers_low_indices() {
        let mut r = rng();
        let z = Zipf::new(50, 1.1);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
        assert_eq!(z.len(), 50);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn power_of_two_in_range() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = power_of_two(&mut r, 100, 0.5);
            assert!((1..=64).contains(&v));
            assert!(v.is_power_of_two());
        }
    }

    #[test]
    fn familiar_limits() {
        assert_eq!(round_to_familiar_limit(1.0), 300);
        assert_eq!(round_to_familiar_limit(300.0), 300);
        assert_eq!(round_to_familiar_limit(301.0), 600);
        assert_eq!(round_to_familiar_limit(3700.0), 7200);
        assert_eq!(round_to_familiar_limit(200_000.0), 3 * 86_400);
    }

    #[test]
    fn determinism() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
