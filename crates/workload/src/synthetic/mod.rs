//! Synthetic workload generation.
//!
//! The four traces the paper evaluates on (ANL SP2, CTC SP2, SDSC Paragon
//! 1995 and 1996) were obtained privately from the supercomputer centers.
//! This module builds statistically calibrated stand-ins:
//!
//! * Table 1 figures are matched exactly or near-exactly: machine size,
//!   number of requests, mean run time (runtimes are rescaled to the
//!   target mean), and offered load (arrival span is solved from total
//!   work).
//! * Table 2 availability is matched: each site records exactly the
//!   characteristics the paper lists for it (e.g. ANL has executables and
//!   arguments but no queues; SDSC has ~30 queues and users only).
//! * Crucially for this paper, the generator reproduces the *structure
//!   that makes history-based prediction work*: each (user, application)
//!   pair draws run times from its own narrow log-normal cluster, users
//!   submit temporally local streaks of the same application, queue
//!   assignment correlates with intended run time, and user-supplied
//!   maximum run times overestimate true run times by heavy-tailed,
//!   user-specific factors rounded to familiar wall-clock limits.
//!
//! Generation is fully deterministic given the [`SiteSpec`] seed.

pub mod dist;
pub mod model;
pub mod sites;

pub use model::{generate, SiteSpec};
pub use sites::{anl, by_name, ctc, sdsc95, sdsc96, toy, ALL_SITES};
