//! The [`Workload`] container: an ordered job trace bound to a machine.

use std::collections::HashMap;

use crate::job::{Characteristic, Job, JobId};
use crate::symbols::{Sym, SymbolTable};
use crate::time::{Dur, Time};

/// A trace of jobs submitted to one space-shared machine, sorted by
/// submission time, plus the symbol table that gives meaning to the jobs'
/// interned characteristics.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Display name, e.g. `"ANL"` or `"SDSC96"`.
    pub name: String,
    /// Number of nodes on the machine the trace targets.
    pub machine_nodes: u32,
    /// Jobs ordered by `(submit, id)`.
    pub jobs: Vec<Job>,
    /// Interner for all categorical characteristic values.
    pub symbols: SymbolTable,
}

impl Workload {
    /// Create an empty workload for a machine of `machine_nodes` nodes.
    pub fn new(name: impl Into<String>, machine_nodes: u32) -> Self {
        Workload {
            name: name.into(),
            machine_nodes: machine_nodes.max(1),
            jobs: Vec::new(),
            symbols: SymbolTable::new(),
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Look up a job.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Sort jobs by `(submit, original order)` and renumber their ids to
    /// match their index. Call after bulk insertion.
    pub fn finalize(&mut self) {
        self.jobs.sort_by_key(|j| (j.submit, j.id));
        for (i, j) in self.jobs.iter_mut().enumerate() {
            j.id = JobId(i as u32);
        }
    }

    /// Validate structural invariants, returning a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev = Time(i64::MIN);
        for (i, j) in self.jobs.iter().enumerate() {
            if j.id.index() != i {
                return Err(format!("job at index {i} has id {:?}", j.id));
            }
            if j.submit < prev {
                return Err(format!("job {i} submitted before its predecessor"));
            }
            prev = j.submit;
            if j.nodes == 0 {
                return Err(format!("job {i} requests zero nodes"));
            }
            if j.nodes > self.machine_nodes {
                return Err(format!(
                    "job {i} requests {} nodes on a {}-node machine",
                    j.nodes, self.machine_nodes
                ));
            }
            if j.runtime < Dur::SECOND {
                return Err(format!("job {i} has non-positive run time"));
            }
            if let Some(m) = j.max_runtime {
                if m < Dur::SECOND {
                    return Err(format!("job {i} has non-positive max run time"));
                }
            }
            for (ci, c) in j.chars.iter().enumerate() {
                if let Some(s) = c {
                    if s.index() >= self.symbols.len() {
                        return Err(format!(
                            "job {i} characteristic {ci} references unknown symbol"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The distinct values taken by `c` across the trace.
    pub fn distinct_values(&self, c: Characteristic) -> Vec<Sym> {
        let mut seen = vec![false; self.symbols.len()];
        let mut out = Vec::new();
        for j in &self.jobs {
            if let Some(s) = j.characteristic(c) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    out.push(s);
                }
            }
        }
        out
    }

    /// Whether any job records characteristic `c`.
    pub fn records(&self, c: Characteristic) -> bool {
        self.jobs.iter().any(|j| j.characteristic(c).is_some())
    }

    /// Whether any job records a user-supplied maximum run time.
    pub fn records_max_runtime(&self) -> bool {
        self.jobs.iter().any(|j| j.max_runtime.is_some())
    }

    /// Derive per-queue maximum run times, as the paper does for the SDSC
    /// workloads: *"we determine the longest running job in each queue and
    /// use that as the maximum run time for all jobs in that queue."*
    ///
    /// Returns a map from queue symbol to that queue's longest observed run
    /// time. Jobs without a queue fall under `None`, keyed by the longest
    /// run time in the whole trace.
    pub fn derive_queue_max_runtimes(&self) -> HashMap<Option<Sym>, Dur> {
        let mut map: HashMap<Option<Sym>, Dur> = HashMap::new();
        let mut global = Dur::SECOND;
        for j in &self.jobs {
            let q = j.characteristic(Characteristic::Queue);
            let e = map.entry(q).or_insert(Dur::SECOND);
            *e = (*e).max(j.runtime);
            global = global.max(j.runtime);
        }
        map.insert(None, global);
        map
    }

    /// Apply the derived per-queue maxima to every job that lacks a
    /// user-supplied maximum run time. Returns how many jobs were filled.
    ///
    /// This is how SDSC-style workloads (which record no explicit limits)
    /// obtain the "maximum run time" predictor input used in Tables 5
    /// and 11.
    pub fn fill_max_runtimes_from_queues(&mut self) -> usize {
        let maxima = self.derive_queue_max_runtimes();
        let global = maxima[&None];
        let mut filled = 0;
        for j in &mut self.jobs {
            if j.max_runtime.is_none() {
                let q = j.chars[Characteristic::Queue.index()];
                let m = maxima.get(&q).copied().unwrap_or(global);
                j.max_runtime = Some(m);
                filled += 1;
            }
        }
        filled
    }

    /// A copy of this workload truncated to its first `n` jobs (by
    /// submission order). Useful for fast tests and benchmarks.
    pub fn truncated(&self, n: usize) -> Workload {
        let mut w = Workload {
            name: format!("{}[..{n}]", self.name),
            machine_nodes: self.machine_nodes,
            jobs: self.jobs.iter().take(n).cloned().collect(),
            symbols: self.symbols.clone(),
        };
        w.finalize();
        w
    }

    /// A copy of this workload keeping only the jobs from index `from`
    /// on (submission times preserved). Together with
    /// [`Workload::truncated`] this splits a trace into a training
    /// prefix and an evaluation suffix.
    pub fn suffix(&self, from: usize) -> Workload {
        let mut w = Workload {
            name: format!("{}[{from}..]", self.name),
            machine_nodes: self.machine_nodes,
            jobs: self.jobs.iter().skip(from).cloned().collect(),
            symbols: self.symbols.clone(),
        };
        w.finalize();
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;

    fn wl_with(jobs: Vec<Job>) -> Workload {
        let mut w = Workload::new("test", 64);
        w.jobs = jobs;
        w.finalize();
        w
    }

    #[test]
    fn finalize_sorts_and_renumbers() {
        let a = JobBuilder::new().submit(Time(30)).build(JobId(0));
        let b = JobBuilder::new().submit(Time(10)).build(JobId(1));
        let w = wl_with(vec![a, b]);
        assert_eq!(w.jobs[0].submit, Time(10));
        assert_eq!(w.jobs[0].id, JobId(0));
        assert_eq!(w.jobs[1].id, JobId(1));
        assert!(w.validate().is_ok());
    }

    #[test]
    fn validate_rejects_oversized_jobs() {
        let a = JobBuilder::new().nodes(65).build(JobId(0));
        let mut w = Workload::new("test", 64);
        w.jobs = vec![a];
        // bypass builder clamp by direct mutation
        w.jobs[0].nodes = 65;
        assert!(w.validate().is_err());
    }

    #[test]
    fn validate_rejects_unsorted() {
        let a = JobBuilder::new().submit(Time(30)).build(JobId(0));
        let b = JobBuilder::new().submit(Time(10)).build(JobId(1));
        let mut w = Workload::new("test", 64);
        w.jobs = vec![a, b]; // not finalized
        assert!(w.validate().is_err());
    }

    #[test]
    fn queue_maxima_derivation() {
        let mut w = Workload::new("test", 64);
        let q1 = w.symbols.intern("q16m");
        let q2 = w.symbols.intern("q64l");
        w.jobs = vec![
            JobBuilder::new()
                .with(Characteristic::Queue, q1)
                .runtime(Dur(100))
                .build(JobId(0)),
            JobBuilder::new()
                .with(Characteristic::Queue, q1)
                .runtime(Dur(500))
                .submit(Time(1))
                .build(JobId(1)),
            JobBuilder::new()
                .with(Characteristic::Queue, q2)
                .runtime(Dur(50))
                .submit(Time(2))
                .build(JobId(2)),
        ];
        w.finalize();
        let m = w.derive_queue_max_runtimes();
        assert_eq!(m[&Some(q1)], Dur(500));
        assert_eq!(m[&Some(q2)], Dur(50));
        assert_eq!(m[&None], Dur(500));

        let filled = w.fill_max_runtimes_from_queues();
        assert_eq!(filled, 3);
        assert_eq!(w.jobs[0].max_runtime, Some(Dur(500)));
        assert_eq!(w.jobs[2].max_runtime, Some(Dur(50)));
    }

    #[test]
    fn fill_respects_existing_limits() {
        let mut w = Workload::new("test", 64);
        w.jobs = vec![JobBuilder::new()
            .runtime(Dur(100))
            .max_runtime(Dur(200))
            .build(JobId(0))];
        w.finalize();
        assert_eq!(w.fill_max_runtimes_from_queues(), 0);
        assert_eq!(w.jobs[0].max_runtime, Some(Dur(200)));
    }

    #[test]
    fn truncated_keeps_prefix() {
        let jobs: Vec<Job> = (0..10)
            .map(|i| JobBuilder::new().submit(Time(i)).build(JobId(i as u32)))
            .collect();
        let w = wl_with(jobs);
        let t = w.truncated(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.jobs[2].submit, Time(2));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn distinct_values_and_records() {
        let mut w = Workload::new("test", 64);
        let u1 = w.symbols.intern("alice");
        let u2 = w.symbols.intern("bob");
        w.jobs = vec![
            JobBuilder::new()
                .with(Characteristic::User, u1)
                .build(JobId(0)),
            JobBuilder::new()
                .with(Characteristic::User, u2)
                .submit(Time(1))
                .build(JobId(1)),
            JobBuilder::new()
                .with(Characteristic::User, u1)
                .submit(Time(2))
                .build(JobId(2)),
        ];
        w.finalize();
        assert_eq!(w.distinct_values(Characteristic::User).len(), 2);
        assert!(w.records(Characteristic::User));
        assert!(!w.records(Characteristic::Queue));
        assert!(!w.records_max_runtime());
    }
}
