#![warn(missing_docs)]

//! Job, workload, and trace models for space-shared parallel machines.
//!
//! This crate is the data substrate of the `qpredict` workspace, a
//! reproduction of Smith, Taylor & Foster, *"Using Run-Time Predictions to
//! Estimate Queue Wait Times and Improve Scheduler Performance"* (IPPS 1999).
//!
//! It provides:
//!
//! * [`Time`]/[`Dur`] — integer-second time arithmetic shared by the whole
//!   workspace,
//! * [`Job`] and [`Characteristic`] — the job model of the paper's Table 2
//!   (type, queue, class, user, script, executable, arguments, network
//!   adaptor, node count, maximum run time),
//! * [`Workload`] — an ordered job trace bound to a machine size, with
//!   derived statistics ([`WorkloadStats`]),
//! * [`swf`] — a reader/writer for the Standard Workload Format so real
//!   traces can be used when available,
//! * [`synthetic`] — calibrated synthetic generators standing in for the
//!   four proprietary traces of the paper (ANL, CTC, SDSC95, SDSC96), and
//! * [`compress_interarrivals`] — the interarrival-compression transform
//!   used by the paper's "compressed SDSC" experiment.

pub mod analysis;
pub mod compress;
pub mod event;
pub mod job;
pub mod rng;
pub mod stats;
pub mod swf;
pub mod symbols;
pub mod synthetic;
pub mod time;
pub mod workload;

pub use compress::compress_interarrivals;
pub use event::{synthesize_events, EventKind, JobEvent, SubmitSpec};
pub use job::{Characteristic, Job, JobBuilder, JobId, CHARACTERISTICS};
pub use rng::Rng64;
pub use stats::WorkloadStats;
pub use swf::{IngestPolicy, IngestReport, SkipCategory, SwfError};
pub use symbols::{Sym, SymbolTable};
pub use time::{Dur, Time};
pub use workload::Workload;
