#![warn(missing_docs)]

//! Queue wait-time prediction and prediction-driven scheduling — the two
//! applications of run-time prediction the paper evaluates — plus the
//! experiment harness that regenerates every quantitative table.
//!
//! * [`forecast_start`] — simulate a scheduler forward from a system
//!   [`qpredict_sim::Snapshot`] using predicted run times, yielding the
//!   predicted start time of a job (Section 3's technique);
//! * [`run_wait_prediction`] — the full Tables 4–9 pipeline: schedule a
//!   trace with maximum run times, predict every arrival's wait at
//!   submission via nested simulation, and score the predictions;
//! * [`run_scheduling`] — the Tables 10–15 pipeline: drive LWF/backfill
//!   with a run-time predictor and measure utilization and mean wait;
//! * [`PredictorKind`] — uniform construction of every predictor the
//!   paper compares (actual, maximum run times, Smith, Gibbons, Downey
//!   x2);
//! * [`template_search`] — the supervised, resumable GA template search
//!   (checkpoint/restore, panic-isolated retrying evaluation) packaged
//!   as a harness step;
//! * [`paper`] — one function per paper table, with the published values
//!   embedded for side-by-side comparison;
//! * [`grid`] — a parallel runner for experiment grids
//!   (workload x algorithm x predictor).

pub mod adapter;
pub mod forecast;
pub mod grid;
pub mod kind;
pub mod paper;
pub mod scheduling;
pub mod searched;
pub mod statewait;
pub mod tables;
pub mod template_search;
pub mod waittime;

pub use adapter::PredictorEstimator;
pub use forecast::{forecast_start, forecast_start_interval, WaitInterval};
pub use grid::run_cells;
pub use kind::PredictorKind;
pub use scheduling::{run_scheduling, run_scheduling_with, FaultSummary, SchedulingOutcome};
pub use statewait::{run_state_wait_prediction, StateWaitPredictor};
pub use tables::Table;
pub use template_search::{run_template_search, TemplateSearchOutcome, TemplateSearchSpec};
pub use waittime::{run_wait_prediction, run_wait_prediction_warm, WaitPredictionOutcome};
