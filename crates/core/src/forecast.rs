//! Nested scheduler simulation: predict when a job will start.
//!
//! The paper's wait-time prediction technique (Section 3): *"use
//! predictions of application execution times along with the scheduling
//! algorithms to simulate the actions made by a scheduler and determine
//! when applications will begin to execute."*
//!
//! [`forecast_start`] takes a [`Snapshot`] of the live system and replays
//! the scheduling algorithm — through literally the same
//! [`qpredict_sim::schedule_pass`] the real engine uses — until the
//! target job starts. Two estimates drive the replay:
//!
//! * the **belief** durations are what the real scheduler uses for its
//!   decisions (in the paper's systems: the user-supplied maximum run
//!   times). The forecast feeds these to `schedule_pass` so the simulated
//!   *decisions* track the real scheduler's;
//! * the **predicted** durations are the run-time predictions under
//!   study. The forecast advances simulated time with these: they decide
//!   when nodes actually free up.
//!
//! With a perfect predictor the forecast then reproduces the real
//! schedule exactly, except for jobs that arrive later — which is why the
//! paper measures a tiny built-in error for backfill (arrivals cannot
//! push existing reservations) and a large one for LWF (smaller-work
//! arrivals jump the queue). No future arrivals are modeled: they are
//! unknown at prediction time.
//!
//! The experiment drivers pass `predict` closures that route through a
//! generation-keyed [`qpredict_predict::CachingPredictor`]: no
//! completion occurs *inside* a forecast, so the predictor is frozen at
//! one generation for its duration, and across forecasts repeated
//! `(job, elapsed)` queries are served from the cache until a completion
//! bumps the generation. [`forecast_start_interval`] additionally pins
//! its three passes to one set of memoized predictions, below.

use qpredict_sim::{schedule_pass, Algorithm, QueueEntry, RunningView, Snapshot};
use qpredict_workload::{Dur, Job, JobId, Time, Workload};

/// Simulate the scheduler forward from `snap` and return the predicted
/// start time of `target`.
///
/// `belief(job, elapsed)` supplies the duration the *scheduler* assumes
/// (e.g. the maximum run time); `predict(job, elapsed)` supplies the
/// duration under study, used as the job's simulated actual run time.
/// Pass the same closure twice when the scheduler's belief *is* the
/// prediction (e.g. when forecasting a prediction-driven scheduler).
///
/// # Panics
/// Panics if `target` is not queued in `snap`.
pub fn forecast_start(
    wl: &Workload,
    alg: Algorithm,
    snap: &Snapshot,
    mut belief: impl FnMut(&Job, Dur) -> Dur,
    mut predict: impl FnMut(&Job, Dur) -> Dur,
    target: JobId,
) -> Time {
    let _span = qpredict_obs::span("forecast");
    qpredict_obs::counter_add("forecast.calls", 1);
    assert!(
        snap.queued.iter().any(|&(id, _)| id == target),
        "forecast target must be in the queue"
    );

    struct FRunning {
        nodes: u32,
        /// When the job frees its nodes in the forecast (from `predict`).
        end: Time,
        /// When the scheduler believes it will finish (from `belief`).
        belief_end: Time,
    }
    let mut now = snap.now;
    let mut free = snap.free_nodes;
    let mut running: Vec<FRunning> = snap
        .running
        .iter()
        .map(|&(id, start)| {
            let job = wl.job(id);
            let elapsed = now - start;
            let pred = predict(job, elapsed).max(elapsed + Dur::SECOND);
            let bel = belief(job, elapsed).max(elapsed + Dur::SECOND);
            FRunning {
                nodes: job.nodes,
                end: start + pred,
                belief_end: start + bel,
            }
        })
        .collect();
    struct FQueued {
        id: JobId,
        seq: u64,
        nodes: u32,
        /// Simulated actual duration once started.
        dur: Dur,
        /// Duration the scheduler believes (ordering, reservations).
        belief_dur: Dur,
    }
    let mut queue: Vec<FQueued> = snap
        .queued
        .iter()
        .map(|&(id, seq)| {
            let job = wl.job(id);
            FQueued {
                id,
                seq,
                nodes: job.nodes,
                dur: predict(job, Dur::ZERO).max(Dur::SECOND),
                belief_dur: belief(job, Dur::ZERO).max(Dur::SECOND),
            }
        })
        .collect();

    loop {
        // One scheduling pass at `now`, driven by scheduler beliefs.
        let running_views: Vec<RunningView> = running
            .iter()
            .map(|r| RunningView {
                nodes: r.nodes,
                // A job running past its believed end is re-believed to
                // finish imminently, as the real engine's elapsed clamp
                // does.
                pred_end: r.belief_end.max(now + Dur::SECOND),
            })
            .collect();
        let entries: Vec<QueueEntry> = queue
            .iter()
            .map(|q| QueueEntry {
                id: q.id,
                seq: q.seq,
                nodes: q.nodes,
                pred_runtime: q.belief_dur,
            })
            .collect();
        let mut started = schedule_pass(alg, now, wl.machine_nodes, free, &running_views, &entries);
        started.sort_unstable();
        for &i in started.iter().rev() {
            let q = queue.remove(i);
            if q.id == target {
                return now;
            }
            free -= q.nodes;
            running.push(FRunning {
                nodes: q.nodes,
                end: now + q.dur,
                belief_end: now + q.belief_dur,
            });
        }
        // Advance to the next (predicted) completion.
        let next_end = running
            .iter()
            .map(|r| r.end.max(now + Dur::SECOND))
            .min()
            .expect("queued work remains but nothing is running");
        now = next_end;
        let mut freed = 0u32;
        running.retain(|r| {
            if r.end <= now {
                freed += r.nodes;
                false
            } else {
                true
            }
        });
        free += freed;
    }
}

/// A wait-time estimate with uncertainty bounds.
///
/// The paper's run-time predictions carry confidence intervals; pushing
/// the interval endpoints through the forecast yields an optimistic and a
/// pessimistic start time around the point estimate — what a user-facing
/// "your job should start between X and Y" service would display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitInterval {
    /// Start time if every job finishes a confidence-interval early.
    pub optimistic: Time,
    /// Start time at the point predictions.
    pub expected: Time,
    /// Start time if every job runs a confidence-interval long.
    pub pessimistic: Time,
}

/// Forecast the start of `target` three times: at the prediction point
/// estimates and at the low/high ends of their confidence intervals
/// (infinite half-widths are treated as ±50% of the estimate).
///
/// `belief` drives decisions as in [`forecast_start`]; `predict` returns
/// the full [`qpredict_predict::Prediction`] so the interval is available.
pub fn forecast_start_interval(
    wl: &Workload,
    alg: Algorithm,
    snap: &Snapshot,
    mut belief: impl FnMut(&Job, Dur) -> Dur,
    mut predict: impl FnMut(&Job, Dur) -> qpredict_predict::Prediction,
    target: JobId,
) -> WaitInterval {
    // Memoize predictions so all three passes see identical estimates
    // (predictors may be stateful).
    let mut cache: std::collections::HashMap<(JobId, Dur), (Dur, f64)> =
        std::collections::HashMap::new();
    let mut beliefs: std::collections::HashMap<(JobId, Dur), Dur> =
        std::collections::HashMap::new();
    {
        // Prime the caches with one pass over the snapshot's jobs.
        let mut prime = |id: JobId, elapsed: Dur| {
            let job = wl.job(id);
            let p = predict(job, elapsed);
            cache.insert((id, elapsed), (p.estimate, p.ci_halfwidth));
            beliefs.insert((id, elapsed), belief(job, elapsed));
        };
        for &(id, start) in &snap.running {
            prime(id, snap.now - start);
        }
        for &(id, _) in &snap.queued {
            prime(id, Dur::ZERO);
        }
    }
    let bounded = |est: Dur, ci: f64, sign: f64| -> Dur {
        let half = if ci.is_finite() {
            ci
        } else {
            est.as_secs_f64() * 0.5
        };
        Dur::from_secs_f64((est.as_secs_f64() + sign * half).max(1.0))
    };
    let run = |sign: f64,
               cache: &std::collections::HashMap<(JobId, Dur), (Dur, f64)>,
               beliefs: &std::collections::HashMap<(JobId, Dur), Dur>|
     -> Time {
        forecast_start(
            wl,
            alg,
            snap,
            |j, e| beliefs[&(j.id, e)],
            |j, e| {
                let (est, ci) = cache[&(j.id, e)];
                bounded(est, ci, sign)
            },
            target,
        )
    };
    let optimistic = run(-1.0, &cache, &beliefs);
    let expected = run(0.0, &cache, &beliefs);
    let pessimistic = run(1.0, &cache, &beliefs);
    WaitInterval {
        // Guard the ordering: interval endpoints need not be monotone
        // through a nonlinear scheduler, so normalize.
        optimistic: optimistic.min(expected),
        expected,
        pessimistic: pessimistic.max(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::{JobBuilder, Time, Workload};

    /// machine of 8 nodes; jobs: (submit, nodes, runtime)
    fn wl(jobs: &[(i64, u32, i64)]) -> Workload {
        let mut w = Workload::new("t", 8);
        w.jobs = jobs
            .iter()
            .enumerate()
            .map(|(i, &(s, n, r))| {
                JobBuilder::new()
                    .submit(Time(s))
                    .nodes(n)
                    .runtime(Dur(r))
                    .build(JobId(i as u32))
            })
            .collect();
        w.finalize();
        w
    }

    fn snap(now: i64, free: u32, running: &[(u32, i64)], queued: &[u32]) -> Snapshot {
        Snapshot {
            now: Time(now),
            free_nodes: free,
            running: running
                .iter()
                .map(|&(id, s)| (JobId(id), Time(s)))
                .collect(),
            queued: queued
                .iter()
                .enumerate()
                .map(|(i, &id)| (JobId(id), i as u64))
                .collect(),
        }
    }

    /// Forecast with belief == prediction (the common shorthand in
    /// these tests).
    fn fc(
        w: &Workload,
        alg: Algorithm,
        s: &Snapshot,
        f: impl Fn(&Job, Dur) -> Dur + Copy,
        target: JobId,
    ) -> Time {
        forecast_start(w, alg, s, f, f, target)
    }

    #[test]
    fn empty_machine_starts_target_immediately() {
        let w = wl(&[(0, 4, 100)]);
        let s = snap(0, 8, &[], &[0]);
        assert_eq!(
            fc(&w, Algorithm::Fcfs, &s, |j, _| j.runtime, JobId(0)),
            Time(0)
        );
    }

    #[test]
    fn fcfs_waits_for_running_job() {
        let w = wl(&[(0, 8, 100), (10, 8, 50)]);
        let s = snap(10, 0, &[(0, 0)], &[1]);
        assert_eq!(
            fc(&w, Algorithm::Fcfs, &s, |j, _| j.runtime, JobId(1)),
            Time(100)
        );
    }

    #[test]
    fn forecast_uses_predictions_not_actuals() {
        let w = wl(&[(0, 8, 100), (10, 8, 50)]);
        let s = snap(10, 0, &[(0, 0)], &[1]);
        assert_eq!(
            fc(&w, Algorithm::Fcfs, &s, |_j, _| Dur(1000), JobId(1)),
            Time(1000)
        );
    }

    #[test]
    fn elapsed_time_conditioning_applies() {
        let w = wl(&[(0, 8, 600), (500, 8, 50)]);
        let s = snap(500, 0, &[(0, 0)], &[1]);
        assert_eq!(
            fc(&w, Algorithm::Fcfs, &s, |_j, _| Dur(100), JobId(1)),
            Time(501)
        );
    }

    #[test]
    fn lwf_forecast_reorders_queue() {
        let w = wl(&[(0, 8, 100), (10, 8, 1000), (20, 8, 50)]);
        let s = snap(20, 0, &[(0, 0)], &[1, 2]);
        assert_eq!(
            fc(&w, Algorithm::Lwf, &s, |j, _| j.runtime, JobId(2)),
            Time(100)
        );
        assert_eq!(
            fc(&w, Algorithm::Fcfs, &s, |j, _| j.runtime, JobId(2)),
            Time(1100)
        );
    }

    #[test]
    fn backfill_forecast_slips_small_job_into_hole() {
        let w = wl(&[(0, 4, 100), (10, 8, 200), (20, 4, 50)]);
        let s = snap(20, 4, &[(0, 0)], &[1, 2]);
        assert_eq!(
            fc(&w, Algorithm::Backfill, &s, |j, _| j.runtime, JobId(2)),
            Time(20)
        );
    }

    #[test]
    fn belief_steers_decisions_prediction_steers_time() {
        // Backfill with loose beliefs (limits) and exact predictions.
        // 4 nodes free; 4-node job running, believed to end at t=400
        // but predicted (and actually ending) at t=100.
        // Queue: 8-node head (reserved at believed 400), then a 4-node
        // 50 s target whose belief is 300 s.
        // Decision-wise the target CANNOT backfill: believed 300 s from
        // t=20 runs past the believed reservation at 400? No: 20+300=320
        // < 400, so it backfills immediately under belief.
        let w = wl(&[(0, 4, 100), (10, 8, 200), (20, 4, 50)]);
        let s = snap(20, 4, &[(0, 0)], &[1, 2]);
        let belief = |j: &Job, _e: Dur| match j.id.0 {
            0 => Dur(400),
            1 => Dur(400),
            _ => Dur(300),
        };
        let predict = |j: &Job, _e: Dur| j.runtime;
        let t = forecast_start(&w, Algorithm::Backfill, &s, belief, predict, JobId(2));
        assert_eq!(t, Time(20));
        // Now a belief of 500 s for the target: 20+500=520 > 400, it
        // would delay the believed reservation -> it waits for the
        // *predicted* completion of the running job (t=100), after which
        // the 8-node head starts (per belief the head is the earliest
        // reservation)... the head occupies everything for its predicted
        // 200 s, so the target starts at 300.
        let belief2 = |j: &Job, _e: Dur| match j.id.0 {
            0 => Dur(400),
            1 => Dur(400),
            _ => Dur(500),
        };
        let t = forecast_start(&w, Algorithm::Backfill, &s, belief2, predict, JobId(2));
        assert_eq!(t, Time(300));
    }

    #[test]
    #[should_panic(expected = "target must be in the queue")]
    fn rejects_non_queued_target() {
        let w = wl(&[(0, 4, 100)]);
        let s = snap(0, 8, &[], &[]);
        fc(&w, Algorithm::Fcfs, &s, |j, _| j.runtime, JobId(0));
    }

    #[test]
    fn interval_brackets_point_estimate() {
        use qpredict_predict::Prediction;
        // One running job with an uncertain prediction; target queued
        // behind it needing the full machine.
        let w = wl(&[(0, 8, 1000), (10, 8, 50)]);
        let s = snap(10, 0, &[(0, 0)], &[1]);
        let iv = forecast_start_interval(
            &w,
            Algorithm::Fcfs,
            &s,
            |j, e| j.runtime.max(e + Dur(1)),
            |j, _e| Prediction {
                estimate: j.runtime,
                ci_halfwidth: 200.0,
                fallback: false,
            },
            JobId(1),
        );
        assert!(iv.optimistic <= iv.expected);
        assert!(iv.expected <= iv.pessimistic);
        assert_eq!(iv.expected, Time(1000));
        assert_eq!(iv.optimistic, Time(800));
        assert_eq!(iv.pessimistic, Time(1200));
    }

    #[test]
    fn interval_with_exact_predictions_collapses() {
        use qpredict_predict::Prediction;
        let w = wl(&[(0, 8, 1000), (10, 8, 50)]);
        let s = snap(10, 0, &[(0, 0)], &[1]);
        let iv = forecast_start_interval(
            &w,
            Algorithm::Fcfs,
            &s,
            |j, e| j.runtime.max(e + Dur(1)),
            |j, _e| Prediction {
                estimate: j.runtime,
                ci_halfwidth: 0.0,
                fallback: false,
            },
            JobId(1),
        );
        assert_eq!(iv.optimistic, iv.expected);
        assert_eq!(iv.expected, iv.pessimistic);
    }

    #[test]
    fn deep_queue_terminates() {
        let mut jobs: Vec<(i64, u32, i64)> = vec![(0, 8, 100)];
        for i in 0..50 {
            jobs.push((i + 1, 8, 60));
        }
        let w = wl(&jobs);
        let queued: Vec<u32> = (1..=50).collect();
        let s = snap(60, 0, &[(0, 0)], &queued);
        let t = fc(&w, Algorithm::Fcfs, &s, |j, _| j.runtime, JobId(50));
        assert_eq!(t, Time(100 + 49 * 60));
    }
}
