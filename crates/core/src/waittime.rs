//! The wait-time prediction experiment (paper Section 3, Tables 4–9).
//!
//! Pipeline: the outer simulation schedules the trace the way the real
//! systems did — **using maximum run times** (the paper attributes
//! backfill's small built-in error in Table 4 to exactly this:
//! "scheduling is performed using maximum run times"). At every
//! submission, the arrival's wait time is predicted by nested simulation
//! ([`crate::forecast_start`]) using the predictor under study; the
//! prediction is scored against the wait the outer schedule realizes.
//!
//! The predictor learns online: completions enter its history as they
//! happen, so early arrivals are predicted with little history (the
//! paper's "initial ramp-up").
//!
//! The predictor under study is wrapped in a [`CachingPredictor`]: a
//! nested forecast re-requests the same `(job, elapsed)` estimates that
//! earlier forecasts already computed, and between two completions the
//! predictor's generation — and therefore every estimate — is frozen, so
//! the repeats are served from the cache. Error stats are still recorded
//! per call, keeping the measured error stream bit-identical to an
//! uncached run.

use qpredict_predict::{CachingPredictor, ErrorStats, RunTimePredictor};
use qpredict_sim::{
    Algorithm, MaxRuntimeEstimator, Metrics, RuntimeEstimator, SimHooks, Simulation, Snapshot,
};
use qpredict_workload::{Dur, Job, Time, Workload};

use crate::forecast::forecast_start;
use crate::kind::PredictorKind;

/// Results of a wait-time prediction run.
#[derive(Debug, Clone)]
pub struct WaitPredictionOutcome {
    /// Workload name.
    pub workload: String,
    /// Scheduling algorithm simulated.
    pub algorithm: Algorithm,
    /// Predictor under study.
    pub predictor: &'static str,
    /// Wait-time prediction errors (predicted vs realized wait, one
    /// sample per job).
    pub wait_errors: ErrorStats,
    /// Run-time prediction errors over every prediction made inside the
    /// nested simulations.
    pub runtime_errors: ErrorStats,
    /// Outer-schedule quality (identical across predictors for a given
    /// workload/algorithm, since the outer schedule uses max run times).
    pub metrics: Metrics,
}

struct WaitStudy<'w, P> {
    wl: &'w Workload,
    alg: Algorithm,
    predictor: CachingPredictor<P>,
    /// The outer scheduler's own estimator (maximum run times); the
    /// forecast mirrors its decisions with these beliefs.
    belief: MaxRuntimeEstimator,
    runtime_errors: ErrorStats,
    predicted_wait: Vec<Option<Dur>>,
}

impl<P: RunTimePredictor> SimHooks for WaitStudy<'_, P> {
    fn after_submit(&mut self, snap: &Snapshot, job: &Job) {
        let predictor = &mut self.predictor;
        let belief = &mut self.belief;
        let errors = &mut self.runtime_errors;
        let wl = self.wl;
        let now = snap.now;
        let start = forecast_start(
            wl,
            self.alg,
            snap,
            |j: &Job, elapsed: Dur| belief.estimate(j, now, elapsed),
            |j: &Job, elapsed: Dur| {
                let pred = predictor.predict(j, elapsed);
                errors.record(pred.estimate, j.runtime);
                pred.estimate
            },
            job.id,
        );
        self.predicted_wait[job.id.index()] = Some(start - snap.now);
    }

    fn on_job_complete(&mut self, job: &Job, _now: Time) {
        RunTimePredictor::on_complete(&mut self.predictor, job);
    }
}

/// Run the full wait-time prediction experiment for one
/// workload/algorithm/predictor cell.
pub fn run_wait_prediction(
    wl: &Workload,
    alg: Algorithm,
    kind: PredictorKind,
) -> WaitPredictionOutcome {
    run_wait_prediction_with(wl, alg, kind.build(wl))
}

/// Like [`run_wait_prediction`] but with the predictor pre-trained on
/// the first `train_jobs` jobs of the trace (as if a previous accounting
/// period had been loaded): the paper's suggested fix for the
/// cold-start ramp-up — *"This deficiency could be corrected by using a
/// training set to initialize C."* The experiment then runs on the
/// remaining suffix only.
pub fn run_wait_prediction_warm(
    wl: &Workload,
    alg: Algorithm,
    kind: PredictorKind,
    train_jobs: usize,
) -> WaitPredictionOutcome {
    let train_jobs = train_jobs.min(wl.len().saturating_sub(1));
    let mut predictor = kind.build(wl);
    for j in wl.jobs.iter().take(train_jobs) {
        RunTimePredictor::on_complete(&mut predictor, j);
    }
    let eval = wl.suffix(train_jobs);
    run_wait_prediction_with(&eval, alg, predictor)
}

fn run_wait_prediction_with(
    wl: &Workload,
    alg: Algorithm,
    predictor: crate::kind::BoxedPredictor,
) -> WaitPredictionOutcome {
    let _span = qpredict_obs::span("run.waitpred");
    let predictor_name = predictor.name();
    let mut study = WaitStudy {
        wl,
        alg,
        predictor: CachingPredictor::new(predictor),
        belief: MaxRuntimeEstimator::from_workload(wl),
        runtime_errors: ErrorStats::new(),
        predicted_wait: vec![None; wl.len()],
    };
    // The outer system schedules with maximum run times, as the paper's
    // systems (EASY-style) did.
    let mut outer_est = MaxRuntimeEstimator::from_workload(wl);
    let mut sim = Simulation::new(wl, alg);
    let result = sim.run_with_hooks(&mut outer_est, &mut study);

    let mut wait_errors = ErrorStats::new();
    for outcome in &result.outcomes {
        let predicted =
            study.predicted_wait[outcome.id.index()].expect("every submission was forecast");
        wait_errors.record(predicted, outcome.wait());
    }
    let mut metrics = result.metrics;
    metrics.estimate_cache = Some(study.predictor.stats());
    WaitPredictionOutcome {
        workload: wl.name.clone(),
        algorithm: alg,
        predictor: predictor_name,
        wait_errors,
        runtime_errors: study.runtime_errors,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::synthetic::toy;

    #[test]
    fn fcfs_with_actual_runtimes_predicts_exactly() {
        // The paper omits FCFS from Table 4 because "there is no error
        // when computing wait-time predictors in this case: later-arriving
        // jobs do not affect the start times of the jobs that are
        // currently in the queue." This is the strongest end-to-end check
        // of the forecast machinery: predicted waits must equal realized
        // waits for every one of the jobs.
        let wl = toy(300, 32, 20);
        let out = run_wait_prediction(&wl, Algorithm::Fcfs, PredictorKind::Actual);
        assert_eq!(out.wait_errors.count(), 300);
        assert_eq!(
            out.wait_errors.mean_abs_error_min(),
            0.0,
            "FCFS + oracle must be exact"
        );
        assert_eq!(out.runtime_errors.mean_abs_error_min(), 0.0);
    }

    #[test]
    fn backfill_with_actual_runtimes_has_small_builtin_error() {
        // Table 4: backfill's error with actual run times is small
        // (3-10% of mean wait) but generally nonzero — it stems from the
        // outer scheduler using max run times. It must be far below the
        // max-runtime predictor's error (Table 5: 190-350%).
        let wl = toy(400, 24, 21);
        let oracle = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Actual);
        let maxrt = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::MaxRuntime);
        assert!(
            oracle.wait_errors.mean_abs_error_min() < maxrt.wait_errors.mean_abs_error_min(),
            "oracle {:.2} must beat maxrt {:.2}",
            oracle.wait_errors.mean_abs_error_min(),
            maxrt.wait_errors.mean_abs_error_min()
        );
    }

    #[test]
    fn lwf_has_builtin_error_even_with_oracle() {
        // Table 4's headline: LWF wait predictions err even with perfect
        // run times, because later-arriving smaller jobs jump the queue.
        let wl = toy(400, 16, 22);
        let out = run_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Actual);
        assert!(
            out.wait_errors.mean_abs_error_min() > 0.0,
            "LWF should have built-in error under load"
        );
    }

    #[test]
    fn outer_schedule_is_predictor_independent() {
        let wl = toy(200, 32, 23);
        let a = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Actual);
        let b = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith);
        assert_eq!(a.metrics.mean_wait, b.metrics.mean_wait);
        assert_eq!(a.metrics.utilization, b.metrics.utilization);
    }

    #[test]
    fn warm_start_reduces_runtime_error() {
        // Pretraining on the first half must reduce the run-time
        // prediction error on the second half versus starting cold.
        let wl = toy(600, 32, 25);
        let eval = wl.suffix(300);
        let cold = run_wait_prediction(&eval, Algorithm::Fcfs, PredictorKind::Smith);
        let warm = run_wait_prediction_warm(&wl, Algorithm::Fcfs, PredictorKind::Smith, 300);
        assert_eq!(warm.wait_errors.count(), 300);
        assert!(
            warm.runtime_errors.mean_abs_error_min() < cold.runtime_errors.mean_abs_error_min(),
            "warm {:.2} should beat cold {:.2}",
            warm.runtime_errors.mean_abs_error_min(),
            cold.runtime_errors.mean_abs_error_min()
        );
    }

    #[test]
    fn nested_forecasts_reuse_cached_estimates() {
        let wl = toy(300, 32, 26);
        let out = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith);
        let c = out.metrics.estimate_cache.expect("study runs cached");
        assert!(
            c.hits > 0,
            "queued jobs are re-forecast between completions: must hit"
        );
        assert!(c.invalidations > 0, "completions must flush the cache");
        // Every prediction the forecasts requested was scored, hit or
        // miss — the cache is invisible to the error stream.
        assert_eq!(c.total(), out.runtime_errors.count());
    }

    #[test]
    fn smith_predictor_learns_during_run() {
        let wl = toy(300, 32, 24);
        let out = run_wait_prediction(&wl, Algorithm::Fcfs, PredictorKind::Smith);
        // Smith's run-time error should be meaningfully below max
        // run times' on a history-rich workload.
        let maxrt = run_wait_prediction(&wl, Algorithm::Fcfs, PredictorKind::MaxRuntime);
        assert!(
            out.runtime_errors.mean_abs_error_min() < maxrt.runtime_errors.mean_abs_error_min(),
            "smith rt err {:.2} vs maxrt {:.2}",
            out.runtime_errors.mean_abs_error_min(),
            maxrt.runtime_errors.mean_abs_error_min()
        );
    }
}
