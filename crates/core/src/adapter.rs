//! Bridges [`qpredict_predict::RunTimePredictor`] onto
//! [`qpredict_sim::RuntimeEstimator`] so any predictor can drive the
//! scheduling algorithms, while recording the run-time prediction errors
//! the paper reports alongside each experiment.
//!
//! Since the estimation layer was unified, any predictor already *is* a
//! `RuntimeEstimator` (blanket impl in `qpredict-sim`); this adapter is
//! the thin remaining shim that scores every estimate into an
//! [`ErrorStats`] and memoizes predictions through a
//! [`CachingPredictor`]. Errors are recorded per *call* — cache hit or
//! miss — so the recorded stream is identical to an uncached run.

use qpredict_predict::{
    CacheStats, CachingPredictor, DegradationCounts, ErrorStats, RunTimePredictor,
};
use qpredict_sim::RuntimeEstimator;
use qpredict_workload::{Dur, Job, Time};

/// Adapter: a predictor acting as the simulator's estimator.
///
/// Every estimate is scored against the job's actual run time into an
/// [`ErrorStats`] (the simulator only asks for estimates at the instants
/// the paper defines, so the accumulated stream matches the paper's
/// run-time prediction workloads). Completions feed the predictor's
/// history and — via the generation counter — invalidate the estimate
/// cache.
pub struct PredictorEstimator<P> {
    predictor: CachingPredictor<P>,
    errors: ErrorStats,
    /// Count of estimates served from the predictor's fallback path.
    fallbacks: u64,
}

impl<P: RunTimePredictor> PredictorEstimator<P> {
    /// Wrap a predictor.
    pub fn new(predictor: P) -> PredictorEstimator<P> {
        PredictorEstimator {
            predictor: CachingPredictor::new(predictor),
            errors: ErrorStats::new(),
            fallbacks: 0,
        }
    }

    /// The run-time prediction errors accumulated so far.
    pub fn errors(&self) -> &ErrorStats {
        &self.errors
    }

    /// How many estimates came from fallback paths (no matching
    /// category).
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks
    }

    /// Estimate-cache hit/miss/invalidation counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.predictor.stats()
    }

    /// Access the wrapped predictor.
    pub fn predictor(&self) -> &P {
        self.predictor.inner()
    }

    /// Degradation accounting from the wrapped predictor, when it chains
    /// multiple sources (`None` for simple predictors).
    pub fn degradations(&self) -> Option<DegradationCounts> {
        self.predictor.degradations()
    }

    /// Consume the adapter, returning the predictor and the error stats.
    pub fn into_parts(self) -> (P, ErrorStats) {
        (self.predictor.into_inner(), self.errors)
    }
}

impl<P: RunTimePredictor> RuntimeEstimator for PredictorEstimator<P> {
    fn estimate(&mut self, job: &Job, _now: Time, elapsed: Dur) -> Dur {
        let pred = self.predictor.predict(job, elapsed);
        if pred.fallback {
            self.fallbacks += 1;
        }
        self.errors.record(pred.estimate, job.runtime);
        pred.estimate
    }

    fn on_complete(&mut self, job: &Job, _now: Time) {
        RunTimePredictor::on_complete(&mut self.predictor, job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_predict::OraclePredictor;
    use qpredict_workload::{JobBuilder, JobId};

    #[test]
    fn oracle_adapter_has_zero_error() {
        let mut a = PredictorEstimator::new(OraclePredictor);
        let j = JobBuilder::new().runtime(Dur(500)).build(JobId(0));
        assert_eq!(a.estimate(&j, Time(0), Dur::ZERO), Dur(500));
        assert_eq!(a.errors().mean_abs_error_min(), 0.0);
        assert_eq!(a.errors().count(), 1);
        assert_eq!(a.fallback_count(), 0);
    }

    #[test]
    fn records_each_estimate() {
        let mut a = PredictorEstimator::new(OraclePredictor);
        let j = JobBuilder::new().runtime(Dur(500)).build(JobId(0));
        for _ in 0..5 {
            a.estimate(&j, Time(0), Dur::ZERO);
        }
        assert_eq!(a.errors().count(), 5);
        // The cache absorbed the repeats, but the error stream still
        // counted every call — the bit-identity contract of the adapter.
        let c = a.cache_stats();
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 4);
    }

    #[test]
    fn completions_reach_predictor() {
        use qpredict_predict::{SmithPredictor, Template, TemplateSet};
        let set = TemplateSet::new(vec![Template::mean_over(&[])]);
        let mut a = PredictorEstimator::new(SmithPredictor::new(set));
        let j = JobBuilder::new().runtime(Dur(300)).build(JobId(0));
        a.on_complete(&j, Time(10));
        let est = a.estimate(&j, Time(20), Dur::ZERO);
        assert_eq!(est, Dur(300)); // learned from the completion
        assert_eq!(a.fallback_count(), 0);
    }
}
