//! Plain-text/markdown tables for experiment reports.

use std::fmt;

/// A rendered experiment table: a title, column headers, and string
/// cells. Numeric formatting is the producer's responsibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Stable identifier, e.g. `"table6"`.
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each row has `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Column widths for aligned text rendering.
    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push('|');
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push_str("\n|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.id, self.title)?;
        let widths = self.widths();
        let mut line = String::new();
        for (c, w) in self.columns.iter().zip(&widths) {
            line.push_str(&format!("{c:>w$}  ", w = w));
        }
        writeln!(f, "{}", line.trim_end())?;
        writeln!(f, "{}", "-".repeat(line.trim_end().len()))?;
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Format a ratio like `0.4237` as `42.4` (percent, one decimal).
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Format minutes with two decimals.
pub fn mins(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "demo", &["Workload", "Err"]);
        t.push_row(vec!["ANL".into(), "12.3".into()]);
        t.push_row(vec!["SDSC95".into(), "4.5".into()]);
        t
    }

    #[test]
    fn text_render_is_aligned() {
        let s = sample().to_string();
        assert!(s.contains("Workload"));
        assert!(s.contains("SDSC95"));
        // Right-aligned: "ANL" padded to width of "Workload".
        assert!(s.contains("     ANL"));
    }

    #[test]
    fn markdown_render() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### t1"));
        assert!(md.contains("| Workload | Err |"));
        assert!(md.contains("| ANL | 12.3 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", "x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.4237), "42.4");
        assert_eq!(mins(7.126), "7.13");
    }
}
