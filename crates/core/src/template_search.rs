//! Supervised template-set search as an experiment step.
//!
//! The GA of `qpredict-search` is the longest-running computation in the
//! reproduction, so the harness exposes it the same way it exposes the
//! scheduling and wait-prediction pipelines: one spec in, one outcome
//! out, with the supervision accounting ([`SearchHealth`]) carried
//! alongside the scientific result instead of being lost to stderr.
//! Checkpointing and resume come from [`qpredict_search::checkpoint`];
//! a killed search resumed from its snapshot reports the same best
//! template set and fitness trace as an uninterrupted one.

use qpredict_predict::TemplateSet;
use qpredict_search::{
    resume_supervised, search_supervised, CheckpointPolicy, GaConfig, PredictionWorkload,
    SearchError, SearchHealth, SupervisorConfig, Target,
};
use qpredict_sim::Algorithm;
use qpredict_workload::Workload;

use crate::searched::curated_seed_for;

/// Everything a supervised search run needs besides the workload.
#[derive(Debug, Clone)]
pub struct TemplateSearchSpec {
    /// Scheduler generating the prediction workload the GA trains on.
    pub algorithm: Algorithm,
    /// Look-back depth when recording the prediction workload.
    pub depth: usize,
    /// GA tunables. `seeds` is filled with the workload's curated seed
    /// set when left empty (warm start, as the shipped sets were found).
    pub ga: GaConfig,
    /// Retry/budget/fault policy for fitness evaluation.
    pub supervisor: SupervisorConfig,
    /// Where to snapshot, if anywhere.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume from `checkpoint` instead of starting fresh.
    pub resume: bool,
}

impl TemplateSearchSpec {
    /// A small default spec: backfill prediction workload, quick GA.
    pub fn quick(seed: u64) -> TemplateSearchSpec {
        TemplateSearchSpec {
            algorithm: Algorithm::Backfill,
            depth: 4,
            ga: GaConfig::quick(seed),
            supervisor: SupervisorConfig::default(),
            checkpoint: None,
            resume: false,
        }
    }
}

/// Result of one supervised template search.
#[derive(Debug, Clone)]
pub struct TemplateSearchOutcome {
    /// Workload name.
    pub workload: String,
    /// Scheduler the prediction workload was recorded under.
    pub algorithm: Algorithm,
    /// Best template set found.
    pub best: TemplateSet,
    /// Its mean absolute run-time prediction error, minutes.
    pub best_error_min: f64,
    /// Best error per generation.
    pub error_history: Vec<f64>,
    /// Total fitness evaluations.
    pub evaluations: usize,
    /// Supervision accounting: retries, quarantines, faults, resumes.
    pub health: SearchHealth,
    /// Generation the run resumed from, if it was resumed.
    pub resumed_from: Option<usize>,
}

/// Run (or resume) a supervised template search over `wl`.
///
/// Fails with [`SearchError::Checkpoint`] when `spec.resume` is set and
/// the checkpoint is missing, corrupt, or from a different
/// configuration, and with [`SearchError::GenerationLost`] when fault
/// injection wipes out an entire generation.
pub fn run_template_search(
    wl: &Workload,
    spec: &TemplateSearchSpec,
) -> Result<TemplateSearchOutcome, SearchError> {
    let mut ga = spec.ga.clone();
    if ga.seeds.is_empty() {
        ga.seeds = vec![curated_seed_for(wl)];
    }
    let pw = PredictionWorkload::build(wl, Target::WaitPrediction(spec.algorithm), spec.depth);
    let supervised = if spec.resume {
        let policy = spec
            .checkpoint
            .as_ref()
            .expect("resume requires a checkpoint policy; the CLI rejects --resume without --checkpoint-dir");
        resume_supervised(wl, &pw, &ga, &spec.supervisor, policy)?
    } else {
        search_supervised(wl, &pw, &ga, &spec.supervisor, spec.checkpoint.as_ref())?
    };
    Ok(TemplateSearchOutcome {
        workload: wl.name.clone(),
        algorithm: spec.algorithm,
        best: supervised.result.best,
        best_error_min: supervised.result.best_error_min,
        error_history: supervised.result.error_history,
        evaluations: supervised.result.evaluations,
        health: supervised.health,
        resumed_from: supervised.resumed_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_search::CheckpointError;
    use qpredict_workload::synthetic::toy;

    #[test]
    fn quick_search_completes_cleanly() {
        let wl = toy(150, 32, 40);
        let spec = TemplateSearchSpec::quick(5);
        let out = run_template_search(&wl, &spec).expect("clean search");
        assert_eq!(out.workload, wl.name);
        assert_eq!(out.error_history.len(), spec.ga.generations);
        assert!(out.best_error_min.is_finite());
        assert_eq!(out.health.failures(), 0);
        assert!(out.resumed_from.is_none());
    }

    #[test]
    fn checkpointed_then_resumed_matches_uninterrupted() {
        let wl = toy(120, 32, 41);
        let dir = std::env::temp_dir().join("qpredict-core-resume-test");
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted reference run.
        let spec = TemplateSearchSpec::quick(9);
        let reference = run_template_search(&wl, &spec).expect("reference");

        // Interrupted run: stop after 2 of 4 generations...
        let mut short = TemplateSearchSpec::quick(9);
        short.ga.generations = 2;
        short.checkpoint = Some(CheckpointPolicy::every_generation(&dir));
        run_template_search(&wl, &short).expect("interrupted half");

        // ...then resume to the full 4.
        let mut rest = TemplateSearchSpec::quick(9);
        rest.checkpoint = Some(CheckpointPolicy::every_generation(&dir));
        rest.resume = true;
        let resumed = run_template_search(&wl, &rest).expect("resumed half");

        assert_eq!(resumed.best, reference.best);
        assert_eq!(resumed.error_history, reference.error_history);
        assert_eq!(resumed.evaluations, reference.evaluations);
        assert_eq!(resumed.resumed_from, Some(2));
        assert_eq!(resumed.health.resumes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_checkpoint_file_is_a_typed_error() {
        let wl = toy(100, 32, 42);
        let dir = std::env::temp_dir().join("qpredict-core-missing-ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = TemplateSearchSpec::quick(3);
        spec.checkpoint = Some(CheckpointPolicy::every_generation(&dir));
        spec.resume = true;
        let err = run_template_search(&wl, &spec).unwrap_err();
        assert!(
            matches!(
                &err,
                SearchError::Checkpoint(CheckpointError::Io { op, .. }) if op.starts_with("read ")
            ),
            "{err}"
        );
    }
}
