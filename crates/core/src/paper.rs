//! Regeneration of the paper's tables.
//!
//! One function per quantitative table (4–15), plus the descriptive
//! Tables 1–3 and the in-text "compressed SDSC" experiment of Section 4.
//! Each quantitative table carries the paper's published values alongside
//! the measured ones; since our traces are synthetic stand-ins, the
//! comparison is about *shape* (who wins, by roughly what factor), not
//! absolute numbers — see EXPERIMENTS.md.

use qpredict_sim::Algorithm;
use qpredict_workload::{compress_interarrivals, synthetic, Workload, WorkloadStats};

use crate::grid::run_cells;
use crate::kind::PredictorKind;
use crate::scheduling::run_scheduling;
use crate::tables::Table;
use crate::waittime::run_wait_prediction;

/// How much of each trace to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full trace sizes (Table 1).
    Full,
    /// Truncate every trace to its first `n` jobs (fast smoke runs).
    Jobs(usize),
}

/// Generate the four paper workloads at the given scale, in the paper's
/// order (ANL, CTC, SDSC95, SDSC96).
pub fn workloads(scale: Scale) -> Vec<Workload> {
    let mut out: Vec<Workload> = match scale {
        Scale::Full => synthetic::ALL_SITES
            .iter()
            .map(|n| synthetic::by_name(n).expect("known site"))
            .collect(),
        Scale::Jobs(n) => synthetic::ALL_SITES
            .iter()
            .map(|name| {
                let mut spec = synthetic::sites::spec_by_name(name).expect("known site");
                spec.n_jobs = n.max(1);
                // Fewer users at small scale so history still accumulates.
                spec.n_users = spec.n_users.min((n / 20).max(4));
                synthetic::generate(&spec)
            })
            .collect(),
    };
    // Truncated names like "ANL" stay clean for report rows.
    for w in &mut out {
        if let Scale::Jobs(_) = scale {
            // keep the site name; scale is reported separately
        }
        let _ = w;
    }
    out
}

/// The predictor each paper table studies.
pub fn table_predictor(table: u8) -> PredictorKind {
    match table {
        4 | 10 => PredictorKind::Actual,
        5 | 11 => PredictorKind::MaxRuntime,
        6 | 12 => PredictorKind::Smith,
        7 | 13 => PredictorKind::Gibbons,
        8 | 14 => PredictorKind::DowneyAverage,
        9 | 15 => PredictorKind::DowneyMedian,
        _ => panic!("tables 4..=15 map to predictors, got {table}"),
    }
}

// ---------------------------------------------------------------------
// Descriptive tables 1-3.
// ---------------------------------------------------------------------

/// Table 1: characteristics of the (synthetic) traces, with the paper's
/// reference values.
pub fn table1(wls: &[Workload]) -> Table {
    const REF: [(&str, &str, u32, usize, f64); 4] = [
        ("ANL", "IBM SP2", 80, 7994, 97.75),
        ("CTC", "IBM SP2", 512, 13_217, 171.14),
        ("SDSC95", "Intel Paragon", 400, 22_885, 108.21),
        ("SDSC96", "Intel Paragon", 400, 22_337, 166.98),
    ];
    let mut t = Table::new(
        "table1",
        "Characteristics of the trace data (paper values in parentheses)",
        &[
            "Workload",
            "System",
            "Nodes",
            "Requests",
            "Mean RT (min)",
            "Offered load",
        ],
    );
    for w in wls {
        let s = WorkloadStats::of(w);
        let r = REF
            .iter()
            .find(|r| r.0 == w.name)
            .copied()
            .unwrap_or(("?", "?", 0, 0, 0.0));
        t.push_row(vec![
            w.name.clone(),
            r.1.to_string(),
            format!("{} ({})", w.machine_nodes, r.2),
            format!("{} ({})", s.requests, r.3),
            format!("{:.2} ({:.2})", s.mean_runtime_min, r.4),
            format!("{:.3}", s.offered_load),
        ]);
    }
    t
}

/// Table 2: which characteristics each workload records.
pub fn table2(wls: &[Workload]) -> Table {
    let mut cols = vec!["Characteristic".to_string()];
    for w in wls {
        cols.push(w.name.clone());
    }
    let cols_ref: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("table2", "Characteristics recorded in workloads", &cols_ref);
    for c in qpredict_workload::CHARACTERISTICS {
        let mut row = vec![format!("{} ({})", c.name(), c.abbrev())];
        for w in wls {
            row.push(if w.records(c) { "Y".into() } else { "".into() });
        }
        t.push_row(row);
    }
    let mut row = vec!["Maximum run time".to_string()];
    for w in wls {
        row.push(if w.records_max_runtime() {
            "Y".into()
        } else {
            "".into()
        });
    }
    t.push_row(row);
    t
}

/// Table 3: Gibbons' fixed templates (static).
pub fn table3() -> Table {
    let mut t = Table::new(
        "table3",
        "Templates used by Gibbons for run-time prediction",
        &["Number", "Template", "Predictor"],
    );
    for (i, (tpl, pred)) in [
        ("(u,e,n,rtime)", "mean"),
        ("(u,e)", "linear regression"),
        ("(e,n,rtime)", "mean"),
        ("(e)", "linear regression"),
        ("(n,rtime)", "mean"),
        ("()", "linear regression"),
    ]
    .iter()
    .enumerate()
    {
        t.push_row(vec![(i + 1).to_string(), tpl.to_string(), pred.to_string()]);
    }
    t
}

// ---------------------------------------------------------------------
// Paper reference values for tables 4-15.
// ---------------------------------------------------------------------

/// Published wait-time prediction row: mean error (minutes) and error as
/// a percentage of mean wait time.
#[derive(Debug, Clone, Copy)]
pub struct WaitRef {
    /// Workload name.
    pub workload: &'static str,
    /// Algorithm name.
    pub alg: &'static str,
    /// Paper's mean error, minutes.
    pub err_min: f64,
    /// Paper's error as % of mean wait.
    pub pct: f64,
}

const fn wr(workload: &'static str, alg: &'static str, err_min: f64, pct: f64) -> WaitRef {
    WaitRef {
        workload,
        alg,
        err_min,
        pct,
    }
}

/// Paper Table 4 (actual run times).
pub const TABLE4_REF: &[WaitRef] = &[
    wr("ANL", "LWF", 37.14, 43.0),
    wr("ANL", "Backfill", 5.84, 3.0),
    wr("CTC", "LWF", 4.05, 39.0),
    wr("CTC", "Backfill", 2.62, 10.0),
    wr("SDSC95", "LWF", 5.83, 39.0),
    wr("SDSC95", "Backfill", 1.12, 4.0),
    wr("SDSC96", "LWF", 3.32, 42.0),
    wr("SDSC96", "Backfill", 0.30, 3.0),
];

/// Paper Table 5 (maximum run times).
pub const TABLE5_REF: &[WaitRef] = &[
    wr("ANL", "FCFS", 996.67, 186.0),
    wr("ANL", "LWF", 97.12, 112.0),
    wr("ANL", "Backfill", 429.05, 242.0),
    wr("CTC", "FCFS", 125.36, 128.0),
    wr("CTC", "LWF", 9.86, 94.0),
    wr("CTC", "Backfill", 51.16, 190.0),
    wr("SDSC95", "FCFS", 162.72, 295.0),
    wr("SDSC95", "LWF", 28.56, 191.0),
    wr("SDSC95", "Backfill", 93.81, 333.0),
    wr("SDSC96", "FCFS", 47.83, 288.0),
    wr("SDSC96", "LWF", 14.19, 180.0),
    wr("SDSC96", "Backfill", 39.66, 350.0),
];

/// Paper Table 6 (the Smith predictor).
pub const TABLE6_REF: &[WaitRef] = &[
    wr("ANL", "FCFS", 161.49, 30.0),
    wr("ANL", "LWF", 44.75, 51.0),
    wr("ANL", "Backfill", 75.55, 43.0),
    wr("CTC", "FCFS", 30.84, 31.0),
    wr("CTC", "LWF", 5.74, 55.0),
    wr("CTC", "Backfill", 11.37, 42.0),
    wr("SDSC95", "FCFS", 20.34, 37.0),
    wr("SDSC95", "LWF", 8.72, 58.0),
    wr("SDSC95", "Backfill", 12.49, 44.0),
    wr("SDSC96", "FCFS", 9.74, 59.0),
    wr("SDSC96", "LWF", 4.66, 59.0),
    wr("SDSC96", "Backfill", 5.03, 44.0),
];

/// Paper Table 7 (Gibbons).
pub const TABLE7_REF: &[WaitRef] = &[
    wr("ANL", "FCFS", 350.86, 66.0),
    wr("ANL", "LWF", 76.23, 91.0),
    wr("ANL", "Backfill", 94.01, 53.0),
    wr("CTC", "FCFS", 81.45, 83.0),
    wr("CTC", "LWF", 32.34, 309.0),
    wr("CTC", "Backfill", 13.57, 50.0),
    wr("SDSC95", "FCFS", 54.37, 99.0),
    wr("SDSC95", "LWF", 11.60, 78.0),
    wr("SDSC95", "Backfill", 20.27, 72.0),
    wr("SDSC96", "FCFS", 22.36, 135.0),
    wr("SDSC96", "LWF", 6.88, 87.0),
    wr("SDSC96", "Backfill", 17.31, 153.0),
];

/// Paper Table 8 (Downey, conditional average).
pub const TABLE8_REF: &[WaitRef] = &[
    wr("ANL", "FCFS", 443.45, 83.0),
    wr("ANL", "LWF", 232.24, 277.0),
    wr("ANL", "Backfill", 339.10, 191.0),
    wr("CTC", "FCFS", 65.22, 66.0),
    wr("CTC", "LWF", 14.78, 141.0),
    wr("CTC", "Backfill", 17.22, 64.0),
    wr("SDSC95", "FCFS", 187.73, 340.0),
    wr("SDSC95", "LWF", 35.84, 240.0),
    wr("SDSC95", "Backfill", 62.96, 223.0),
    wr("SDSC96", "FCFS", 83.62, 503.0),
    wr("SDSC96", "LWF", 28.42, 361.0),
    wr("SDSC96", "Backfill", 47.11, 415.0),
];

/// Paper Table 9 (Downey, conditional median).
pub const TABLE9_REF: &[WaitRef] = &[
    wr("ANL", "FCFS", 534.71, 100.0),
    wr("ANL", "LWF", 254.91, 304.0),
    wr("ANL", "Backfill", 410.57, 232.0),
    wr("CTC", "FCFS", 83.33, 85.0),
    wr("CTC", "LWF", 15.47, 148.0),
    wr("CTC", "Backfill", 19.35, 72.0),
    wr("SDSC95", "FCFS", 62.67, 114.0),
    wr("SDSC95", "LWF", 18.28, 122.0),
    wr("SDSC95", "Backfill", 27.52, 98.0),
    wr("SDSC96", "FCFS", 34.23, 206.0),
    wr("SDSC96", "LWF", 12.65, 161.0),
    wr("SDSC96", "Backfill", 20.70, 183.0),
];

/// Published scheduling-performance row.
#[derive(Debug, Clone, Copy)]
pub struct SchedRef {
    /// Workload name.
    pub workload: &'static str,
    /// Algorithm name.
    pub alg: &'static str,
    /// Paper's utilization, percent.
    pub util_pct: f64,
    /// Paper's mean wait, minutes.
    pub wait_min: f64,
}

const fn sr(workload: &'static str, alg: &'static str, util_pct: f64, wait_min: f64) -> SchedRef {
    SchedRef {
        workload,
        alg,
        util_pct,
        wait_min,
    }
}

/// Paper Table 10 (actual run times).
pub const TABLE10_REF: &[SchedRef] = &[
    sr("ANL", "LWF", 70.34, 61.20),
    sr("ANL", "Backfill", 71.04, 142.45),
    sr("CTC", "LWF", 51.28, 11.15),
    sr("CTC", "Backfill", 51.28, 23.75),
    sr("SDSC95", "LWF", 41.14, 14.48),
    sr("SDSC95", "Backfill", 41.14, 21.98),
    sr("SDSC96", "LWF", 46.79, 6.80),
    sr("SDSC96", "Backfill", 46.79, 10.42),
];

/// Paper Table 11 (maximum run times).
pub const TABLE11_REF: &[SchedRef] = &[
    sr("ANL", "LWF", 70.70, 83.81),
    sr("ANL", "Backfill", 71.04, 177.14),
    sr("CTC", "LWF", 51.28, 10.48),
    sr("CTC", "Backfill", 51.28, 26.86),
    sr("SDSC95", "LWF", 41.14, 14.95),
    sr("SDSC95", "Backfill", 41.14, 28.20),
    sr("SDSC96", "LWF", 46.79, 7.88),
    sr("SDSC96", "Backfill", 46.79, 11.34),
];

/// Paper Table 12 (the Smith predictor).
pub const TABLE12_REF: &[SchedRef] = &[
    sr("ANL", "LWF", 70.28, 78.22),
    sr("ANL", "Backfill", 71.04, 148.77),
    sr("CTC", "LWF", 51.28, 13.40),
    sr("CTC", "Backfill", 51.28, 22.54),
    sr("SDSC95", "LWF", 41.14, 16.19),
    sr("SDSC95", "Backfill", 41.14, 22.17),
    sr("SDSC96", "LWF", 46.79, 7.79),
    sr("SDSC96", "Backfill", 46.79, 10.10),
];

/// Paper Table 13 (Gibbons).
pub const TABLE13_REF: &[SchedRef] = &[
    sr("ANL", "LWF", 70.72, 90.36),
    sr("ANL", "Backfill", 71.04, 181.38),
    sr("CTC", "LWF", 51.28, 11.04),
    sr("CTC", "Backfill", 51.28, 27.31),
    sr("SDSC95", "LWF", 41.14, 15.99),
    sr("SDSC95", "Backfill", 41.14, 24.83),
    sr("SDSC96", "LWF", 46.79, 7.51),
    sr("SDSC96", "Backfill", 46.79, 10.82),
];

/// Paper Table 14 (Downey, conditional average).
pub const TABLE14_REF: &[SchedRef] = &[
    sr("ANL", "LWF", 71.04, 154.76),
    sr("ANL", "Backfill", 70.88, 246.40),
    sr("CTC", "LWF", 51.28, 9.87),
    sr("CTC", "Backfill", 51.28, 14.45),
    sr("SDSC95", "LWF", 41.14, 16.22),
    sr("SDSC95", "Backfill", 41.14, 20.37),
    sr("SDSC96", "LWF", 46.79, 7.88),
    sr("SDSC96", "Backfill", 46.79, 8.25),
];

/// Paper Table 15 (Downey, conditional median).
pub const TABLE15_REF: &[SchedRef] = &[
    sr("ANL", "LWF", 71.04, 154.76),
    sr("ANL", "Backfill", 71.04, 207.17),
    sr("CTC", "LWF", 51.28, 11.54),
    sr("CTC", "Backfill", 51.28, 16.72),
    sr("SDSC95", "LWF", 41.14, 16.36),
    sr("SDSC95", "Backfill", 41.14, 19.56),
    sr("SDSC96", "LWF", 46.79, 7.80),
    sr("SDSC96", "Backfill", 46.79, 8.02),
];

/// The published reference rows for a wait-time prediction table (4–9).
pub fn wait_ref(table: u8) -> &'static [WaitRef] {
    match table {
        4 => TABLE4_REF,
        5 => TABLE5_REF,
        6 => TABLE6_REF,
        7 => TABLE7_REF,
        8 => TABLE8_REF,
        9 => TABLE9_REF,
        _ => panic!("wait-time tables are 4..=9, got {table}"),
    }
}

/// The published reference rows for a scheduling table (10–15).
pub fn sched_ref(table: u8) -> &'static [SchedRef] {
    match table {
        10 => TABLE10_REF,
        11 => TABLE11_REF,
        12 => TABLE12_REF,
        13 => TABLE13_REF,
        14 => TABLE14_REF,
        15 => TABLE15_REF,
        _ => panic!("scheduling tables are 10..=15, got {table}"),
    }
}

// ---------------------------------------------------------------------
// Quantitative tables.
// ---------------------------------------------------------------------

/// Regenerate one wait-time prediction table (4–9): run the predictor's
/// wait-time prediction experiment over every workload/algorithm cell
/// and lay the results beside the paper's.
pub fn wait_table(table: u8, wls: &[Workload], threads: usize) -> Table {
    let kind = table_predictor(table);
    // Table 4 (actual run times) has no FCFS rows: FCFS wait predictions
    // with actual run times are exact by construction.
    let algs: &[Algorithm] = if table == 4 {
        &[Algorithm::Lwf, Algorithm::Backfill]
    } else {
        &[Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill]
    };
    let cells: Vec<_> = wls
        .iter()
        .flat_map(|w| {
            let kind = kind.clone();
            algs.iter().map(move |&alg| {
                let kind = kind.clone();
                move || run_wait_prediction(w, alg, kind)
            })
        })
        .collect();
    let outcomes = run_cells(cells, threads);

    let refs = wait_ref(table);
    let mut t = Table::new(
        format!("table{table}"),
        format!(
            "Wait-time prediction performance using {} run-time predictions",
            kind.name()
        ),
        &[
            "Workload",
            "Algorithm",
            "Mean Err (min)",
            "% of Mean Wait",
            "Paper Err",
            "Paper %",
            "RT Err % of RT",
        ],
    );
    for o in outcomes {
        let r = refs
            .iter()
            .find(|r| r.workload == o.workload && r.alg == o.algorithm.name());
        t.push_row(vec![
            o.workload.clone(),
            o.algorithm.name().to_string(),
            format!("{:.2}", o.wait_errors.mean_abs_error_min()),
            format!("{:.0}", o.wait_errors.pct_of_mean_actual()),
            r.map_or("-".into(), |r| format!("{:.2}", r.err_min)),
            r.map_or("-".into(), |r| format!("{:.0}", r.pct)),
            format!("{:.0}", o.runtime_errors.pct_of_mean_actual()),
        ]);
    }
    t
}

/// Regenerate one scheduling table (10–15).
pub fn sched_table(table: u8, wls: &[Workload], threads: usize) -> Table {
    let kind = table_predictor(table);
    let algs = [Algorithm::Lwf, Algorithm::Backfill];
    let cells: Vec<_> = wls
        .iter()
        .flat_map(|w| {
            let kind = kind.clone();
            algs.iter().map(move |&alg| {
                let kind = kind.clone();
                move || run_scheduling(w, alg, kind)
            })
        })
        .collect();
    let outcomes = run_cells(cells, threads);

    let refs = sched_ref(table);
    let mut t = Table::new(
        format!("table{table}"),
        format!(
            "Scheduling performance using {} run-time predictions",
            kind.name()
        ),
        &[
            "Workload",
            "Algorithm",
            "Util %",
            "Mean Wait (min)",
            "Paper Util",
            "Paper Wait",
            "RT Err % of RT",
        ],
    );
    for o in outcomes {
        let r = refs
            .iter()
            .find(|r| r.workload == o.workload && r.alg == o.algorithm.name());
        t.push_row(vec![
            o.workload.clone(),
            o.algorithm.name().to_string(),
            format!("{:.2}", 100.0 * o.metrics.utilization_window),
            format!("{:.2}", o.metrics.mean_wait.minutes()),
            r.map_or("-".into(), |r| format!("{:.2}", r.util_pct)),
            r.map_or("-".into(), |r| format!("{:.2}", r.wait_min)),
            format!("{:.0}", o.runtime_errors.pct_of_mean_actual()),
        ]);
    }
    t
}

/// The Section 4 in-text experiment: compress the SDSC interarrival
/// times by 2x and compare mean waits across predictors.
pub fn compress2x(wls: &[Workload], threads: usize) -> Table {
    let compressed: Vec<Workload> = wls
        .iter()
        .filter(|w| w.name.starts_with("SDSC"))
        .map(|w| compress_interarrivals(w, 2.0))
        .collect();
    let kinds = [
        PredictorKind::Actual,
        PredictorKind::MaxRuntime,
        PredictorKind::Smith,
        PredictorKind::Gibbons,
        PredictorKind::DowneyAverage,
        PredictorKind::DowneyMedian,
    ];
    let algs = [Algorithm::Lwf, Algorithm::Backfill];
    type Cell<'a> = Box<dyn FnOnce() -> crate::scheduling::SchedulingOutcome + Send + 'a>;
    let mut cells: Vec<Cell<'_>> = Vec::new();
    for w in &compressed {
        for &alg in &algs {
            for kind in &kinds {
                let kind = kind.clone();
                cells.push(Box::new(move || run_scheduling(w, alg, kind)));
            }
        }
    }
    let outcomes = run_cells(cells, threads);

    let mut t = Table::new(
        "compress2x",
        "Mean wait (min) on 2x-compressed SDSC workloads, per predictor",
        &[
            "Workload",
            "Algorithm",
            "actual",
            "maxrt",
            "smith",
            "gibbons",
            "downey-avg",
            "downey-med",
        ],
    );
    let mut it = outcomes.into_iter();
    for w in &compressed {
        for alg in algs {
            let mut row = vec![w.name.clone(), alg.name().to_string()];
            for _ in &kinds {
                let o = it.next().expect("grid shape");
                row.push(format!("{:.2}", o.metrics.mean_wait.minutes()));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_scale_control() {
        let small = workloads(Scale::Jobs(100));
        assert_eq!(small.len(), 4);
        for w in &small {
            assert_eq!(w.len(), 100);
            w.validate().unwrap();
        }
        let names: Vec<&str> = small.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["ANL", "CTC", "SDSC95", "SDSC96"]);
    }

    #[test]
    fn descriptive_tables_render() {
        let wls = workloads(Scale::Jobs(200));
        let t1 = table1(&wls);
        assert_eq!(t1.rows.len(), 4);
        let t2 = table2(&wls);
        assert_eq!(t2.rows.len(), 9); // 8 characteristics + max run time
        let t3 = table3();
        assert_eq!(t3.rows.len(), 6);
        assert!(!t1.to_string().is_empty());
        assert!(!t2.to_markdown().is_empty());
    }

    #[test]
    fn table2_matches_paper_recording_matrix() {
        let wls = workloads(Scale::Jobs(300));
        let t2 = table2(&wls);
        let row = |name: &str| {
            t2.rows
                .iter()
                .find(|r| r[0].starts_with(name))
                .unwrap()
                .clone()
        };
        // Queue: SDSC only (columns: char, ANL, CTC, SDSC95, SDSC96).
        let q = row("Queue");
        assert_eq!((q[1].as_str(), q[2].as_str()), ("", ""));
        assert_eq!((q[3].as_str(), q[4].as_str()), ("Y", "Y"));
        // Executable: ANL only.
        let e = row("Executable");
        assert_eq!(e[1], "Y");
        assert_eq!(e[2], "");
        // Max run time: ANL + CTC.
        let m = row("Maximum run time");
        assert_eq!((m[1].as_str(), m[2].as_str()), ("Y", "Y"));
        assert_eq!((m[3].as_str(), m[4].as_str()), ("", ""));
    }

    #[test]
    fn reference_tables_complete() {
        for t in 4..=9u8 {
            let r = wait_ref(t);
            assert_eq!(r.len(), if t == 4 { 8 } else { 12 });
        }
        for t in 10..=15u8 {
            assert_eq!(sched_ref(t).len(), 8);
        }
    }

    #[test]
    fn predictor_mapping() {
        assert_eq!(table_predictor(4), PredictorKind::Actual);
        assert_eq!(table_predictor(12), PredictorKind::Smith);
        assert_eq!(table_predictor(15), PredictorKind::DowneyMedian);
    }

    #[test]
    fn small_scale_sched_table_runs() {
        let wls = workloads(Scale::Jobs(150));
        let t = sched_table(10, &wls, 4);
        assert_eq!(t.rows.len(), 8);
        // Every measured cell parses as a number.
        for row in &t.rows {
            row[2].parse::<f64>().unwrap();
            row[3].parse::<f64>().unwrap();
        }
    }

    #[test]
    fn small_scale_wait_table_runs() {
        let wls = workloads(Scale::Jobs(120));
        let t = wait_table(4, &wls, 4);
        assert_eq!(t.rows.len(), 8); // no FCFS rows in table 4
        let t5 = wait_table(5, &wls, 4);
        assert_eq!(t5.rows.len(), 12);
    }

    #[test]
    fn compress_table_shape() {
        let wls = workloads(Scale::Jobs(120));
        let t = compress2x(&wls, 4);
        assert_eq!(t.rows.len(), 4); // 2 workloads x 2 algorithms
        assert_eq!(t.columns.len(), 8);
    }
}
