//! Template sets for the Smith predictor, per workload.
//!
//! The paper searches for template sets per (workload, use) pair with a
//! genetic algorithm. Searches are expensive, so — like the paper's
//! authors, who ran them offline — we ship the sets found by
//! `qpredict-search` for the four synthetic workloads. They were produced
//! by `cargo run -p qpredict-bench --release --bin paper -- ga-search`
//! (population 28, 20 generations, seeded with the curated defaults
//! below) and validated on a held-out backfill wait-prediction stream,
//! where each beat its curated seed by 23–36%:
//!
//! | Workload | curated val MAE (min) | GA val MAE (min) |
//! |----------|----------------------|------------------|
//! | ANL      | 71.37                | 48.14            |
//! | CTC      | 205.01               | 131.17           |
//! | SDSC95   | 100.63               | 75.61            |
//! | SDSC96   | 95.99                | 74.38            |
//!
//! GA output is kept verbatim; templates that reference characteristics
//! a site never records (e.g. `s` on ANL) simply never match a job and
//! are dead weight the search tolerated.
//!
//! Unknown workloads fall back to [`TemplateSet::default_for`], which
//! adapts to whatever characteristics the trace records.

use qpredict_predict::{EstimatorKind, Template, TemplateSet};
use qpredict_workload::{Characteristic, Workload, CHARACTERISTICS};

use Characteristic as C;

/// The site name with derived-workload suffixes stripped:
/// `"ANL[..500]"` and `"SDSC95/x2.00"` still select their site's set.
fn base_name(name: &str) -> &str {
    name.split(['[', '/']).next().unwrap_or(name)
}

/// The searched template set for a workload, by name; falls back to a
/// characteristics-driven default for unknown workloads.
pub fn set_for(wl: &Workload) -> TemplateSet {
    match base_name(&wl.name) {
        "ANL" => anl_set(),
        "CTC" => ctc_set(),
        "SDSC95" => sdsc95_set(),
        "SDSC96" => sdsc96_set(),
        _ => {
            let recorded: Vec<Characteristic> = CHARACTERISTICS
                .into_iter()
                .filter(|&c| wl.records(c))
                .collect();
            TemplateSet::default_for(&recorded, wl.records_max_runtime())
        }
    }
}

/// Curated seed set for a workload (also the warm start the GA search
/// uses). Exposed for the search-strategy ablation.
pub fn curated_seed_for(wl: &Workload) -> TemplateSet {
    match base_name(&wl.name) {
        "ANL" => curated_anl(),
        "CTC" => curated_ctc(),
        "SDSC95" | "SDSC96" => curated_sdsc(),
        _ => set_for(wl),
    }
}

/// GA winner for ANL (val MAE 48.14 min vs curated 71.37).
fn anl_set() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::User, C::Arguments]).with_max_history(4),
        Template::mean_over(&[C::Type, C::User, C::Arguments])
            .with_estimator(EstimatorKind::LinearRegression)
            .relative(),
        Template::mean_over(&[C::Script, C::Executable, C::Arguments, C::NetworkAdaptor])
            .with_node_range(9)
            .relative(),
        Template::mean_over(&[C::User, C::NetworkAdaptor])
            .with_node_range(2)
            .relative(),
        Template::mean_over(&[C::Type, C::User, C::NetworkAdaptor]).with_max_history(8),
        Template::mean_over(&[C::Executable])
            .with_node_range(3)
            .with_max_history(512)
            .relative(),
        Template::mean_over(&[C::Type, C::Arguments])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_node_range(1),
        Template::mean_over(&[C::User, C::NetworkAdaptor])
            .with_node_range(2)
            .relative(),
        Template::mean_over(&[C::Class, C::NetworkAdaptor]).with_node_range(5),
        Template::mean_over(&[C::Executable]).with_rtime(),
    ])
}

/// GA winner for CTC (val MAE 131.17 min vs curated 205.01).
fn ctc_set() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::Queue])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_node_range(3)
            .relative(),
        Template::mean_over(&[C::Type, C::Class, C::NetworkAdaptor])
            .with_node_range(5)
            .relative(),
        Template::mean_over(&[C::Queue, C::Script, C::Arguments, C::NetworkAdaptor])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_node_range(1)
            .with_max_history(8192)
            .relative()
            .with_rtime(),
        Template::mean_over(&[C::User])
            .with_node_range(3)
            .with_max_history(4096)
            .relative(),
        Template::mean_over(&[C::Queue, C::Script])
            .with_estimator(EstimatorKind::InverseRegression)
            .with_node_range(5)
            .relative(),
        Template::mean_over(&[C::User])
            .with_node_range(5)
            .with_max_history(8)
            .relative(),
        Template::mean_over(&[
            C::Queue,
            C::User,
            C::Script,
            C::Arguments,
            C::NetworkAdaptor,
        ])
        .with_estimator(EstimatorKind::LogRegression)
        .with_node_range(5)
        .with_max_history(32768)
        .relative()
        .with_rtime(),
        Template::mean_over(&[C::Type, C::Executable, C::Arguments])
            .relative()
            .with_rtime(),
        Template::mean_over(&[C::User])
            .with_node_range(7)
            .relative(),
        Template::mean_over(&[C::Type, C::Queue, C::User]).with_node_range(3),
    ])
}

/// GA winner for SDSC95 (val MAE 75.61 min vs curated 100.63).
fn sdsc95_set() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::Executable, C::Arguments])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_max_history(128),
        Template::mean_over(&[C::Queue, C::User]).with_rtime(),
        Template::mean_over(&[C::Executable, C::Arguments])
            .with_max_history(256)
            .relative(),
        Template::mean_over(&[C::Queue])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_rtime(),
        Template::mean_over(&[C::Queue, C::User, C::Script])
            .with_estimator(EstimatorKind::LinearRegression)
            .relative()
            .with_rtime(),
        Template::mean_over(&[C::User, C::Executable]).with_max_history(256),
        Template::mean_over(&[C::Executable, C::Arguments]).with_max_history(256),
        Template::mean_over(&[C::Queue])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_rtime(),
        Template::mean_over(&[C::Queue, C::User])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_rtime(),
        Template::mean_over(&[C::Queue, C::Executable, C::NetworkAdaptor]).with_node_range(4),
    ])
}

/// GA winner for SDSC96 (val MAE 74.38 min vs curated 95.99).
fn sdsc96_set() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::Queue, C::User])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_node_range(5),
        Template::mean_over(&[C::Type])
            .with_estimator(EstimatorKind::LinearRegression)
            .relative(),
        Template::mean_over(&[C::Queue])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_rtime(),
        Template::mean_over(&[C::Queue])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_rtime(),
        Template::mean_over(&[C::Type, C::User, C::Script, C::NetworkAdaptor])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_max_history(512)
            .relative(),
        Template::mean_over(&[C::Queue, C::User])
            .with_max_history(8192)
            .with_rtime(),
    ])
}

/// ANL curated seed: the strongest similarity signal is (user,
/// executable, arguments); relative templates exploit recorded limits.
fn curated_anl() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::User, C::Executable, C::Arguments]).with_node_range(1),
        Template::mean_over(&[C::User, C::Executable, C::Arguments]).relative(),
        Template::mean_over(&[C::User, C::Executable]).with_node_range(3),
        Template::mean_over(&[C::User, C::Executable])
            .relative()
            .with_max_history(512),
        Template::mean_over(&[C::Type, C::User]).with_max_history(128),
        Template::mean_over(&[C::User])
            .relative()
            .with_max_history(128),
        Template::mean_over(&[C::Executable]).with_node_range(3),
        Template::mean_over(&[C::Type])
            .with_node_range(5)
            .with_rtime(),
        Template::mean_over(&[])
            .with_node_range(4)
            .with_max_history(256),
    ])
}

/// CTC curated seed (no executables — the script is the identity proxy).
fn curated_ctc() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::User, C::Script]).with_node_range(1),
        Template::mean_over(&[C::User, C::Script]).relative(),
        Template::mean_over(&[C::User, C::Type, C::Class]).with_node_range(3),
        Template::mean_over(&[C::User])
            .relative()
            .with_max_history(256),
        Template::mean_over(&[C::User])
            .with_node_range(4)
            .with_max_history(256),
        Template::mean_over(&[C::Type, C::NetworkAdaptor]).with_rtime(),
        Template::mean_over(&[C::Type]).with_node_range(5),
        Template::mean_over(&[])
            .with_node_range(4)
            .with_max_history(512),
    ])
}

/// SDSC curated seed (queues and users only; no limits).
fn curated_sdsc() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::User, C::Queue]).with_node_range(2),
        Template::mean_over(&[C::User, C::Queue]).with_max_history(512),
        Template::mean_over(&[C::User])
            .with_node_range(3)
            .with_max_history(256),
        Template::mean_over(&[C::Queue]).with_rtime(),
        Template::mean_over(&[C::Queue]).with_node_range(4),
        Template::mean_over(&[])
            .with_node_range(4)
            .with_max_history(512),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::synthetic;

    #[test]
    fn known_sites_have_searched_sets() {
        for name in ["ANL", "CTC", "SDSC95", "SDSC96"] {
            let wl = synthetic::by_name(name).unwrap().truncated(10);
            let set = set_for(&wl);
            assert!(set.len() >= 5, "{name} set too small");
            let seed = curated_seed_for(&wl);
            assert!(seed.len() >= 5, "{name} seed too small");
            assert_ne!(set, seed, "{name}: GA set should differ from seed");
        }
    }

    #[test]
    fn sets_have_live_templates() {
        // GA sets may carry dead templates (characteristics the site
        // never records); what matters is that enough templates actually
        // match jobs.
        for name in ["ANL", "CTC", "SDSC95", "SDSC96"] {
            let wl = synthetic::by_name(name).unwrap().truncated(500);
            let set = set_for(&wl);
            let live = set
                .templates()
                .iter()
                .filter(|t| wl.jobs.iter().take(200).any(|j| t.applies_to(j)))
                .count();
            assert!(live >= 3, "{name}: only {live} live templates");
        }
    }

    #[test]
    fn searched_sets_predict_without_fallback_after_warmup() {
        use qpredict_predict::{RunTimePredictor, SmithPredictor};
        use qpredict_workload::Dur;
        for name in ["ANL", "CTC", "SDSC95", "SDSC96"] {
            let wl = synthetic::by_name(name).unwrap().truncated(600);
            let mut p = SmithPredictor::new(set_for(&wl));
            for j in wl.jobs.iter().take(400) {
                p.on_complete(j);
            }
            let fallbacks = wl
                .jobs
                .iter()
                .skip(400)
                .filter(|j| p.predict(j, Dur::ZERO).fallback)
                .count();
            assert!(
                fallbacks < 50,
                "{name}: {fallbacks}/200 predictions fell back"
            );
        }
    }

    #[test]
    fn unknown_workload_gets_default() {
        let wl = synthetic::toy(50, 16, 1);
        let set = set_for(&wl);
        assert!(!set.is_empty());
    }
}
