//! State-based queue wait-time prediction — the paper's stated future
//! work, implemented as an extension.
//!
//! From the conclusions: *"we will investigate an alternative method for
//! predicting queue wait times. This method will use the current state of
//! the scheduling system (number of applications in each queue, time of
//! day, etc.) and historical information on queue wait times during
//! similar past states to predict queue wait times."*
//!
//! [`StateWaitPredictor`] categorizes each submission by a small feature
//! vector of the scheduler state — queue depth, queued work relative to
//! the machine, free-node fraction, the job's own size and predicted run
//! time, and time of day — and predicts the mean of the waits observed in
//! the same category, backing off through coarser categories when the
//! exact one is thin. It learns online: when a job starts, its realized
//! wait is inserted under the state captured at its submission.
//!
//! [`run_state_wait_prediction`] evaluates it in the same harness as the
//! simulation-based technique so the two are directly comparable
//! (regenerate with `paper -- statewait`).

use std::collections::{HashMap, VecDeque};

use qpredict_predict::{CachingPredictor, ErrorStats, RunTimePredictor};
use qpredict_sim::{Algorithm, MaxRuntimeEstimator, SimHooks, Simulation, Snapshot};
use qpredict_workload::{Dur, Job, JobId, Time, Workload};

use crate::kind::PredictorKind;
use crate::waittime::WaitPredictionOutcome;

/// Bucketed description of "what the system looked like" when a job was
/// submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateKey {
    /// `log2(1 + queue depth ahead of the job)`.
    pub queue_depth: u8,
    /// `log2(1 + predicted queued work / machine nodes)`, in minutes —
    /// roughly "minutes of backlog per node".
    pub backlog: u8,
    /// Free nodes as quarters of the machine (0..=4).
    pub free_quarter: u8,
    /// `log2(nodes)` of the submitted job.
    pub job_size: u8,
    /// `log2(1 + predicted run time in minutes)` of the submitted job.
    pub job_length: u8,
    /// Six 4-hour buckets of the (simulated) time of day.
    pub hour_bucket: u8,
}

impl StateKey {
    /// Build the key for `job` submitted into the state `snap`, where
    /// `backlog_node_min` is the predicted queued work ahead of it and
    /// `pred_runtime` the predicted run time of the job itself.
    pub fn capture(
        snap: &Snapshot,
        machine_nodes: u32,
        job: &Job,
        pred_runtime: Dur,
        backlog_node_min: f64,
    ) -> StateKey {
        let depth = snap.queued.len().saturating_sub(1);
        let backlog_per_node = backlog_node_min / machine_nodes as f64;
        StateKey {
            queue_depth: log2_bucket(depth as u64),
            backlog: log2_bucket(backlog_per_node as u64),
            free_quarter: ((4 * snap.free_nodes) / machine_nodes.max(1)).min(4) as u8,
            job_size: log2_bucket(job.nodes as u64),
            job_length: log2_bucket(pred_runtime.minutes() as u64),
            hour_bucket: ((snap.now.seconds().rem_euclid(86_400)) / 14_400) as u8,
        }
    }

    /// Successively coarser keys used for backoff: drop the time of day,
    /// then the free-node fraction, then the job length.
    fn relaxations(mut self) -> [StateKey; 3] {
        let mut out = [self; 3];
        self.hour_bucket = u8::MAX;
        out[0] = self;
        self.free_quarter = u8::MAX;
        out[1] = self;
        self.job_length = u8::MAX;
        out[2] = self;
        out
    }
}

fn log2_bucket(v: u64) -> u8 {
    (64 - (v + 1).leading_zeros() - 1) as u8
}

/// Online state-to-wait regressor.
#[derive(Debug, Clone)]
pub struct StateWaitPredictor {
    /// Bounded per-category wait histories (seconds).
    history: HashMap<StateKey, VecDeque<f64>>,
    /// Points per category before it is trusted.
    min_points: usize,
    /// Retention per category.
    max_history: usize,
    global_sum: f64,
    global_n: u64,
}

impl Default for StateWaitPredictor {
    fn default() -> Self {
        StateWaitPredictor::new(3, 256)
    }
}

impl StateWaitPredictor {
    /// Create a predictor that trusts categories with at least
    /// `min_points` observations and retains at most `max_history` per
    /// category.
    pub fn new(min_points: usize, max_history: usize) -> StateWaitPredictor {
        StateWaitPredictor {
            history: HashMap::new(),
            min_points: min_points.max(1),
            max_history: max_history.max(1),
            global_sum: 0.0,
            global_n: 0,
        }
    }

    /// Predict the wait for a submission with state `key`.
    pub fn predict(&self, key: StateKey) -> Dur {
        let exact = std::iter::once(key);
        for k in exact.chain(key.relaxations()) {
            if let Some(h) = self.history.get(&k) {
                if h.len() >= self.min_points {
                    let mean = h.iter().sum::<f64>() / h.len() as f64;
                    return Dur::from_secs_f64(mean.max(0.0));
                }
            }
        }
        if self.global_n > 0 {
            Dur::from_secs_f64((self.global_sum / self.global_n as f64).max(0.0))
        } else {
            Dur::ZERO
        }
    }

    /// Record a realized wait under the state captured at submission,
    /// in the exact category and every relaxation (so coarse categories
    /// fill fast).
    pub fn observe(&mut self, key: StateKey, wait: Dur) {
        let w = wait.as_secs_f64().max(0.0);
        for k in std::iter::once(key).chain(key.relaxations()) {
            let h = self.history.entry(k).or_default();
            if h.len() >= self.max_history {
                h.pop_front();
            }
            h.push_back(w);
        }
        self.global_sum += w;
        self.global_n += 1;
    }

    /// Number of live state categories.
    pub fn category_count(&self) -> usize {
        self.history.len()
    }
}

struct StateStudy<'w, P> {
    wl: &'w Workload,
    /// Cached: the backlog feature re-predicts every queued job at each
    /// submission, and between completions those estimates are frozen.
    runtime_predictor: CachingPredictor<P>,
    state: StateWaitPredictor,
    /// Per job: the state key captured at submission and the predicted
    /// wait shown then.
    captured: Vec<Option<(StateKey, Dur)>>,
    /// Submission states not yet resolved into waits (job -> key).
    pending: HashMap<JobId, StateKey>,
    runtime_errors: ErrorStats,
}

impl<P: RunTimePredictor> SimHooks for StateStudy<'_, P> {
    fn after_submit(&mut self, snap: &Snapshot, job: &Job) {
        // Predicted backlog ahead of the job.
        let mut backlog_node_min = 0.0;
        for &(id, _) in snap.queued.iter().filter(|&&(id, _)| id != job.id) {
            let j = self.wl.job(id);
            let pred = self.runtime_predictor.predict(j, Dur::ZERO);
            backlog_node_min += j.nodes as f64 * pred.estimate.minutes();
        }
        let own = self.runtime_predictor.predict(job, Dur::ZERO);
        self.runtime_errors.record(own.estimate, job.runtime);
        let key = StateKey::capture(
            snap,
            self.wl.machine_nodes,
            job,
            own.estimate,
            backlog_node_min,
        );
        let predicted = self.state.predict(key);
        self.captured[job.id.index()] = Some((key, predicted));
        self.pending.insert(job.id, key);
    }

    fn on_job_start(&mut self, job: &Job, now: Time) {
        if let Some(key) = self.pending.remove(&job.id) {
            self.state.observe(key, now - job.submit);
        }
    }

    fn on_job_complete(&mut self, job: &Job, _now: Time) {
        RunTimePredictor::on_complete(&mut self.runtime_predictor, job);
    }
}

/// Evaluate the state-based wait predictor in the same harness as
/// [`crate::run_wait_prediction`]: the outer system schedules with
/// maximum run times; `kind` supplies the run-time predictions used for
/// the backlog/job-length features.
pub fn run_state_wait_prediction(
    wl: &Workload,
    alg: Algorithm,
    kind: PredictorKind,
) -> WaitPredictionOutcome {
    let runtime_predictor = kind.build(wl);
    let predictor_name = runtime_predictor.name();
    let mut study = StateStudy {
        wl,
        runtime_predictor: CachingPredictor::new(runtime_predictor),
        state: StateWaitPredictor::default(),
        captured: vec![None; wl.len()],
        pending: HashMap::new(),
        runtime_errors: ErrorStats::new(),
    };
    let mut outer = MaxRuntimeEstimator::from_workload(wl);
    let mut sim = Simulation::new(wl, alg);
    let result = sim.run_with_hooks(&mut outer, &mut study);

    let mut wait_errors = ErrorStats::new();
    for o in &result.outcomes {
        let (_, predicted) = study.captured[o.id.index()].expect("every submission captured");
        wait_errors.record(predicted, o.wait());
    }
    let mut metrics = result.metrics;
    metrics.estimate_cache = Some(study.runtime_predictor.stats());
    WaitPredictionOutcome {
        workload: wl.name.clone(),
        algorithm: alg,
        predictor: predictor_name,
        wait_errors,
        runtime_errors: study.runtime_errors,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::synthetic::toy;

    fn key(depth: u8) -> StateKey {
        StateKey {
            queue_depth: depth,
            backlog: 1,
            free_quarter: 2,
            job_size: 2,
            job_length: 3,
            hour_bucket: 1,
        }
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(7), 3);
        assert_eq!(log2_bucket(8), 3);
    }

    #[test]
    fn empty_predictor_returns_zero() {
        let p = StateWaitPredictor::default();
        assert_eq!(p.predict(key(1)), Dur::ZERO);
    }

    #[test]
    fn learns_per_state_means() {
        let mut p = StateWaitPredictor::new(2, 64);
        for _ in 0..4 {
            p.observe(key(0), Dur(60));
            p.observe(key(5), Dur(6000));
        }
        assert_eq!(p.predict(key(0)), Dur(60));
        assert_eq!(p.predict(key(5)), Dur(6000));
    }

    #[test]
    fn backoff_relaxes_hour_first() {
        let mut p = StateWaitPredictor::new(2, 64);
        let mut k = key(3);
        for _ in 0..3 {
            p.observe(k, Dur(300));
        }
        // Same state at a different hour: exact key misses, relaxation
        // (hour dropped) hits.
        k.hour_bucket = 5;
        assert_eq!(p.predict(k), Dur(300));
    }

    #[test]
    fn history_is_bounded() {
        let mut p = StateWaitPredictor::new(1, 4);
        for i in 0..100 {
            p.observe(key(1), Dur(i));
        }
        // Only the last 4 observations (96..=99) remain: mean 97.5 -> 98.
        assert_eq!(p.predict(key(1)), Dur(98));
    }

    #[test]
    fn end_to_end_beats_nothing_and_tracks_scale() {
        let wl = toy(800, 24, 401);
        let out = run_state_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Smith);
        assert_eq!(out.wait_errors.count(), 800);
        // Sanity: mean error is bounded by a few times the mean wait
        // (the predictor must at least track the scale of waits).
        assert!(
            out.wait_errors.pct_of_mean_actual() < 300.0,
            "state predictor unusable: {:.0}%",
            out.wait_errors.pct_of_mean_actual()
        );
    }

    #[test]
    fn backlog_features_hit_the_estimate_cache() {
        let wl = toy(300, 16, 403);
        let out = run_state_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Smith);
        let c = out.metrics.estimate_cache.expect("study runs cached");
        assert!(
            c.hits > 0,
            "queued jobs re-predicted across submissions must hit"
        );
    }

    #[test]
    fn deterministic() {
        let wl = toy(300, 16, 402);
        let a = run_state_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith);
        let b = run_state_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith);
        assert_eq!(a.wait_errors, b.wait_errors);
    }
}
