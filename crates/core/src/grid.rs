//! Parallel execution of independent experiment cells.
//!
//! The paper's grids (workload x algorithm x predictor) are
//! embarrassingly parallel and wildly uneven in cost (ANL backfill
//! wait-prediction dwarfs SDSC FCFS scheduling), so cells are pulled from
//! a shared queue by a fixed pool of scoped workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `cells` concurrently on up to `threads` workers, returning the
/// results in input order. Panics in a cell propagate. Work is pulled
/// from a shared atomic cursor so uneven cells balance dynamically.
pub fn run_cells<T, F>(cells: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = cells.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return cells.into_iter().map(|c| c()).collect();
    }
    let next = AtomicUsize::new(0);
    let tasks: Vec<Mutex<Option<F>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = tasks[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("each cell claimed once");
                let out = cell();
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every cell completed")
        })
        .collect()
}

/// Default worker count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let cells: Vec<_> = (0..50).map(|i| move || i * 2).collect();
        let out = run_cells(cells, 8);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let cells: Vec<_> = (0..5).map(|i| move || i + 1).collect();
        assert_eq!(run_cells(cells, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_grid() {
        let cells: Vec<fn() -> i32> = vec![];
        assert!(run_cells(cells, 4).is_empty());
    }

    #[test]
    fn uneven_work_balances() {
        let cells: Vec<_> = (0..16)
            .map(|i| {
                move || {
                    // Uneven busy loops.
                    let mut acc = 0u64;
                    for k in 0..(i as u64 * 10_000) {
                        acc = acc.wrapping_add(k);
                    }
                    (i, acc)
                }
            })
            .collect();
        let out = run_cells(cells, 4);
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }
}
