//! Uniform construction of every predictor the paper compares.

use qpredict_predict::{
    DegradationCounts, DowneyPredictor, DowneyVariant, FallbackPredictor, GibbonsPredictor,
    MaxRuntimePredictor, OraclePredictor, Prediction, RunTimePredictor, SmithPredictor,
    TemplateSet,
};
use qpredict_workload::{Dur, Job, Workload};

use crate::searched;

/// Which run-time predictor to use in an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorKind {
    /// Actual run times (perfect information; Tables 4 and 10).
    Actual,
    /// User-supplied maximum run times, with per-queue maxima derived
    /// for traces without limits (Tables 5 and 11).
    MaxRuntime,
    /// The paper's template-based predictor with the searched/curated
    /// template set for the workload (Tables 6 and 12).
    Smith,
    /// The template-based predictor with an explicit template set (for
    /// search results and ablations).
    SmithWith(TemplateSet),
    /// Gibbons' fixed-template predictor (Tables 7 and 13).
    Gibbons,
    /// Downey's conditional-average predictor (Tables 8 and 14).
    DowneyAverage,
    /// Downey's conditional-median predictor (Tables 9 and 15).
    DowneyMedian,
    /// Degradation chain: Smith → Gibbons → Downey-median → user maximum
    /// run time → static default, recording every degradation event. Not
    /// part of the paper's comparison; the robust production
    /// configuration.
    Fallback,
}

impl PredictorKind {
    /// The predictors in the paper's table order 4..=9 / 10..=15,
    /// excluding the explicit-set variant.
    pub const ALL: [PredictorKind; 6] = [
        PredictorKind::Actual,
        PredictorKind::MaxRuntime,
        PredictorKind::Smith,
        PredictorKind::Gibbons,
        PredictorKind::DowneyAverage,
        PredictorKind::DowneyMedian,
    ];

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorKind::Actual => "actual",
            PredictorKind::MaxRuntime => "maxrt",
            PredictorKind::Smith | PredictorKind::SmithWith(_) => "smith",
            PredictorKind::Gibbons => "gibbons",
            PredictorKind::DowneyAverage => "downey-avg",
            PredictorKind::DowneyMedian => "downey-med",
            PredictorKind::Fallback => "fallback",
        }
    }

    /// Parse a (case-insensitive) predictor name.
    pub fn parse(s: &str) -> Option<PredictorKind> {
        match s.to_ascii_lowercase().as_str() {
            "actual" | "oracle" => Some(PredictorKind::Actual),
            "maxrt" | "max" | "limit" => Some(PredictorKind::MaxRuntime),
            "smith" | "ours" => Some(PredictorKind::Smith),
            "gibbons" => Some(PredictorKind::Gibbons),
            "downey-avg" | "downey-average" => Some(PredictorKind::DowneyAverage),
            "downey-med" | "downey-median" => Some(PredictorKind::DowneyMedian),
            "fallback" | "chain" => Some(PredictorKind::Fallback),
            _ => None,
        }
    }

    /// Build the predictor for `wl`.
    pub fn build(&self, wl: &Workload) -> BoxedPredictor {
        let inner: Box<dyn RunTimePredictor + Send> = match self {
            PredictorKind::Actual => Box::new(OraclePredictor),
            PredictorKind::MaxRuntime => Box::new(MaxRuntimePredictor::from_workload(wl)),
            PredictorKind::Smith => Box::new(SmithPredictor::new(searched::set_for(wl))),
            PredictorKind::SmithWith(set) => Box::new(SmithPredictor::new(set.clone())),
            PredictorKind::Gibbons => Box::new(GibbonsPredictor::new()),
            PredictorKind::DowneyAverage => Box::new(DowneyPredictor::for_workload(
                DowneyVariant::ConditionalAverage,
                wl,
            )),
            PredictorKind::DowneyMedian => Box::new(DowneyPredictor::for_workload(
                DowneyVariant::ConditionalMedian,
                wl,
            )),
            PredictorKind::Fallback => Box::new(FallbackPredictor::new(
                vec![
                    Box::new(SmithPredictor::new(searched::set_for(wl))),
                    Box::new(GibbonsPredictor::new()),
                    Box::new(DowneyPredictor::for_workload(
                        DowneyVariant::ConditionalMedian,
                        wl,
                    )),
                ],
                MaxRuntimePredictor::from_workload(wl),
                FallbackPredictor::DEFAULT_ESTIMATE,
            )),
        };
        BoxedPredictor { inner }
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A heap-allocated predictor implementing [`RunTimePredictor`] by
/// delegation (so experiment code can treat all kinds uniformly and move
/// them across threads).
pub struct BoxedPredictor {
    inner: Box<dyn RunTimePredictor + Send>,
}

impl RunTimePredictor for BoxedPredictor {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        self.inner.predict(job, elapsed)
    }

    fn on_complete(&mut self, job: &Job) {
        RunTimePredictor::on_complete(self.inner.as_mut(), job)
    }

    fn reset(&mut self) {
        self.inner.reset()
    }

    fn degradations(&self) -> Option<DegradationCounts> {
        self.inner.degradations()
    }

    fn generation(&self) -> Option<u64> {
        self.inner.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::synthetic::toy;

    #[test]
    fn builds_every_kind() {
        let wl = toy(50, 16, 1);
        for kind in PredictorKind::ALL {
            let mut p = kind.build(&wl);
            let pred = p.predict(&wl.jobs[0], Dur::ZERO);
            assert!(pred.estimate >= Dur::SECOND, "{kind} returned nonsense");
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for kind in PredictorKind::ALL {
            assert_eq!(PredictorKind::parse(kind.name()), Some(kind.clone()));
        }
        assert_eq!(PredictorKind::parse("nope"), None);
    }

    #[test]
    fn fallback_kind_builds_and_degrades() {
        let wl = toy(50, 16, 3);
        let kind = PredictorKind::parse("fallback").unwrap();
        assert_eq!(kind, PredictorKind::Fallback);
        let mut p = kind.build(&wl);
        assert_eq!(p.name(), "fallback");
        // Cold chain: the learned tiers must all fail and be counted.
        let pred = p.predict(&wl.jobs[0], Dur::ZERO);
        assert!(pred.estimate >= Dur::SECOND);
        let d = p.degradations().expect("chain reports degradations");
        assert!(
            d.degradations >= 3,
            "cold chain degraded {} times",
            d.degradations
        );
        assert_eq!(d.total_served(), 1);
        // Simple predictors report nothing.
        assert!(PredictorKind::Actual.build(&wl).degradations().is_none());
    }

    #[test]
    fn smith_with_uses_given_set() {
        use qpredict_predict::Template;
        let wl = toy(50, 16, 2);
        let set = TemplateSet::new(vec![Template::mean_over(&[])]);
        let kind = PredictorKind::SmithWith(set);
        let mut p = kind.build(&wl);
        assert_eq!(p.name(), "smith");
        p.on_complete(&wl.jobs[0]);
        let pred = p.predict(&wl.jobs[1], Dur::ZERO);
        assert_eq!(pred.estimate, wl.jobs[0].runtime);
    }
}
