//! The prediction-driven scheduling experiment (paper Section 4,
//! Tables 10–15): drive LWF or backfill with a run-time predictor and
//! measure utilization and mean wait time.

use qpredict_predict::{DegradationCounts, ErrorStats, RunTimePredictor};
use qpredict_sim::{
    Algorithm, FaultCounts, FaultPlan, FaultReport, FaultyEstimator, Metrics, Simulation,
};
use qpredict_workload::Workload;

use crate::adapter::PredictorEstimator;
use crate::kind::PredictorKind;

/// Results of one scheduling run.
#[derive(Debug, Clone)]
pub struct SchedulingOutcome {
    /// Workload name.
    pub workload: String,
    /// Algorithm driven by the predictor.
    pub algorithm: Algorithm,
    /// Predictor used.
    pub predictor: &'static str,
    /// Schedule quality (the paper reports utilization and mean wait).
    pub metrics: Metrics,
    /// Run-time prediction errors over every estimate the scheduler
    /// requested.
    pub runtime_errors: ErrorStats,
    /// How many estimates came from the predictor's fallback path.
    pub fallback_estimates: u64,
    /// Per-tier degradation accounting, present when the predictor is a
    /// fallback chain ([`PredictorKind::Fallback`]).
    pub degradations: Option<DegradationCounts>,
    /// Fault-injection accounting, present when the run was driven by a
    /// [`FaultPlan`] (see [`run_scheduling_with`]).
    pub faults: Option<FaultSummary>,
}

/// What a fault-injected run actually did to its inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Trace-level mutations (cancelled / failed / delayed jobs).
    pub trace: FaultReport,
    /// Prediction corruptions (scaled / inverted / dropped estimates).
    pub estimates: FaultCounts,
}

/// Schedule `wl` under `alg` using `kind` for run-time estimates.
pub fn run_scheduling(wl: &Workload, alg: Algorithm, kind: PredictorKind) -> SchedulingOutcome {
    run_scheduling_with(wl, alg, kind, None)
}

/// Like [`run_scheduling`], optionally injecting faults: trace faults
/// mutate a copy of the workload before the run, prediction faults wrap
/// the estimator in a [`FaultyEstimator`]. With `faults` of `None` this
/// is exactly `run_scheduling`. Deterministic in `FaultPlan::seed`.
pub fn run_scheduling_with(
    wl: &Workload,
    alg: Algorithm,
    kind: PredictorKind,
    faults: Option<&FaultPlan>,
) -> SchedulingOutcome {
    let _span = qpredict_obs::span("run.scheduling");
    let (faulted, trace_report) = match faults {
        Some(plan) if plan.has_trace_faults() => {
            let (w, r) = plan.apply_to_workload(wl);
            (Some(w), r)
        }
        _ => (None, FaultReport::default()),
    };
    let wl_run = faulted.as_ref().unwrap_or(wl);
    let predictor = kind.build(wl_run);
    let predictor_name = predictor.name();
    let inner = PredictorEstimator::new(predictor);
    let mut est = FaultyEstimator::new(inner, faults.cloned().unwrap_or_else(|| FaultPlan::new(0)));
    let result = Simulation::run(wl_run, alg, &mut est);
    let (inner, est_counts) = est.into_parts();
    let mut metrics = result.metrics;
    metrics.estimate_cache = Some(inner.cache_stats());
    SchedulingOutcome {
        workload: wl.name.clone(),
        algorithm: alg,
        predictor: predictor_name,
        metrics,
        runtime_errors: *inner.errors(),
        fallback_estimates: inner.fallback_count(),
        degradations: inner.degradations(),
        faults: faults.map(|_| FaultSummary {
            trace: trace_report,
            estimates: est_counts,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::synthetic::toy;

    #[test]
    fn fcfs_outcome_is_predictor_invariant() {
        // FCFS never consults the estimator; every predictor must yield
        // the identical schedule.
        let wl = toy(250, 32, 30);
        let a = run_scheduling(&wl, Algorithm::Fcfs, PredictorKind::Actual);
        let b = run_scheduling(&wl, Algorithm::Fcfs, PredictorKind::MaxRuntime);
        let c = run_scheduling(&wl, Algorithm::Fcfs, PredictorKind::DowneyMedian);
        assert_eq!(a.metrics.mean_wait, b.metrics.mean_wait);
        assert_eq!(a.metrics.mean_wait, c.metrics.mean_wait);
        assert_eq!(a.runtime_errors.count(), 0, "FCFS must never predict");
    }

    #[test]
    fn utilization_is_insensitive_to_predictor() {
        // The paper's Section 4 finding: "the accuracy of the run-time
        // predictions has a minimal effect on the utilization".
        let wl = toy(400, 24, 31);
        let mut utils = Vec::new();
        for kind in [
            PredictorKind::Actual,
            PredictorKind::MaxRuntime,
            PredictorKind::Smith,
        ] {
            utils.push(
                run_scheduling(&wl, Algorithm::Backfill, kind)
                    .metrics
                    .utilization,
            );
        }
        let max = utils.iter().cloned().fold(f64::MIN, f64::max);
        let min = utils.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.05, "utilization spread too large: {utils:?}");
    }

    #[test]
    fn lwf_with_oracle_beats_fcfs_on_mean_wait() {
        // LWF exists because running least-work-first slashes mean waits;
        // with perfect estimates this must materialize.
        let wl = toy(400, 16, 32);
        let fcfs = run_scheduling(&wl, Algorithm::Fcfs, PredictorKind::Actual);
        let lwf = run_scheduling(&wl, Algorithm::Lwf, PredictorKind::Actual);
        assert!(
            lwf.metrics.mean_wait < fcfs.metrics.mean_wait,
            "LWF {:?} should beat FCFS {:?}",
            lwf.metrics.mean_wait,
            fcfs.metrics.mean_wait
        );
    }

    #[test]
    fn backfill_with_oracle_beats_fcfs_on_mean_wait() {
        let wl = toy(400, 16, 33);
        let fcfs = run_scheduling(&wl, Algorithm::Fcfs, PredictorKind::Actual);
        let bf = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Actual);
        assert!(
            bf.metrics.mean_wait < fcfs.metrics.mean_wait,
            "backfill {:?} should beat FCFS {:?}",
            bf.metrics.mean_wait,
            fcfs.metrics.mean_wait
        );
    }

    #[test]
    fn all_predictors_complete_all_jobs() {
        let wl = toy(200, 16, 34);
        for kind in PredictorKind::ALL {
            for alg in [Algorithm::Lwf, Algorithm::Backfill] {
                let out = run_scheduling(&wl, alg, kind.clone());
                assert_eq!(out.metrics.n_jobs, 200, "{alg} + {kind} lost jobs");
                assert!(out.metrics.utilization > 0.0 && out.metrics.utilization <= 1.0);
            }
        }
    }

    #[test]
    fn fallback_chain_schedules_and_reports_degradations() {
        let wl = toy(200, 16, 36);
        let out = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Fallback);
        assert_eq!(out.metrics.n_jobs, 200);
        let d = out
            .degradations
            .expect("fallback kind reports degradations");
        assert!(d.degradations > 0, "cold start must degrade at least once");
        assert_eq!(d.total_served(), out.runtime_errors.count());
        // Plain predictors report no chain accounting.
        let plain = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Smith);
        assert!(plain.degradations.is_none());
    }

    #[test]
    fn fault_injected_runs_are_seed_deterministic() {
        use qpredict_sim::FaultPlan;
        let wl = toy(200, 16, 37);
        let plan = FaultPlan {
            cancel_prob: 0.05,
            fail_prob: 0.05,
            delay_prob: 0.1,
            ..FaultPlan::pred_noise(1234, 0.2)
        };
        let a = run_scheduling_with(&wl, Algorithm::Backfill, PredictorKind::Smith, Some(&plan));
        let b = run_scheduling_with(&wl, Algorithm::Backfill, PredictorKind::Smith, Some(&plan));
        assert_eq!(a.metrics.mean_wait, b.metrics.mean_wait);
        assert_eq!(a.metrics.utilization, b.metrics.utilization);
        let fa = a.faults.expect("fault summary present");
        assert_eq!(Some(fa), b.faults);
        assert!(fa.trace.total() > 0, "trace faults must fire");
        assert!(fa.estimates.total() > 0, "prediction faults must fire");
        // Without a plan, no summary and a clean schedule.
        let clean = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Smith);
        assert!(clean.faults.is_none());
        assert_ne!(clean.metrics.mean_wait, a.metrics.mean_wait);
    }

    #[test]
    fn estimate_cache_counters_are_reported() {
        let wl = toy(200, 16, 38);
        let out = run_scheduling(&wl, Algorithm::Lwf, PredictorKind::Smith);
        let c = out.metrics.estimate_cache.expect("caching layer engaged");
        assert!(c.hits > 0, "LWF re-estimates queued jobs every pass");
        assert!(c.misses > 0);
        assert!(c.invalidations > 0, "completions must flush the cache");
        // The fallback chain is deliberately uncacheable (side-effecting
        // predict): every call reaches the chain, counted as misses.
        let fb = run_scheduling(&wl, Algorithm::Lwf, PredictorKind::Fallback);
        let cf = fb.metrics.estimate_cache.expect("stats still reported");
        assert_eq!(cf.hits, 0, "uncacheable predictors must pass through");
        assert_eq!(cf.misses, fb.runtime_errors.count());
    }

    #[test]
    fn oracle_runtime_errors_are_zero() {
        let wl = toy(150, 16, 35);
        let out = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Actual);
        assert!(out.runtime_errors.count() > 0);
        assert_eq!(out.runtime_errors.mean_abs_error_min(), 0.0);
    }
}
