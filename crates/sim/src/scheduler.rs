//! The three scheduling algorithms of the paper, as a pure decision
//! function over a view of the system state.
//!
//! Both the outer simulation engine ([`crate::engine`]) and the nested
//! wait-time-forecast simulation in `qpredict-core` call
//! [`schedule_pass`], so predicted and real scheduler behaviour come from
//! literally the same code.

use qpredict_workload::{Dur, JobId, Time};

use crate::profile::Profile;

/// Which scheduling algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// First-come first-served: the head of the arrival-ordered queue
    /// starts whenever enough nodes are free. Uses no run-time estimates.
    Fcfs,
    /// Least-work-first: the queue is ordered by estimated work
    /// (`nodes x estimated run time`); the head starts whenever it fits.
    Lwf,
    /// Conservative backfill: jobs are examined in arrival order; a job
    /// starts if that does not delay any earlier job's reservation,
    /// otherwise nodes are reserved for it at the earliest possible time.
    Backfill,
    /// EASY (aggressive) backfill: only the *first* blocked job receives
    /// a reservation; later jobs may start whenever they fit without
    /// delaying that single reservation. Not used by the paper (its
    /// backfill reserves for every blocked job) — provided for the
    /// backfill-flavour ablation.
    EasyBackfill,
}

impl Algorithm {
    /// The paper's algorithms, in the paper's order (excludes the
    /// [`Algorithm::EasyBackfill`] ablation variant).
    pub const ALL: [Algorithm; 3] = [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Fcfs => "FCFS",
            Algorithm::Lwf => "LWF",
            Algorithm::Backfill => "Backfill",
            Algorithm::EasyBackfill => "EASY",
        }
    }

    /// Whether this algorithm consults run-time estimates for *waiting*
    /// jobs (LWF ordering, backfill reservations).
    pub fn uses_queue_estimates(self) -> bool {
        !matches!(self, Algorithm::Fcfs)
    }

    /// Whether this algorithm consults run-time estimates for *running*
    /// jobs (backfill needs predicted completions to build its
    /// availability profile).
    pub fn uses_running_estimates(self) -> bool {
        matches!(self, Algorithm::Backfill | Algorithm::EasyBackfill)
    }

    /// Parse a (case-insensitive) algorithm name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Some(Algorithm::Fcfs),
            "lwf" => Some(Algorithm::Lwf),
            "backfill" | "bf" => Some(Algorithm::Backfill),
            "easy" | "easy-backfill" => Some(Algorithm::EasyBackfill),
            _ => None,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the scheduler knows about one running job.
#[derive(Debug, Clone, Copy)]
pub struct RunningView {
    /// Nodes the job occupies.
    pub nodes: u32,
    /// Predicted completion instant (from the active run-time estimator).
    pub pred_end: Time,
}

/// What the scheduler knows about one queued job.
#[derive(Debug, Clone, Copy)]
pub struct QueueEntry {
    /// Which job this is.
    pub id: JobId,
    /// Arrival sequence number: total order of enqueueing, used for FCFS
    /// order and all tie-breaking.
    pub seq: u64,
    /// Nodes the job requests.
    pub nodes: u32,
    /// Predicted run time (from the active run-time estimator). Ignored
    /// by FCFS.
    pub pred_runtime: Dur,
}

impl QueueEntry {
    /// Estimated work: `nodes x predicted run time`, the LWF priority.
    pub fn est_work(&self) -> f64 {
        self.nodes as f64 * self.pred_runtime.seconds().max(1) as f64
    }
}

/// Decide which queued jobs start *now*.
///
/// * `now` — current instant.
/// * `machine_nodes` — machine size.
/// * `free_nodes` — nodes not occupied by running jobs.
/// * `running` — running jobs (only backfill reads it).
/// * `queue` — queued jobs in any order; `seq` defines arrival order.
///
/// Returns indices into `queue` of the jobs to start, in the order they
/// should start. The function is pure: callers apply the starts.
pub fn schedule_pass(
    alg: Algorithm,
    now: Time,
    machine_nodes: u32,
    free_nodes: u32,
    running: &[RunningView],
    queue: &[QueueEntry],
) -> Vec<usize> {
    schedule_pass_reporting(alg, now, machine_nodes, free_nodes, running, queue, None)
}

/// [`schedule_pass`] with an invariant-violation sink: when `violations`
/// is provided, an oversubscribed running set (possible under fault
/// injection or a corrupt trace) is reported through it instead of
/// tripping a debug assertion — the guarded engine threads its
/// violation log here so a silently-wrong backfill profile cannot hide.
pub fn schedule_pass_reporting(
    alg: Algorithm,
    now: Time,
    machine_nodes: u32,
    free_nodes: u32,
    running: &[RunningView],
    queue: &[QueueEntry],
    violations: Option<&mut Vec<String>>,
) -> Vec<usize> {
    debug_assert!(
        violations.is_some()
            || running.iter().map(|r| r.nodes as u64).sum::<u64>() + free_nodes as u64
                == machine_nodes as u64,
        "free-node accounting is inconsistent"
    );
    match alg {
        Algorithm::Fcfs => in_order_pass(
            free_nodes,
            queue,
            |a, b| queue[a].seq.cmp(&queue[b].seq),
            true,
        ),
        Algorithm::Lwf => in_order_pass(
            free_nodes,
            queue,
            |a, b| {
                queue[a]
                    .est_work()
                    .partial_cmp(&queue[b].est_work())
                    .expect("work is finite")
                    .then(queue[a].seq.cmp(&queue[b].seq))
            },
            false,
        ),
        Algorithm::Backfill => backfill_pass(
            now,
            machine_nodes,
            free_nodes,
            running,
            queue,
            false,
            violations,
        ),
        Algorithm::EasyBackfill => backfill_pass(
            now,
            machine_nodes,
            free_nodes,
            running,
            queue,
            true,
            violations,
        ),
    }
}

/// Ordered scheduling: sort the queue by `cmp` and start jobs from the
/// front while they fit.
///
/// With `head_blocking` (FCFS — "the application at the head of the
/// queue runs whenever enough nodes become free"), the pass stops at the
/// first job that does not fit. Without it (LWF), non-fitting jobs are
/// skipped and any later, smaller-work job that fits is started: a
/// least-work job asking for most of the machine must not idle the rest
/// of it, or LWF could never produce the paper's Table 10 mean waits
/// (consistently below backfill's).
fn in_order_pass(
    free_nodes: u32,
    queue: &[QueueEntry],
    cmp: impl Fn(usize, usize) -> std::cmp::Ordering,
    head_blocking: bool,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..queue.len()).collect();
    order.sort_by(|&a, &b| cmp(a, b));
    let mut free = free_nodes;
    let mut starts = Vec::new();
    for i in order {
        if queue[i].nodes <= free {
            free -= queue[i].nodes;
            starts.push(i);
        } else if head_blocking {
            break;
        }
    }
    starts
}

/// Backfill. Reservations are recomputed from scratch each pass (arrival
/// order makes the recomputation deterministic), which is the standard
/// formulation of the paper's description: *"If an application cannot
/// run, nodes are reserved for it at the earliest possible time."*
///
/// With `easy` set, only the first blocked job receives a reservation
/// (EASY semantics); otherwise every blocked job does (conservative, the
/// paper's flavour).
#[allow(clippy::too_many_arguments)]
fn backfill_pass(
    now: Time,
    machine_nodes: u32,
    free_nodes: u32,
    running: &[RunningView],
    queue: &[QueueEntry],
    easy: bool,
    violations: Option<&mut Vec<String>>,
) -> Vec<usize> {
    let _ = free_nodes; // implied by `running`; the profile recomputes it
    let running_pairs: Vec<(u32, Time)> = running.iter().map(|r| (r.nodes, r.pred_end)).collect();
    let mut profile = Profile::new_reporting(machine_nodes, now, &running_pairs, violations);

    let mut order: Vec<usize> = (0..queue.len()).collect();
    order.sort_by_key(|&i| queue[i].seq);

    let mut starts = Vec::new();
    let mut reserved = false;
    for i in order {
        let e = &queue[i];
        let nodes = e.nodes.min(machine_nodes);
        let dur = e.pred_runtime.max(Dur::SECOND);
        let at = profile.earliest_fit(nodes, dur);
        if at == now {
            profile.reserve(at, dur, nodes);
            starts.push(i);
        } else if !easy || !reserved {
            profile.reserve(at, dur, nodes);
            reserved = true;
        }
        // Under EASY, blocked jobs beyond the first reserve nothing and
        // simply wait.
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qe(seq: u64, nodes: u32, rt: i64) -> QueueEntry {
        QueueEntry {
            id: JobId(seq as u32),
            seq,
            nodes,
            pred_runtime: Dur(rt),
        }
    }

    #[test]
    fn fcfs_blocks_behind_head() {
        // Head needs 8 nodes, only 4 free; the 1-node job behind it must
        // NOT start (no backfilling in FCFS).
        let queue = [qe(0, 8, 100), qe(1, 1, 100)];
        let starts = schedule_pass(Algorithm::Fcfs, Time(0), 8, 4, &[rv(4, 50)], &queue);
        assert!(starts.is_empty());
    }

    #[test]
    fn fcfs_starts_in_arrival_order() {
        let queue = [qe(1, 2, 100), qe(0, 2, 100)];
        let starts = schedule_pass(Algorithm::Fcfs, Time(0), 8, 8, &[], &queue);
        assert_eq!(starts, vec![1, 0]); // seq 0 first
    }

    #[test]
    fn lwf_orders_by_work() {
        // seq0: 4 nodes x 100 s = 400 work; seq1: 1 node x 100 s = 100.
        let queue = [qe(0, 4, 100), qe(1, 1, 100)];
        let starts = schedule_pass(Algorithm::Lwf, Time(0), 8, 8, &[], &queue);
        assert_eq!(starts, vec![1, 0]);
    }

    #[test]
    fn lwf_skips_nonfitting_least_work_head() {
        // Least-work job needs 8 nodes (work 8*10=80) and cannot fit; the
        // 1-node job (work 200) fits and starts — LWF does not idle the
        // machine behind a wide head.
        let queue = [qe(0, 8, 10), qe(1, 1, 200)];
        let starts = schedule_pass(Algorithm::Lwf, Time(0), 8, 4, &[rv(4, 50)], &queue);
        assert_eq!(starts, vec![1]);
    }

    #[test]
    fn lwf_ties_break_by_arrival() {
        let queue = [qe(1, 2, 100), qe(0, 2, 100)];
        let starts = schedule_pass(Algorithm::Lwf, Time(0), 2, 2, &[], &queue);
        assert_eq!(starts, vec![1]); // same work, seq 0 wins, then blocked
    }

    fn rv(nodes: u32, end: i64) -> RunningView {
        RunningView {
            nodes,
            pred_end: Time(end),
        }
    }

    #[test]
    fn oversubscribed_running_set_is_reported_not_asserted() {
        // Fault injection: a corrupted snapshot claims 12 running nodes
        // on an 8-node machine. With a violation sink the pass must
        // survive (no debug_assert) and report the oversubscription
        // through the profile's guarded path.
        let queue = [qe(0, 2, 100)];
        let running = [rv(8, 100), rv(4, 150)];
        let mut violations = Vec::new();
        let starts = schedule_pass_reporting(
            Algorithm::Backfill,
            Time(0),
            8,
            0,
            &running,
            &queue,
            Some(&mut violations),
        );
        assert!(starts.is_empty(), "no free nodes, nothing may start");
        assert!(
            violations.iter().any(|v| v.contains("oversubscribed")),
            "oversubscription must be reported: {violations:?}"
        );
    }

    #[test]
    fn backfill_starts_small_job_behind_blocked_head() {
        // 4 nodes free until t=100 (4-node job running to 100).
        // Head wants 8 nodes -> reserved at t=100.
        // Second job: 4 nodes, 50 s: fits now and ends at t=50 <= 100, so
        // it cannot delay the reservation -> backfilled.
        let queue = [qe(0, 8, 100), qe(1, 4, 50)];
        let starts = schedule_pass(Algorithm::Backfill, Time(0), 8, 4, &[rv(4, 100)], &queue);
        assert_eq!(starts, vec![1]);
    }

    #[test]
    fn backfill_refuses_job_that_would_delay_reservation() {
        // Same as above but the small job runs 150 s: it would hold 4
        // nodes past t=100 and delay the 8-node reservation.
        let queue = [qe(0, 8, 100), qe(1, 4, 150)];
        let starts = schedule_pass(Algorithm::Backfill, Time(0), 8, 4, &[rv(4, 100)], &queue);
        assert!(starts.is_empty());
    }

    #[test]
    fn backfill_is_conservative_not_easy() {
        // Three jobs: head reserved at 100; second reserved behind it;
        // a third small job must respect BOTH reservations (EASY would
        // only respect the head's).
        // Machine 8; running 4 nodes until 100.
        // q0: 8 nodes 100 s -> reserved [100, 200).
        // q1: 8 nodes 100 s -> reserved [200, 300).
        // q2: 4 nodes 250 s: starting now would run to 250, overlapping
        // [100,300) where 8 nodes are reserved -> must not start.
        let queue = [qe(0, 8, 100), qe(1, 8, 100), qe(2, 4, 250)];
        let starts = schedule_pass(Algorithm::Backfill, Time(0), 8, 4, &[rv(4, 100)], &queue);
        assert!(starts.is_empty());
    }

    #[test]
    fn backfill_without_contention_starts_everything_that_fits() {
        let queue = [qe(0, 2, 100), qe(1, 2, 100), qe(2, 2, 100)];
        let starts = schedule_pass(Algorithm::Backfill, Time(0), 8, 8, &[], &queue);
        assert_eq!(starts, vec![0, 1, 2]);
    }

    #[test]
    fn algorithm_parse_and_flags() {
        assert_eq!(Algorithm::parse("fcfs"), Some(Algorithm::Fcfs));
        assert_eq!(Algorithm::parse("BF"), Some(Algorithm::Backfill));
        assert_eq!(Algorithm::parse("easy"), Some(Algorithm::EasyBackfill));
        assert_eq!(Algorithm::parse("nope"), None);
        assert!(!Algorithm::Fcfs.uses_queue_estimates());
        assert!(Algorithm::Lwf.uses_queue_estimates());
        assert!(!Algorithm::Lwf.uses_running_estimates());
        assert!(Algorithm::Backfill.uses_running_estimates());
        assert!(Algorithm::EasyBackfill.uses_running_estimates());
    }

    #[test]
    fn easy_backfills_where_conservative_refuses() {
        // Machine 8; 4 nodes busy until t=100.
        // q0: 8 nodes (reserved at 100).
        // q1: 8 nodes (conservative reserves it at 200; EASY reserves
        //     nothing for it).
        // q2: 4 nodes, 250 s: overlaps q1's conservative reservation
        //     (so conservative refuses) but not q0's at [100, 200)?
        //     It does overlap [100, 200) too (4 nodes used + 4 nodes by
        //     q2 leaves 0 of the 8 q0 needs)... so pick durations that
        //     only conflict with q1: q2 runs 80 s, ending at t=80 < 100:
        //     both accept it. Use 150 s: [0,150) overlaps q0's [100,200)
        //     reservation -> even EASY refuses. The distinguishing case
        //     needs q2 to conflict only with the *second* reservation:
        //     make q0 narrow (6 nodes) so q2 (2 nodes, 250 s) can run
        //     alongside q0 but not alongside q1 (8 nodes at [200, ...)).
        let queue = [qe(0, 6, 100), qe(1, 8, 100), qe(2, 2, 250)];
        let running = [rv(4, 100)];
        let conservative = schedule_pass(Algorithm::Backfill, Time(0), 8, 4, &running, &queue);
        let easy = schedule_pass(Algorithm::EasyBackfill, Time(0), 8, 4, &running, &queue);
        // Conservative: q0 reserved at 100 (6 nodes), q1 reserved at 200,
        // q2 (2 nodes, 250 s) would overlap q1's [200, 300) full-machine
        // reservation -> refused.
        assert!(conservative.is_empty(), "got {conservative:?}");
        // EASY: only q0 is reserved ([100, 200), 6 nodes). q2 fits now:
        // 2 nodes for [0, 250) leaves 6 free during the reservation.
        assert_eq!(easy, vec![2]);
    }

    #[test]
    fn est_work_guards_nonpositive_runtime() {
        let e = qe(0, 4, 0);
        assert_eq!(e.est_work(), 4.0);
    }
}
