//! Seeded, deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] describes two families of faults:
//!
//! * **Trace faults** ([`FaultPlan::apply_to_workload`]): cancel a job
//!   (it aborts right after starting), fail it part-way through its run,
//!   or delay its submission — the events a live scheduler sees when
//!   jobs crash and users resubmit.
//! * **Prediction faults** ([`FaultyEstimator`]): scale an estimate by a
//!   log-uniform factor, invert it around a pivot (short jobs look long
//!   and vice versa), or drop it entirely (a static default takes its
//!   place) — the events a live scheduler sees when its predictor
//!   misbehaves.
//! * **Evaluator faults** (consumed by the search supervisor in
//!   `qpredict-search`): a fitness evaluation panics, hangs (burning its
//!   step budget), or returns a typed error — the events a long GA run
//!   sees when an evaluation worker dies under it.
//!
//! Everything is driven by [`Rng64`] seeded from [`FaultPlan::seed`]:
//! identical plans over identical workloads produce byte-identical
//! simulations, so fault-injection runs are reproducible test fixtures,
//! not flaky chaos.

use qpredict_workload::{Dur, Job, Rng64, Time, Workload};

use crate::estimators::{EstimateError, RuntimeEstimator};

/// A deterministic fault-injection plan. All probabilities are in
/// `[0, 1]`; zero (the default) disables that fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision the plan makes.
    pub seed: u64,
    /// Probability an estimate is scaled by a log-uniform factor in
    /// `[1/pred_scale_max, pred_scale_max]`.
    pub pred_scale_prob: f64,
    /// Largest scale factor (must be ≥ 1).
    pub pred_scale_max: f64,
    /// Probability an estimate is inverted around the pivot: short jobs
    /// look long, long jobs look short.
    pub pred_invert_prob: f64,
    /// Probability an estimate is dropped and replaced by the static
    /// default.
    pub pred_drop_prob: f64,
    /// Replacement estimate for dropped predictions, and the inversion
    /// pivot.
    pub pred_default: Dur,
    /// Probability a job is cancelled (aborts one second after starting).
    pub cancel_prob: f64,
    /// Probability a job fails part-way (runtime truncated to a uniform
    /// fraction of the original).
    pub fail_prob: f64,
    /// Probability a job's submission is delayed.
    pub delay_prob: f64,
    /// Maximum submission delay.
    pub delay_max: Dur,
    /// Probability a fitness evaluation panics (evaluator fault; drawn
    /// per attempt by the search supervisor).
    pub eval_panic_prob: f64,
    /// Probability a fitness evaluation hangs — modelled as burning its
    /// step budget, so the supervisor's watchdog cuts it off.
    pub eval_hang_prob: f64,
    /// Probability a fitness evaluation returns a typed error (a
    /// deterministic failure, not worth retrying).
    pub eval_error_prob: f64,
}

impl FaultPlan {
    /// A plan with every fault disabled.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            pred_scale_prob: 0.0,
            pred_scale_max: 10.0,
            pred_invert_prob: 0.0,
            pred_drop_prob: 0.0,
            pred_default: Dur::HOUR,
            cancel_prob: 0.0,
            fail_prob: 0.0,
            delay_prob: 0.0,
            delay_max: Dur::HOUR,
            eval_panic_prob: 0.0,
            eval_hang_prob: 0.0,
            eval_error_prob: 0.0,
        }
    }

    /// Convenience: prediction noise at intensity `p` (scale with
    /// probability `p`, invert with `p/2`, drop with `p/4`), no trace
    /// faults. This is what the CLI's `--fault-pred-noise` builds.
    pub fn pred_noise(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            pred_scale_prob: p,
            pred_invert_prob: p / 2.0,
            pred_drop_prob: p / 4.0,
            ..FaultPlan::new(seed)
        }
    }

    /// Convenience: evaluator chaos at intensity `p` (panic with
    /// probability `p`, hang with `p/2`, typed error with `p/4`), no
    /// trace or prediction faults. This is what the CLI's `--fault-eval`
    /// builds.
    pub fn eval_chaos(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            eval_panic_prob: p,
            eval_hang_prob: p / 2.0,
            eval_error_prob: p / 4.0,
            ..FaultPlan::new(seed)
        }
    }

    /// True when the plan mutates the trace itself.
    pub fn has_trace_faults(&self) -> bool {
        self.cancel_prob > 0.0 || self.fail_prob > 0.0 || self.delay_prob > 0.0
    }

    /// True when the plan injects fitness-evaluator faults (consumed by
    /// the search supervisor, a no-op for the simulator itself).
    pub fn has_eval_faults(&self) -> bool {
        self.eval_panic_prob > 0.0 || self.eval_hang_prob > 0.0 || self.eval_error_prob > 0.0
    }

    /// True when the plan corrupts predictions.
    pub fn has_prediction_faults(&self) -> bool {
        self.pred_scale_prob > 0.0 || self.pred_invert_prob > 0.0 || self.pred_drop_prob > 0.0
    }

    /// Apply the trace faults, returning the mutated workload (re-sorted
    /// and renumbered via [`Workload::finalize`]) and an account of what
    /// was done. Deterministic in `seed`.
    pub fn apply_to_workload(&self, wl: &Workload) -> (Workload, FaultReport) {
        let mut rng = Rng64::seed_from_u64(self.seed ^ 0xFA17_1A17_0000_0001);
        let mut out = wl.clone();
        let mut report = FaultReport::default();
        for j in &mut out.jobs {
            if self.cancel_prob > 0.0 && rng.gen_bool(self.cancel_prob) {
                j.runtime = Dur::SECOND;
                report.cancelled += 1;
                continue;
            }
            if self.fail_prob > 0.0 && rng.gen_bool(self.fail_prob) {
                let frac = rng.gen_range_f64(0.05, 0.95);
                j.runtime = Dur(((j.runtime.seconds() as f64 * frac) as i64).max(1));
                report.failed += 1;
            }
            if self.delay_prob > 0.0 && rng.gen_bool(self.delay_prob) {
                let d = rng.gen_range_i64(1, self.delay_max.seconds().max(1));
                j.submit += Dur(d);
                report.delayed += 1;
            }
        }
        out.finalize();
        (out, report)
    }
}

/// What [`FaultPlan::apply_to_workload`] did to the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Jobs cancelled (runtime truncated to one second).
    pub cancelled: usize,
    /// Jobs failed part-way (runtime truncated to a fraction).
    pub failed: usize,
    /// Jobs whose submission was delayed.
    pub delayed: usize,
}

impl FaultReport {
    /// Total trace mutations.
    pub fn total(&self) -> usize {
        self.cancelled + self.failed + self.delayed
    }
}

/// How many estimates a [`FaultyEstimator`] corrupted, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Estimates multiplied by a random factor.
    pub scaled: u64,
    /// Estimates inverted around the pivot.
    pub inverted: u64,
    /// Estimates dropped and replaced by the default.
    pub dropped: u64,
}

impl FaultCounts {
    /// Total corrupted estimates.
    pub fn total(&self) -> u64 {
        self.scaled + self.inverted + self.dropped
    }
}

/// Wraps any estimator and corrupts its estimates according to a
/// [`FaultPlan`]. Lifecycle events pass through untouched, so learning
/// predictors keep training on the truth while the scheduler sees noise.
pub struct FaultyEstimator<E> {
    inner: E,
    plan: FaultPlan,
    rng: Rng64,
    counts: FaultCounts,
}

impl<E: RuntimeEstimator> FaultyEstimator<E> {
    /// Wrap `inner` under `plan`. The corruption stream is seeded from
    /// `plan.seed`, independently of the trace-fault stream.
    pub fn new(inner: E, plan: FaultPlan) -> FaultyEstimator<E> {
        let rng = Rng64::seed_from_u64(plan.seed ^ 0xFA17_1A17_0000_0002);
        FaultyEstimator {
            inner,
            plan,
            rng,
            counts: FaultCounts::default(),
        }
    }

    /// How many estimates have been corrupted so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Unwrap, returning the inner estimator and the corruption counts.
    pub fn into_parts(self) -> (E, FaultCounts) {
        (self.inner, self.counts)
    }
}

impl<E: RuntimeEstimator> FaultyEstimator<E> {
    fn corrupt(&mut self, base: Dur, elapsed: Dur) -> Dur {
        let mut v = base;
        if self.plan.pred_drop_prob > 0.0 && self.rng.gen_bool(self.plan.pred_drop_prob) {
            self.counts.dropped += 1;
            v = self.plan.pred_default;
        } else {
            if self.plan.pred_scale_prob > 0.0 && self.rng.gen_bool(self.plan.pred_scale_prob) {
                self.counts.scaled += 1;
                let ln_max = self.plan.pred_scale_max.max(1.0).ln();
                let factor = self.rng.gen_range_f64(-ln_max, ln_max).exp();
                v = Dur(((v.seconds() as f64 * factor) as i64).max(1));
            }
            if self.plan.pred_invert_prob > 0.0 && self.rng.gen_bool(self.plan.pred_invert_prob) {
                self.counts.inverted += 1;
                let pivot = self.plan.pred_default.seconds().max(1);
                v = Dur((pivot * pivot / v.seconds().max(1)).max(1));
            }
        }
        // Corrupted or not, the engine contract holds: positive, and
        // ahead of the elapsed run time.
        v.max(elapsed + Dur::SECOND).max(Dur::SECOND)
    }
}

impl<E: RuntimeEstimator> RuntimeEstimator for FaultyEstimator<E> {
    fn estimate(&mut self, job: &Job, now: Time, elapsed: Dur) -> Dur {
        let base = self.inner.estimate(job, now, elapsed);
        self.corrupt(base, elapsed)
    }

    fn try_estimate(&mut self, job: &Job, now: Time, elapsed: Dur) -> Result<Dur, EstimateError> {
        let base = self.inner.try_estimate(job, now, elapsed)?;
        Ok(self.corrupt(base, elapsed))
    }

    fn on_start(&mut self, job: &Job, now: Time) {
        self.inner.on_start(job, now);
    }

    fn on_complete(&mut self, job: &Job, now: Time) {
        self.inner.on_complete(job, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimLimits, Simulation};
    use crate::estimators::ActualEstimator;
    use crate::scheduler::Algorithm;
    use qpredict_workload::synthetic::toy;
    use qpredict_workload::{JobBuilder, JobId};

    #[test]
    fn disabled_plan_is_identity() {
        let wl = toy(100, 16, 40);
        let plan = FaultPlan::new(7);
        assert!(!plan.has_trace_faults() && !plan.has_prediction_faults());
        let (faulted, report) = plan.apply_to_workload(&wl);
        assert_eq!(report.total(), 0);
        assert_eq!(faulted.jobs.len(), wl.jobs.len());
        for (a, b) in wl.jobs.iter().zip(&faulted.jobs) {
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.submit, b.submit);
        }
    }

    #[test]
    fn trace_faults_are_deterministic() {
        let wl = toy(200, 16, 41);
        let plan = FaultPlan {
            cancel_prob: 0.1,
            fail_prob: 0.1,
            delay_prob: 0.2,
            ..FaultPlan::new(99)
        };
        let (a, ra) = plan.apply_to_workload(&wl);
        let (b, rb) = plan.apply_to_workload(&wl);
        assert_eq!(ra, rb);
        assert!(ra.total() > 0, "faults must actually fire");
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.runtime, y.runtime);
            assert_eq!(x.submit, y.submit);
        }
        // A different seed produces a different outcome.
        let (_, rc) = FaultPlan {
            seed: 100,
            ..plan.clone()
        }
        .apply_to_workload(&wl);
        assert_ne!(
            ra, rc,
            "distinct seeds should differ (astronomically likely)"
        );
    }

    #[test]
    fn faulted_workload_still_validates_and_simulates() {
        let wl = toy(150, 16, 42);
        let plan = FaultPlan {
            cancel_prob: 0.15,
            fail_prob: 0.15,
            delay_prob: 0.25,
            ..FaultPlan::new(5)
        };
        let (faulted, _) = plan.apply_to_workload(&wl);
        assert!(faulted.validate().is_ok());
        let run = Simulation::run_guarded(
            &faulted,
            Algorithm::Backfill,
            &mut ActualEstimator,
            SimLimits::default(),
        )
        .expect("faulted trace still schedules");
        assert!(run.violations.is_empty());
    }

    #[test]
    fn corrupted_estimates_stay_in_contract() {
        let plan = FaultPlan {
            pred_scale_prob: 0.5,
            pred_invert_prob: 0.3,
            pred_drop_prob: 0.2,
            ..FaultPlan::new(13)
        };
        let mut est = FaultyEstimator::new(ActualEstimator, plan);
        let j = JobBuilder::new().runtime(Dur(500)).build(JobId(0));
        for k in 0..500 {
            let elapsed = Dur(k % 700);
            let e = est.estimate(&j, Time(0), elapsed);
            assert!(e >= Dur::SECOND);
            assert!(e >= elapsed + Dur::SECOND);
        }
        assert!(est.counts().total() > 0, "corruption must fire");
    }

    #[test]
    fn identical_seeds_give_identical_fault_streams() {
        let wl = toy(120, 16, 43);
        let plan = FaultPlan::pred_noise(21, 0.3);
        let run = |plan: &FaultPlan| {
            let mut est = FaultyEstimator::new(ActualEstimator, plan.clone());
            let r = Simulation::run(&wl, Algorithm::Backfill, &mut est);
            (r.metrics, est.counts())
        };
        let (ma, ca) = run(&plan);
        let (mb, cb) = run(&plan);
        assert_eq!(ca, cb);
        assert!(ca.total() > 0);
        assert_eq!(ma.mean_wait, mb.mean_wait);
        assert_eq!(ma.utilization, mb.utilization);
    }

    #[test]
    fn eval_chaos_sets_only_eval_faults() {
        let plan = FaultPlan::eval_chaos(3, 0.2);
        assert!(plan.has_eval_faults());
        assert!(!plan.has_trace_faults() && !plan.has_prediction_faults());
        assert!(!FaultPlan::new(3).has_eval_faults());
        // Eval faults are invisible to the trace/prediction machinery.
        let wl = toy(60, 16, 45);
        let (faulted, report) = plan.apply_to_workload(&wl);
        assert_eq!(report.total(), 0);
        assert_eq!(faulted.jobs.len(), wl.jobs.len());
    }

    #[test]
    fn pred_noise_zero_leaves_schedule_unchanged() {
        let wl = toy(120, 16, 44);
        let plan = FaultPlan::pred_noise(21, 0.0);
        let mut est = FaultyEstimator::new(ActualEstimator, plan);
        let faulted = Simulation::run(&wl, Algorithm::Backfill, &mut est);
        let clean = Simulation::run(&wl, Algorithm::Backfill, &mut ActualEstimator);
        assert_eq!(faulted.outcomes, clean.outcomes);
        assert_eq!(est.counts().total(), 0);
    }
}
