//! The estimator interface the engine consults, plus simple built-in
//! estimators.
//!
//! The full predictor suite (template-based, Gibbons, Downey) lives in
//! `qpredict-predict`, and every [`qpredict_predict::RunTimePredictor`]
//! is a [`RuntimeEstimator`] via the blanket impl below — including the
//! memoizing [`qpredict_predict::CachingPredictor`], so a cached
//! predictor can drive the engine directly. The estimators defined here
//! are the ones the simulator itself needs for baselines and tests.

use qpredict_predict::{MaxRuntimePredictor, RunTimePredictor};
use qpredict_workload::{Dur, Job, Time, Workload};

/// Why an estimator could not supply a usable estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimateError {
    /// Human-readable reason (which source failed, and how).
    pub reason: String,
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "estimate unavailable: {}", self.reason)
    }
}

impl std::error::Error for EstimateError {}

/// Supplies run-time estimates to the scheduling algorithms and observes
/// job lifecycle events so that learning predictors can accumulate
/// history.
pub trait RuntimeEstimator {
    /// Estimate the **total** run time of `job`, which has been running
    /// for `elapsed` (zero for queued jobs). Implementations must return
    /// a positive duration, at least `elapsed + 1` for running jobs.
    fn estimate(&mut self, job: &Job, now: Time, elapsed: Dur) -> Dur;

    /// Fallible variant of [`estimate`](RuntimeEstimator::estimate), for
    /// estimators with degraded modes (fault injection, exhausted
    /// fallback chains). The default never fails; the guarded engine
    /// entry point surfaces `Err` as a simulation error instead of
    /// scheduling on garbage.
    fn try_estimate(&mut self, job: &Job, now: Time, elapsed: Dur) -> Result<Dur, EstimateError> {
        Ok(self.estimate(job, now, elapsed))
    }

    /// Called when a job begins execution.
    fn on_start(&mut self, _job: &Job, _now: Time) {}

    /// Called when a job completes; learning estimators insert history
    /// here (the paper inserts data points at completion time).
    fn on_complete(&mut self, _job: &Job, _now: Time) {}
}

/// Every run-time predictor is directly usable as the engine's
/// estimator: predictions supply the estimate (the current wall-clock is
/// irrelevant to a predictor — only the job's elapsed running time
/// matters) and completions feed the predictor's history. This is the
/// unification point of the estimation layer: the simulator, the
/// experiment drivers, and the GA's fitness loop all consult the same
/// [`RunTimePredictor`] implementations, optionally memoized by
/// [`qpredict_predict::CachingPredictor`].
impl<P: RunTimePredictor> RuntimeEstimator for P {
    fn estimate(&mut self, job: &Job, _now: Time, elapsed: Dur) -> Dur {
        self.predict(job, elapsed).estimate
    }

    fn on_complete(&mut self, job: &Job, _now: Time) {
        RunTimePredictor::on_complete(self, job);
    }
}

/// The oracle: estimates are the actual run times. Gives the paper's
/// upper-bound rows (Tables 4 and 10).
#[derive(Debug, Clone, Copy, Default)]
pub struct ActualEstimator;

impl RuntimeEstimator for ActualEstimator {
    fn estimate(&mut self, job: &Job, _now: Time, _elapsed: Dur) -> Dur {
        job.runtime
    }
}

/// Estimates every job at a fixed duration; useful in tests and as a
/// degenerate baseline.
#[derive(Debug, Clone, Copy)]
pub struct ConstantEstimator(pub Dur);

impl RuntimeEstimator for ConstantEstimator {
    fn estimate(&mut self, _job: &Job, _now: Time, elapsed: Dur) -> Dur {
        self.0.max(elapsed + Dur::SECOND)
    }
}

/// EASY-style estimates: the user-supplied maximum run time. For
/// workloads without recorded limits (the SDSC traces), per-queue maxima
/// are derived from the trace, exactly as the paper does: the longest
/// running job in each queue becomes the maximum for that queue.
///
/// The limit derivation is shared with
/// [`qpredict_predict::MaxRuntimePredictor`] — this type is the thin
/// engine-facing face of the same logic (it exists separately only so
/// the simulator's baselines need no predictor boxing).
#[derive(Debug, Clone)]
pub struct MaxRuntimeEstimator {
    limits: MaxRuntimePredictor,
}

impl MaxRuntimeEstimator {
    /// Build from a workload, deriving per-queue maxima for jobs without
    /// explicit limits.
    pub fn from_workload(w: &Workload) -> MaxRuntimeEstimator {
        MaxRuntimeEstimator {
            limits: MaxRuntimePredictor::from_workload(w),
        }
    }

    /// The estimate used for `job` before clamping by elapsed time.
    pub fn limit_for(&self, job: &Job) -> Dur {
        self.limits.limit_for(job)
    }
}

impl RuntimeEstimator for MaxRuntimeEstimator {
    fn estimate(&mut self, job: &Job, _now: Time, elapsed: Dur) -> Dur {
        self.limit_for(job).max(elapsed + Dur::SECOND)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::{Characteristic, JobBuilder, JobId};

    #[test]
    fn actual_returns_runtime() {
        let j = JobBuilder::new().runtime(Dur(123)).build(JobId(0));
        assert_eq!(ActualEstimator.estimate(&j, Time(0), Dur::ZERO), Dur(123));
    }

    #[test]
    fn constant_clamps_to_elapsed() {
        let j = JobBuilder::new().build(JobId(0));
        let mut e = ConstantEstimator(Dur(100));
        assert_eq!(e.estimate(&j, Time(0), Dur::ZERO), Dur(100));
        assert_eq!(e.estimate(&j, Time(0), Dur(500)), Dur(501));
    }

    #[test]
    fn maxrt_uses_explicit_limit() {
        let mut w = Workload::new("t", 8);
        w.jobs = vec![JobBuilder::new()
            .runtime(Dur(50))
            .max_runtime(Dur(600))
            .build(JobId(0))];
        w.finalize();
        let mut e = MaxRuntimeEstimator::from_workload(&w);
        assert_eq!(e.estimate(&w.jobs[0], Time(0), Dur::ZERO), Dur(600));
    }

    #[test]
    fn maxrt_derives_queue_maxima() {
        let mut w = Workload::new("t", 8);
        let q = w.symbols.intern("q16s");
        w.jobs = vec![
            JobBuilder::new()
                .with(Characteristic::Queue, q)
                .runtime(Dur(300))
                .build(JobId(0)),
            JobBuilder::new()
                .with(Characteristic::Queue, q)
                .runtime(Dur(100))
                .submit(Time(1))
                .build(JobId(1)),
        ];
        w.finalize();
        let mut e = MaxRuntimeEstimator::from_workload(&w);
        // Both jobs in queue q estimate at the queue's longest runtime.
        assert_eq!(e.estimate(&w.jobs[1], Time(0), Dur::ZERO), Dur(300));
    }

    #[test]
    fn maxrt_running_job_exceeding_limit() {
        let mut w = Workload::new("t", 8);
        w.jobs = vec![JobBuilder::new()
            .runtime(Dur(50))
            .max_runtime(Dur(60))
            .build(JobId(0))];
        w.finalize();
        let mut e = MaxRuntimeEstimator::from_workload(&w);
        // Job has run 100 s, past its 60 s limit: estimate must stay ahead
        // of reality.
        assert_eq!(e.estimate(&w.jobs[0], Time(0), Dur(100)), Dur(101));
    }
}
