#![warn(missing_docs)]

//! Discrete-event simulator of a space-shared parallel machine.
//!
//! Models the scheduling environment of the paper: jobs arrive over time,
//! wait in a queue, and run to completion on a fixed number of nodes
//! (space sharing, no preemption). Three scheduling algorithms are
//! provided, matching Section 2.1 of the paper:
//!
//! * **FCFS** — the job at the head of the arrival-ordered queue starts
//!   whenever enough nodes are free;
//! * **LWF** (least-work-first) — like FCFS but the queue is ordered by
//!   estimated work (`nodes x estimated run time`), so the scheduler
//!   consults a [`RuntimeEstimator`];
//! * **Backfill** — conservative backfill: jobs are examined in arrival
//!   order; a job starts if it can do so without delaying any job ahead of
//!   it, otherwise nodes are *reserved* for it at the earliest possible
//!   time using the estimator's run-time predictions.
//!
//! The engine is deterministic: identical inputs produce identical
//! schedules. All decisions that could tie are broken by arrival sequence
//! numbers.

pub mod engine;
pub mod estimators;
pub mod fault;
pub mod metrics;
pub mod profile;
pub mod scheduler;
pub mod tests_support;
pub mod timeline;

pub use engine::{
    GuardedRun, NoHooks, SimError, SimHooks, SimLimits, SimResult, Simulation, Snapshot,
};
pub use estimators::{
    ActualEstimator, ConstantEstimator, EstimateError, MaxRuntimeEstimator, RuntimeEstimator,
};
pub use fault::{FaultCounts, FaultPlan, FaultReport, FaultyEstimator};
pub use metrics::{JobOutcome, Metrics};
pub use profile::Profile;
pub use qpredict_predict::CacheStats;
pub use scheduler::{schedule_pass, schedule_pass_reporting, Algorithm, QueueEntry, RunningView};
pub use timeline::{timeline_of, Timeline};
