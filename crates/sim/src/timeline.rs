//! Schedule timelines: turn a completed simulation into an inspectable
//! occupancy record.
//!
//! A [`Timeline`] holds the `(start, finish, nodes)` interval of every
//! job plus the machine's piecewise-constant node occupancy. It backs
//! schedule validation (no instant may exceed the machine), fragmentation
//! diagnostics, and CSV export for external plotting.

use qpredict_workload::{JobId, Time, Workload};

use crate::metrics::JobOutcome;

/// Node occupancy over time for one completed schedule.
#[derive(Debug, Clone)]
pub struct Timeline {
    machine_nodes: u32,
    /// `(instant, nodes_in_use_from_here)` breakpoints, time-ordered.
    steps: Vec<(Time, u32)>,
    /// Job intervals in job-id order: `(id, start, finish, nodes)`.
    jobs: Vec<(JobId, Time, Time, u32)>,
}

impl Timeline {
    /// Build the timeline of a completed schedule.
    pub fn build(w: &Workload, outcomes: &[JobOutcome]) -> Timeline {
        let mut events: Vec<(Time, i64)> = Vec::with_capacity(outcomes.len() * 2);
        let mut jobs = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            let nodes = w.job(o.id).nodes;
            jobs.push((o.id, o.start, o.finish, nodes));
            events.push((o.start, nodes as i64));
            events.push((o.finish, -(nodes as i64)));
        }
        // Process departures before arrivals at equal instants.
        events.sort_by_key(|&(t, d)| (t, d));
        let mut steps: Vec<(Time, u32)> = Vec::new();
        let mut used = 0i64;
        for (t, d) in events {
            used += d;
            debug_assert!(used >= 0);
            match steps.last_mut() {
                Some((lt, lu)) if *lt == t => *lu = used as u32,
                _ => steps.push((t, used as u32)),
            }
        }
        Timeline {
            machine_nodes: w.machine_nodes,
            steps,
            jobs,
        }
    }

    /// Nodes in use at instant `t` (0 before the first event).
    pub fn used_at(&self, t: Time) -> u32 {
        match self.steps.binary_search_by_key(&t, |&(st, _)| st) {
            Ok(i) => self.steps[i].1,
            Err(0) => 0,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// The highest occupancy reached.
    pub fn peak(&self) -> u32 {
        self.steps.iter().map(|&(_, u)| u).max().unwrap_or(0)
    }

    /// True when occupancy never exceeds the machine size (the schedule
    /// is feasible).
    pub fn is_feasible(&self) -> bool {
        self.peak() <= self.machine_nodes
    }

    /// Total idle node-seconds over `[from, to)` — the fragmentation a
    /// better packing could in principle recover.
    pub fn idle_node_seconds(&self, from: Time, to: Time) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut idle = 0.0;
        let mut cursor = from;
        let mut used = self.used_at(from);
        for &(t, u) in self.steps.iter().filter(|&&(t, _)| t > from && t < to) {
            idle += (self.machine_nodes.saturating_sub(used)) as f64 * (t - cursor).as_secs_f64();
            cursor = t;
            used = u;
        }
        idle += (self.machine_nodes.saturating_sub(used)) as f64 * (to - cursor).as_secs_f64();
        idle
    }

    /// Mean occupancy (nodes) over `[from, to)`.
    pub fn mean_occupancy(&self, from: Time, to: Time) -> f64 {
        let span = (to - from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let idle = self.idle_node_seconds(from, to);
        self.machine_nodes as f64 - idle / span
    }

    /// Export the job intervals as CSV (`job,start,finish,nodes`), for
    /// Gantt plotting with external tools.
    pub fn jobs_csv(&self) -> String {
        let mut out = String::with_capacity(self.jobs.len() * 24 + 32);
        out.push_str("job,start,finish,nodes\n");
        for &(id, s, f, n) in &self.jobs {
            out.push_str(&format!("{},{},{},{}\n", id.0, s.seconds(), f.seconds(), n));
        }
        out
    }

    /// Export the occupancy steps as CSV (`time,nodes_in_use`).
    pub fn occupancy_csv(&self) -> String {
        let mut out = String::with_capacity(self.steps.len() * 16 + 24);
        out.push_str("time,nodes_in_use\n");
        for &(t, u) in &self.steps {
            out.push_str(&format!("{},{}\n", t.seconds(), u));
        }
        out
    }

    /// Number of occupancy breakpoints.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

/// Convenience: simulate and return the timeline in one call.
pub fn timeline_of(
    w: &Workload,
    alg: crate::scheduler::Algorithm,
    est: &mut dyn crate::estimators::RuntimeEstimator,
) -> (Timeline, crate::engine::SimResult) {
    let result = crate::engine::Simulation::run(w, alg, est);
    (Timeline::build(w, &result.outcomes), result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::estimators::ActualEstimator;
    use crate::scheduler::Algorithm;
    use qpredict_workload::{synthetic, Dur, JobBuilder};

    fn outcome(id: u32, s: i64, f: i64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: Time(s),
            start: Time(s),
            finish: Time(f),
        }
    }

    fn wl(jobs: &[(u32, i64)]) -> Workload {
        let mut w = Workload::new("t", 10);
        w.jobs = jobs
            .iter()
            .enumerate()
            .map(|(i, &(n, rt))| {
                JobBuilder::new()
                    .nodes(n)
                    .runtime(Dur(rt))
                    .build(JobId(i as u32))
            })
            .collect();
        w.finalize();
        w
    }

    #[test]
    fn occupancy_steps() {
        let w = wl(&[(4, 100), (3, 50)]);
        let t = Timeline::build(&w, &[outcome(0, 0, 100), outcome(1, 0, 50)]);
        assert_eq!(t.used_at(Time(0)), 7);
        assert_eq!(t.used_at(Time(49)), 7);
        assert_eq!(t.used_at(Time(50)), 4);
        assert_eq!(t.used_at(Time(100)), 0);
        assert_eq!(t.peak(), 7);
        assert!(t.is_feasible());
    }

    #[test]
    fn idle_and_mean_occupancy() {
        let w = wl(&[(10, 100)]);
        let t = Timeline::build(&w, &[outcome(0, 0, 100)]);
        // Fully busy for [0,100): zero idle.
        assert_eq!(t.idle_node_seconds(Time(0), Time(100)), 0.0);
        // [0, 200): 100 s of a 10-node machine idle.
        assert_eq!(t.idle_node_seconds(Time(0), Time(200)), 1000.0);
        assert!((t.mean_occupancy(Time(0), Time(200)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn csv_exports() {
        let w = wl(&[(4, 100)]);
        let t = Timeline::build(&w, &[outcome(0, 5, 105)]);
        let jobs = t.jobs_csv();
        assert!(jobs.starts_with("job,start,finish,nodes\n"));
        assert!(jobs.contains("0,5,105,4\n"));
        let occ = t.occupancy_csv();
        assert!(occ.contains("5,4\n"));
        assert!(occ.contains("105,0\n"));
    }

    #[test]
    fn real_schedules_are_feasible() {
        let w = synthetic::toy(400, 32, 77);
        for alg in Algorithm::ALL {
            let r = Simulation::run(&w, alg, &mut ActualEstimator);
            let t = Timeline::build(&w, &r.outcomes);
            assert!(t.is_feasible(), "{alg} oversubscribed: peak {}", t.peak());
            // Mean occupancy over the makespan must equal utilization x
            // machine.
            let first = r.outcomes.iter().map(|o| o.submit).min().unwrap();
            let last = r.outcomes.iter().map(|o| o.finish).max().unwrap();
            let occ = t.mean_occupancy(first, last);
            let expect = r.metrics.utilization * w.machine_nodes as f64;
            assert!(
                (occ - expect).abs() < 0.05 * w.machine_nodes as f64,
                "{alg}: occupancy {occ:.2} vs util-derived {expect:.2}"
            );
        }
    }

    #[test]
    fn timeline_of_helper() {
        let w = synthetic::toy(100, 16, 78);
        let (t, r) = timeline_of(&w, Algorithm::Backfill, &mut ActualEstimator);
        assert_eq!(r.outcomes.len(), 100);
        assert!(t.is_feasible());
        assert!(t.step_count() > 0);
    }

    #[test]
    fn empty_timeline() {
        let w = wl(&[]);
        let t = Timeline::build(&w, &[]);
        assert_eq!(t.peak(), 0);
        assert!(t.is_feasible());
        assert_eq!(t.used_at(Time(100)), 0);
    }
}
