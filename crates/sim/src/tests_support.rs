//! Shared helpers for the crate's integration/property tests.
//!
//! Kept inside the library (behind `cfg(feature = ...)`-free plain code)
//! so both unit and integration tests can build consistent inputs.

use qpredict_workload::{Dur, JobBuilder, JobId, Time, Workload};

/// Build a workload on a machine of `machine_nodes` nodes from
/// `(submit, nodes, runtime)` triples; node counts are clamped to the
/// machine.
pub fn workload_from_triples(machine_nodes: u32, jobs: &[(i64, u32, i64)]) -> Workload {
    let mut w = Workload::new("test", machine_nodes);
    w.jobs = jobs
        .iter()
        .enumerate()
        .map(|(i, &(s, n, r))| {
            JobBuilder::new()
                .submit(Time(s.max(0)))
                .nodes(n.clamp(1, machine_nodes))
                .runtime(Dur(r.max(1)))
                .build(JobId(i as u32))
        })
        .collect();
    w.finalize();
    w
}
