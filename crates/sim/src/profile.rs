//! Node-availability profile for conservative backfill.
//!
//! A [`Profile`] tracks how many nodes are free as a function of time,
//! given the (predicted) completion times of running jobs and the
//! reservations already granted to queued jobs. It answers the two
//! questions backfill asks: *what is the earliest time a `(nodes, dur)`
//! request fits?* and *commit that reservation*.

use qpredict_workload::{Dur, Time};

/// One step of the piecewise-constant free-node function: `free` nodes are
/// available from `start` until the next segment's start (the last segment
/// extends to infinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    start: Time,
    free: u32,
}

/// Piecewise-constant free-node capacity over `[now, infinity)`.
#[derive(Debug, Clone)]
pub struct Profile {
    machine_nodes: u32,
    segments: Vec<Segment>,
}

impl Profile {
    /// Build a profile for a machine with `machine_nodes` nodes, where
    /// `running` lists `(nodes, predicted_end)` for each currently running
    /// job. Predicted ends at or before `now` are treated as `now + 1 s`
    /// (the job is demonstrably still running).
    ///
    /// An oversubscribed `running` set (more nodes in use than the
    /// machine has) trips a debug assertion; release builds clamp and
    /// continue. Guarded callers that must *observe* the violation
    /// instead of asserting use [`Profile::new_reporting`].
    pub fn new(machine_nodes: u32, now: Time, running: &[(u32, Time)]) -> Profile {
        Profile::new_reporting(machine_nodes, now, running, None)
    }

    /// Like [`Profile::new`], but when `violations` is provided an
    /// oversubscribed `running` set is *reported* into it (the guarded
    /// engine's invariant-violation channel) rather than debug-asserted:
    /// fault injection and corrupt traces can legitimately hand the
    /// backfill pass more running nodes than the machine has, and the
    /// wrong free-node profile that results must be visible, not silent.
    pub fn new_reporting(
        machine_nodes: u32,
        now: Time,
        running: &[(u32, Time)],
        violations: Option<&mut Vec<String>>,
    ) -> Profile {
        let mut events: Vec<(Time, u32)> = running
            .iter()
            .map(|&(nodes, end)| (end.max(now + Dur::SECOND), nodes))
            .collect();
        events.sort_unstable_by_key(|&(t, _)| t);
        let used_now: u64 = running.iter().map(|&(n, _)| n as u64).sum();
        if used_now > machine_nodes as u64 {
            match violations {
                Some(v) => {
                    qpredict_obs::counter_add("sim.profile_oversubscribed", 1);
                    v.push(format!(
                        "profile oversubscribed at t={}: running jobs use {used_now} of \
                         {machine_nodes} nodes; free-node profile clamped to zero",
                        now.seconds()
                    ));
                }
                None => debug_assert!(
                    false,
                    "running jobs use {used_now} of {machine_nodes} nodes"
                ),
            }
        }
        let mut segments = Vec::with_capacity(events.len() + 1);
        let mut free = machine_nodes.saturating_sub(used_now.min(u32::MAX as u64) as u32);
        segments.push(Segment { start: now, free });
        for (t, nodes) in events {
            // The `min` only matters after an oversubscribed (clamped)
            // start: completions then release more nodes than the
            // machine has, and the profile must not promise them.
            free = free.saturating_add(nodes).min(machine_nodes);
            match segments.last_mut() {
                Some(s) if s.start == t => s.free = free,
                _ => segments.push(Segment { start: t, free }),
            }
        }
        Profile {
            machine_nodes,
            segments,
        }
    }

    /// The machine size this profile covers.
    pub fn machine_nodes(&self) -> u32 {
        self.machine_nodes
    }

    /// Free nodes at instant `t` (which must be at or after the profile's
    /// start).
    pub fn free_at(&self, t: Time) -> u32 {
        match self.segments.binary_search_by_key(&t, |s| s.start) {
            Ok(i) => self.segments[i].free,
            Err(0) => self.segments[0].free, // before start: clamp
            Err(i) => self.segments[i - 1].free,
        }
    }

    /// Earliest time `t` at or after the profile start such that at least
    /// `nodes` nodes are free throughout `[t, t + dur)`.
    ///
    /// Always succeeds for `nodes <= machine_nodes`, because the final
    /// segment has every reserved job finished eventually.
    ///
    /// # Panics
    /// Panics if `nodes` exceeds the machine size or `dur` is not
    /// positive.
    pub fn earliest_fit(&self, nodes: u32, dur: Dur) -> Time {
        assert!(
            nodes <= self.machine_nodes,
            "request for {nodes} nodes exceeds machine of {}",
            self.machine_nodes
        );
        assert!(dur.is_positive(), "duration must be positive");
        let n = self.segments.len();
        let mut i = 0;
        while i < n {
            if self.segments[i].free < nodes {
                i += 1;
                continue;
            }
            // Candidate anchor: this segment's start. Check the window.
            let anchor = self.segments[i].start;
            let end = anchor + dur;
            let mut ok = true;
            let mut j = i;
            while j < n && self.segments[j].start < end {
                if self.segments[j].free < nodes {
                    ok = false;
                    // Restart the scan after the blocking segment.
                    i = j;
                    break;
                }
                j += 1;
            }
            if ok {
                return anchor;
            }
            i += 1;
        }
        // The last segment always has full capacity free in a well-formed
        // profile (every job ends); fall back to its start.
        self.segments[n - 1].start
    }

    /// Subtract `nodes` from the free capacity over `[t, t + dur)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the reservation oversubscribes any
    /// affected segment — callers must only reserve windows returned by
    /// [`Profile::earliest_fit`].
    pub fn reserve(&mut self, t: Time, dur: Dur, nodes: u32) {
        assert!(dur.is_positive(), "duration must be positive");
        let end = t + dur;
        self.split_at(t);
        self.split_at(end);
        for s in &mut self.segments {
            if s.start >= t && s.start < end {
                debug_assert!(
                    s.free >= nodes,
                    "reservation of {nodes} nodes oversubscribes segment with {} free",
                    s.free
                );
                s.free = s.free.saturating_sub(nodes);
            }
        }
    }

    /// Ensure a segment boundary exists at `t` (no-op if `t` precedes the
    /// profile start or a boundary already exists).
    fn split_at(&mut self, t: Time) {
        match self.segments.binary_search_by_key(&t, |s| s.start) {
            Ok(_) => {}
            Err(0) => {}
            Err(i) => {
                let free = self.segments[i - 1].free;
                self.segments.insert(i, Segment { start: t, free });
            }
        }
    }

    /// Number of segments (for tests and diagnostics).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Verify internal invariants: segments strictly ordered, frees within
    /// the machine size. Returns the first violation.
    pub fn check(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("profile has no segments".into());
        }
        for w in self.segments.windows(2) {
            if w[0].start >= w[1].start {
                return Err(format!(
                    "segments out of order: {:?} then {:?}",
                    w[0].start, w[1].start
                ));
            }
        }
        for s in &self.segments {
            if s.free > self.machine_nodes {
                return Err(format!(
                    "segment at {:?} has {} free on a {}-node machine",
                    s.start, s.free, self.machine_nodes
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> Time {
        Time(s)
    }

    #[test]
    fn empty_machine_is_fully_free() {
        let p = Profile::new(64, t(0), &[]);
        assert_eq!(p.free_at(t(0)), 64);
        assert_eq!(p.free_at(t(1_000_000)), 64);
        assert_eq!(p.earliest_fit(64, Dur(100)), t(0));
        p.check().unwrap();
    }

    #[test]
    fn running_jobs_occupy_until_pred_end() {
        let p = Profile::new(10, t(0), &[(4, t(100)), (3, t(50))]);
        assert_eq!(p.free_at(t(0)), 3);
        assert_eq!(p.free_at(t(49)), 3);
        assert_eq!(p.free_at(t(50)), 6);
        assert_eq!(p.free_at(t(100)), 10);
        p.check().unwrap();
    }

    #[test]
    fn late_pred_end_clamped_to_future() {
        // A running job whose predicted end has already passed still holds
        // its nodes for one more second.
        let p = Profile::new(10, t(100), &[(4, t(50))]);
        assert_eq!(p.free_at(t(100)), 6);
        assert_eq!(p.free_at(t(101)), 10);
    }

    #[test]
    fn earliest_fit_waits_for_capacity() {
        let p = Profile::new(10, t(0), &[(8, t(100))]);
        // 2 nodes fit immediately; 5 must wait for the running job.
        assert_eq!(p.earliest_fit(2, Dur(50)), t(0));
        assert_eq!(p.earliest_fit(5, Dur(50)), t(100));
    }

    #[test]
    fn earliest_fit_requires_window_not_instant() {
        let mut p = Profile::new(10, t(0), &[]);
        // Block [50, 150) with 9 nodes: 5-node jobs cannot overlap it.
        p.reserve(t(50), Dur(100), 9);
        // A 5-node 40s job fits at 0 (window [0,40) clear).
        assert_eq!(p.earliest_fit(5, Dur(40)), t(0));
        // A 5-node 60s job would overlap the blocked window; it must wait
        // until 150.
        assert_eq!(p.earliest_fit(5, Dur(60)), t(150));
    }

    #[test]
    fn reserve_subtracts_and_restores() {
        let mut p = Profile::new(10, t(0), &[]);
        p.reserve(t(20), Dur(30), 7);
        assert_eq!(p.free_at(t(19)), 10);
        assert_eq!(p.free_at(t(20)), 3);
        assert_eq!(p.free_at(t(49)), 3);
        assert_eq!(p.free_at(t(50)), 10);
        p.check().unwrap();
    }

    #[test]
    fn stacked_reservations() {
        let mut p = Profile::new(10, t(0), &[]);
        p.reserve(t(0), Dur(100), 4);
        p.reserve(t(50), Dur(100), 4);
        assert_eq!(p.free_at(t(0)), 6);
        assert_eq!(p.free_at(t(50)), 2);
        assert_eq!(p.free_at(t(100)), 6);
        assert_eq!(p.free_at(t(150)), 10);
        // 5 nodes for 10s fit at 0 (6 free until 50); 5 nodes for 60s
        // would overlap [50,100) where only 2 are free, so they wait
        // until 100.
        assert_eq!(p.earliest_fit(5, Dur(10)), t(0));
        assert_eq!(p.earliest_fit(5, Dur(60)), t(100));
    }

    #[test]
    #[should_panic(expected = "exceeds machine")]
    fn oversized_request_panics() {
        Profile::new(10, t(0), &[]).earliest_fit(11, Dur(1));
    }

    #[test]
    fn oversubscription_is_reported_not_hidden() {
        // 12 running nodes on a 10-node machine: the reporting
        // constructor must surface the violation and build a profile
        // that promises nothing until jobs end — and never more than
        // the machine.
        let mut violations = Vec::new();
        let p = Profile::new_reporting(10, t(0), &[(8, t(100)), (4, t(50))], Some(&mut violations));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("oversubscribed"), "{violations:?}");
        assert!(violations[0].contains("12 of 10"), "{violations:?}");
        assert_eq!(p.free_at(t(0)), 0);
        assert_eq!(p.free_at(t(50)), 4);
        assert_eq!(p.free_at(t(100)), 10, "free capped at machine size");
        p.check().unwrap();
    }

    #[test]
    fn healthy_profile_reports_nothing() {
        let mut violations = Vec::new();
        let p = Profile::new_reporting(10, t(0), &[(4, t(100))], Some(&mut violations));
        assert!(violations.is_empty());
        assert_eq!(p.free_at(t(0)), 6);
    }

    #[test]
    fn fit_then_reserve_never_oversubscribes() {
        // Randomized smoke: every reservation placed at earliest_fit keeps
        // the profile valid.
        use qpredict_workload::Rng64;
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..50 {
            let mut p = Profile::new(32, t(0), &[(10, t(40)), (6, t(90))]);
            for _ in 0..40 {
                let nodes = 1 + rng.gen_index(32) as u32;
                let dur = Dur(rng.gen_range_i64(1, 200));
                let at = p.earliest_fit(nodes, dur);
                p.reserve(at, dur, nodes);
                p.check().unwrap();
            }
        }
    }
}
