//! Schedule outcomes and the performance metrics the paper reports
//! (utilization, mean wait time) plus standard extras.

use qpredict_predict::CacheStats;
use qpredict_workload::{Dur, JobId, Time, Workload};

/// When one job was submitted, started, and finished in a completed
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutcome {
    /// Which job.
    pub id: JobId,
    /// Submission instant (copied from the trace).
    pub submit: Time,
    /// Start instant decided by the scheduler.
    pub start: Time,
    /// Completion instant (`start + actual runtime`).
    pub finish: Time,
}

impl JobOutcome {
    /// Queue wait: `start - submit`.
    pub fn wait(&self) -> Dur {
        self.start - self.submit
    }
}

/// Aggregate schedule quality.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Number of jobs that completed.
    pub n_jobs: usize,
    /// Mean queue wait.
    pub mean_wait: Dur,
    /// Median queue wait.
    pub median_wait: Dur,
    /// Largest queue wait.
    pub max_wait: Dur,
    /// Machine utilization over `[first submit, last finish]`:
    /// `total work / (machine_nodes x makespan)`.
    pub utilization: f64,
    /// Machine utilization over the *arrival window*
    /// `[first submit, last submit]`: busy node-seconds inside the window
    /// divided by capacity. This excludes the end-of-trace drain tail and
    /// matches the paper's reporting, where utilization is essentially
    /// identical across schedulers and predictors for a given workload.
    pub utilization_window: f64,
    /// `last finish - first submit`.
    pub makespan: Dur,
    /// Mean bounded slowdown with the conventional 10-second bound:
    /// `mean(max(1, (wait + rt) / max(rt, 10)))`.
    pub mean_bounded_slowdown: f64,
    /// Total work in node-seconds.
    pub total_work_node_s: f64,
    /// Estimate-cache hit/miss/invalidation counters, when the run was
    /// driven through a [`qpredict_predict::CachingPredictor`]. `None`
    /// for runs that never consulted the caching layer. Purely
    /// observability: two otherwise-identical schedules may differ here.
    pub estimate_cache: Option<CacheStats>,
}

impl Metrics {
    /// Compute metrics from outcomes against the workload that produced
    /// them. Returns zeros for an empty outcome set.
    pub fn from_outcomes(w: &Workload, outcomes: &[JobOutcome]) -> Metrics {
        if outcomes.is_empty() {
            return Metrics {
                n_jobs: 0,
                mean_wait: Dur::ZERO,
                median_wait: Dur::ZERO,
                max_wait: Dur::ZERO,
                utilization: 0.0,
                utilization_window: 0.0,
                makespan: Dur::ZERO,
                mean_bounded_slowdown: 0.0,
                total_work_node_s: 0.0,
                estimate_cache: None,
            };
        }
        let mut waits: Vec<i64> = outcomes.iter().map(|o| o.wait().seconds()).collect();
        waits.sort_unstable();
        let sum_wait: i64 = waits.iter().sum();
        let median = if waits.len() % 2 == 1 {
            waits[waits.len() / 2]
        } else {
            (waits[waits.len() / 2 - 1] + waits[waits.len() / 2]) / 2
        };
        let first_submit = outcomes.iter().map(|o| o.submit).min().expect("non-empty");
        let last_finish = outcomes.iter().map(|o| o.finish).max().expect("non-empty");
        let makespan = last_finish - first_submit;
        let total_work: f64 = outcomes
            .iter()
            .map(|o| {
                let job = w.job(o.id);
                job.nodes as f64 * (o.finish - o.start).seconds() as f64
            })
            .sum();
        let utilization = if makespan.is_positive() {
            total_work / (w.machine_nodes as f64 * makespan.seconds() as f64)
        } else {
            0.0
        };
        let last_submit = outcomes.iter().map(|o| o.submit).max().expect("non-empty");
        let window = last_submit - first_submit;
        let utilization_window = if window.is_positive() {
            let busy: f64 = outcomes
                .iter()
                .map(|o| {
                    let s = o.start.max(first_submit);
                    let e = o.finish.min(last_submit);
                    let overlap = (e - s).seconds().max(0) as f64;
                    w.job(o.id).nodes as f64 * overlap
                })
                .sum();
            busy / (w.machine_nodes as f64 * window.seconds() as f64)
        } else {
            0.0
        };
        let bsld: f64 = outcomes
            .iter()
            .map(|o| {
                let rt = (o.finish - o.start).seconds().max(1) as f64;
                let wait = o.wait().seconds() as f64;
                ((wait + rt) / rt.max(10.0)).max(1.0)
            })
            .sum::<f64>()
            / outcomes.len() as f64;
        Metrics {
            n_jobs: outcomes.len(),
            mean_wait: Dur(sum_wait / outcomes.len() as i64),
            median_wait: Dur(median),
            max_wait: Dur(*waits.last().expect("non-empty")),
            utilization,
            utilization_window,
            makespan,
            mean_bounded_slowdown: bsld,
            total_work_node_s: total_work,
            estimate_cache: None,
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs  util {:.2}%  mean wait {:.2} min  median wait {:.2} min  bsld {:.1}",
            self.n_jobs,
            self.utilization * 100.0,
            self.mean_wait.minutes(),
            self.median_wait.minutes(),
            self.mean_bounded_slowdown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::JobBuilder;

    fn wl2() -> Workload {
        let mut w = Workload::new("t", 10);
        w.jobs = vec![
            JobBuilder::new()
                .nodes(5)
                .runtime(Dur(100))
                .submit(Time(0))
                .build(JobId(0)),
            JobBuilder::new()
                .nodes(5)
                .runtime(Dur(100))
                .submit(Time(0))
                .build(JobId(1)),
        ];
        w.finalize();
        w
    }

    #[test]
    fn empty_outcomes() {
        let m = Metrics::from_outcomes(&wl2(), &[]);
        assert_eq!(m.n_jobs, 0);
        assert_eq!(m.utilization, 0.0);
    }

    #[test]
    fn waits_and_utilization() {
        let w = wl2();
        let outcomes = vec![
            JobOutcome {
                id: JobId(0),
                submit: Time(0),
                start: Time(0),
                finish: Time(100),
            },
            JobOutcome {
                id: JobId(1),
                submit: Time(0),
                start: Time(100),
                finish: Time(200),
            },
        ];
        let m = Metrics::from_outcomes(&w, &outcomes);
        assert_eq!(m.mean_wait, Dur(50));
        assert_eq!(m.median_wait, Dur(50));
        assert_eq!(m.max_wait, Dur(100));
        assert_eq!(m.makespan, Dur(200));
        // work = 2 * 5 * 100 = 1000 node-s over 10 nodes * 200 s
        assert!((m.utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_utilization_excludes_drain() {
        let w = wl2();
        // Arrivals at 0 and 0 (window length 0 -> degenerate), so build a
        // custom pair: submits at 0 and 100, both 5 nodes x 100 s.
        let mut w2 = Workload::new("t", 10);
        w2.jobs = vec![
            JobBuilder::new()
                .nodes(5)
                .runtime(Dur(100))
                .submit(Time(0))
                .build(JobId(0)),
            JobBuilder::new()
                .nodes(5)
                .runtime(Dur(100))
                .submit(Time(100))
                .build(JobId(1)),
        ];
        w2.finalize();
        let outcomes = vec![
            JobOutcome {
                id: JobId(0),
                submit: Time(0),
                start: Time(0),
                finish: Time(100),
            },
            JobOutcome {
                id: JobId(1),
                submit: Time(100),
                start: Time(100),
                finish: Time(200),
            },
        ];
        let m = Metrics::from_outcomes(&w2, &outcomes);
        // Window = [0, 100]: only job 0 is busy inside it (5 nodes x 100 s
        // of 10 x 100 capacity) -> 50%. The drain (job 1) is excluded.
        assert!((m.utilization_window - 0.5).abs() < 1e-12);
        // Makespan utilization counts both jobs over 200 s.
        assert!((m.utilization - 0.5).abs() < 1e-12);
        let _ = w;
    }

    #[test]
    fn bounded_slowdown_floors() {
        let w = wl2();
        let outcomes = vec![JobOutcome {
            id: JobId(0),
            submit: Time(0),
            start: Time(0),
            finish: Time(100),
        }];
        let m = Metrics::from_outcomes(&w, &outcomes);
        assert!((m.mean_bounded_slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wait_helper() {
        let o = JobOutcome {
            id: JobId(0),
            submit: Time(5),
            start: Time(30),
            finish: Time(40),
        };
        assert_eq!(o.wait(), Dur(25));
    }
}
