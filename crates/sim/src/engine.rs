//! The trace-driven simulation engine.
//!
//! [`Simulation::run`] replays a [`Workload`] against one scheduling
//! algorithm, consulting a [`RuntimeEstimator`] exactly where the paper's
//! schedulers consult run-time predictions: LWF re-estimates all waiting
//! jobs at every scheduling attempt, backfill re-estimates all running and
//! waiting jobs at every scheduling attempt, FCFS never estimates.
//!
//! A [`SimHooks`] implementation can observe submissions (receiving a
//! [`Snapshot`] of the system state — this is how `qpredict-core` runs its
//! nested wait-time forecasts), starts, and completions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use qpredict_workload::{Dur, Job, JobId, Time, Workload};

use crate::estimators::RuntimeEstimator;
use crate::metrics::{JobOutcome, Metrics};
use crate::scheduler::{schedule_pass_reporting, Algorithm, QueueEntry, RunningView};

/// A point-in-time view of the simulated system, captured after a
/// submission is enqueued and before the scheduler reacts to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Capture instant.
    pub now: Time,
    /// Nodes not occupied by running jobs.
    pub free_nodes: u32,
    /// Running jobs as `(id, start_time)`, in start order.
    pub running: Vec<(JobId, Time)>,
    /// Queued jobs as `(id, arrival_seq)`, in arrival order. Includes the
    /// job whose submission triggered the capture (always last).
    pub queued: Vec<(JobId, u64)>,
}

/// Observer of simulation events. All methods default to no-ops.
pub trait SimHooks {
    /// A job was enqueued; `snap` is the state including it, before the
    /// scheduler has reacted.
    fn after_submit(&mut self, _snap: &Snapshot, _job: &Job) {}
    /// A job started.
    fn on_job_start(&mut self, _job: &Job, _now: Time) {}
    /// A job completed.
    fn on_job_complete(&mut self, _job: &Job, _now: Time) {}
    /// Return true to receive [`SimHooks::before_schedule`] calls (they
    /// cost a snapshot per scheduling attempt, so they are opt-in).
    fn wants_schedule_snapshots(&self) -> bool {
        false
    }
    /// The scheduler is about to attempt to start jobs (a job was
    /// enqueued or finished and the queue is non-empty). Only called when
    /// [`SimHooks::wants_schedule_snapshots`] returns true.
    fn before_schedule(&mut self, _snap: &Snapshot) {}
}

/// The trivial observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl SimHooks for NoHooks {}

/// Result of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-job outcome, indexed by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregate schedule quality.
    pub metrics: Metrics,
}

/// Why a guarded simulation aborted instead of producing a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while jobs were still waiting: the
    /// schedule can never make progress (e.g. a job that fits no
    /// machine state).
    Stalled {
        /// Jobs still queued when progress stopped.
        queued: usize,
        /// Simulated instant at which the stall was detected.
        at: Time,
    },
    /// The step budget was exhausted before the trace completed — the
    /// watchdog against a livelocked engine.
    BudgetExhausted {
        /// Steps executed before giving up.
        steps: u64,
    },
    /// The estimator reported failure and the engine was asked not to
    /// schedule on garbage.
    EstimateFailed {
        /// Job whose estimate failed.
        job: JobId,
        /// The estimator's reason.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled { queued, at } => {
                write!(
                    f,
                    "simulation stalled at t={} with {queued} jobs queued",
                    at.seconds()
                )
            }
            SimError::BudgetExhausted { steps } => {
                write!(f, "simulation exceeded its step budget of {steps}")
            }
            SimError::EstimateFailed { job, reason } => {
                write!(f, "estimate failed for job {}: {reason}", job.0)
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Budgets for a guarded simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimLimits {
    /// Maximum event-loop steps. `None` derives a generous budget from
    /// the workload size (every well-formed trace finishes well within
    /// it).
    pub max_steps: Option<u64>,
}

impl SimLimits {
    /// The derived default budget for `wl`: each job contributes one
    /// submit and one finish instant, so any legitimate run needs at
    /// most `2·jobs` steps; the slack absorbs future engine changes.
    pub fn derived_budget(wl: &Workload) -> u64 {
        10 * wl.len() as u64 + 1_000
    }
}

/// A finished guarded run: the schedule plus any invariant violations
/// the engine observed (reported rather than panicking).
#[derive(Debug, Clone)]
pub struct GuardedRun {
    /// The schedule, as from [`Simulation::run`].
    pub result: SimResult,
    /// Human-readable invariant violations (empty on a healthy run):
    /// capacity exceeded, negative waits, unbalanced node accounting.
    pub violations: Vec<String>,
}

impl SimResult {
    /// The outcome for a specific job.
    pub fn outcome(&self, id: JobId) -> &JobOutcome {
        &self.outcomes[id.index()]
    }
}

/// Event kinds; finishes sort before submissions at equal times so that
/// freed nodes are visible to jobs arriving at the same instant.
const KIND_FINISH: u8 = 0;
const KIND_SUBMIT: u8 = 1;

type Event = Reverse<(Time, u8, u64, JobId)>;

struct RunningJob {
    id: JobId,
    start: Time,
    nodes: u32,
}

/// A trace-driven simulation of one workload under one algorithm.
pub struct Simulation<'w> {
    wl: &'w Workload,
    alg: Algorithm,
    events: BinaryHeap<Event>,
    now: Time,
    free_nodes: u32,
    running: Vec<RunningJob>,
    queue: Vec<(JobId, u64)>,
    next_seq: u64,
    starts: Vec<Option<Time>>,
    finishes: Vec<Option<Time>>,
    finished: usize,
    /// Guarded mode: collect invariant violations instead of asserting,
    /// and consult the estimator through its fallible entry point.
    guarded: bool,
    violations: Vec<String>,
}

impl<'w> Simulation<'w> {
    /// Prepare a simulation of `wl` under `alg`. The workload must pass
    /// [`Workload::validate`].
    pub fn new(wl: &'w Workload, alg: Algorithm) -> Simulation<'w> {
        let mut events = BinaryHeap::with_capacity(wl.len() * 2 + 1);
        for j in &wl.jobs {
            events.push(Reverse((j.submit, KIND_SUBMIT, j.id.0 as u64, j.id)));
        }
        Simulation {
            wl,
            alg,
            events,
            now: Time::ZERO,
            free_nodes: wl.machine_nodes,
            running: Vec::new(),
            queue: Vec::new(),
            next_seq: 0,
            starts: vec![None; wl.len()],
            finishes: vec![None; wl.len()],
            finished: 0,
            guarded: false,
            violations: Vec::new(),
        }
    }

    /// Run to completion with no observer.
    pub fn run(wl: &'w Workload, alg: Algorithm, est: &mut dyn RuntimeEstimator) -> SimResult {
        let mut sim = Simulation::new(wl, alg);
        sim.run_with_hooks(est, &mut NoHooks)
    }

    /// Run to completion under a step budget and invariant guards,
    /// returning [`SimError`] instead of looping forever or panicking on
    /// a schedule that cannot make progress.
    ///
    /// The estimator is consulted through
    /// [`RuntimeEstimator::try_estimate`], so an estimator whose every
    /// source has failed aborts the run rather than scheduling on
    /// garbage. Invariant violations (capacity exceeded, negative waits,
    /// unbalanced node accounting) are *reported* in the returned
    /// [`GuardedRun`] rather than asserted.
    pub fn run_guarded(
        wl: &'w Workload,
        alg: Algorithm,
        est: &mut dyn RuntimeEstimator,
        limits: SimLimits,
    ) -> Result<GuardedRun, SimError> {
        let mut sim = Simulation::new(wl, alg);
        sim.guarded = true;
        let budget = limits
            .max_steps
            .unwrap_or_else(|| SimLimits::derived_budget(wl));
        sim.drive(est, &mut NoHooks, Some(budget))?;
        if sim.finished != wl.len() {
            return Err(SimError::Stalled {
                queued: wl.len() - sim.finished,
                at: sim.now,
            });
        }
        let mut violations = std::mem::take(&mut sim.violations);
        if sim.free_nodes != wl.machine_nodes {
            violations.push(format!(
                "node accounting unbalanced at end of run: {} free of {}",
                sim.free_nodes, wl.machine_nodes
            ));
        }
        let outcomes: Vec<JobOutcome> = wl
            .jobs
            .iter()
            .map(|j| JobOutcome {
                id: j.id,
                submit: j.submit,
                start: sim.starts[j.id.index()].expect("finished jobs have starts"),
                finish: sim.finishes[j.id.index()].expect("finished jobs have finishes"),
            })
            .collect();
        for o in &outcomes {
            if o.start < o.submit {
                violations.push(format!(
                    "negative wait: job {} started at t={} before submit t={}",
                    o.id.0,
                    o.start.seconds(),
                    o.submit.seconds()
                ));
            }
        }
        let metrics = Metrics::from_outcomes(wl, &outcomes);
        qpredict_obs::counter_add("sim.violations", violations.len() as u64);
        Ok(GuardedRun {
            result: SimResult { outcomes, metrics },
            violations,
        })
    }

    /// Run to completion, reporting submissions/starts/completions to
    /// `hooks`.
    pub fn run_with_hooks(
        &mut self,
        est: &mut dyn RuntimeEstimator,
        hooks: &mut dyn SimHooks,
    ) -> SimResult {
        self.drive(est, hooks, None)
            .expect("unguarded runs use infallible estimates and no budget");
        debug_assert_eq!(self.finished, self.wl.len(), "jobs lost by the engine");
        debug_assert_eq!(self.free_nodes, self.wl.machine_nodes);
        debug_assert!(self.queue.is_empty() && self.running.is_empty());
        let outcomes: Vec<JobOutcome> = self
            .wl
            .jobs
            .iter()
            .map(|j| JobOutcome {
                id: j.id,
                submit: j.submit,
                start: self.starts[j.id.index()].expect("every job starts"),
                finish: self.finishes[j.id.index()].expect("every job finishes"),
            })
            .collect();
        let metrics = Metrics::from_outcomes(self.wl, &outcomes);
        SimResult { outcomes, metrics }
    }

    /// The event loop shared by the guarded and unguarded entry points.
    fn drive(
        &mut self,
        est: &mut dyn RuntimeEstimator,
        hooks: &mut dyn SimHooks,
        budget: Option<u64>,
    ) -> Result<(), SimError> {
        let _run_span = qpredict_obs::span("sim.run");
        let mut steps = 0u64;
        let mut events_drained = 0u64;
        while let Some(&Reverse((t, _, _, _))) = self.events.peek() {
            if let Some(b) = budget {
                steps += 1;
                if steps > b {
                    return Err(SimError::BudgetExhausted { steps: b });
                }
            }
            self.now = t;
            // Drain every event at this instant; heap order guarantees
            // finishes come first.
            while let Some(&Reverse((et, kind, _, id))) = self.events.peek() {
                if et != t {
                    break;
                }
                self.events.pop();
                events_drained += 1;
                match kind {
                    KIND_FINISH => self.apply_finish(id, est, hooks),
                    _ => self.apply_submit(id, hooks),
                }
            }
            self.schedule(est, hooks)?;
        }
        qpredict_obs::counter_add("sim.events", events_drained);
        Ok(())
    }

    /// Obtain an estimate, through the fallible path in guarded mode.
    fn get_estimate(
        &mut self,
        est: &mut dyn RuntimeEstimator,
        id: JobId,
        elapsed: Dur,
    ) -> Result<Dur, SimError> {
        let job = self.wl.job(id);
        if self.guarded {
            est.try_estimate(job, self.now, elapsed)
                .map_err(|e| SimError::EstimateFailed {
                    job: id,
                    reason: e.reason,
                })
        } else {
            Ok(est.estimate(job, self.now, elapsed))
        }
    }

    fn apply_finish(
        &mut self,
        id: JobId,
        est: &mut dyn RuntimeEstimator,
        hooks: &mut dyn SimHooks,
    ) {
        let pos = self
            .running
            .iter()
            .position(|r| r.id == id)
            .expect("finish event for job that is not running");
        let r = self.running.remove(pos);
        self.free_nodes += r.nodes;
        self.finishes[id.index()] = Some(self.now);
        self.finished += 1;
        qpredict_obs::counter_add("sim.jobs_completed", 1);
        let job = self.wl.job(id);
        est.on_complete(job, self.now);
        hooks.on_job_complete(job, self.now);
    }

    fn apply_submit(&mut self, id: JobId, hooks: &mut dyn SimHooks) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push((id, seq));
        let snap = self.snapshot();
        hooks.after_submit(&snap, self.wl.job(id));
    }

    fn schedule(
        &mut self,
        est: &mut dyn RuntimeEstimator,
        hooks: &mut dyn SimHooks,
    ) -> Result<(), SimError> {
        if self.queue.is_empty() {
            return Ok(());
        }
        let _span = qpredict_obs::span("sim.schedule");
        if hooks.wants_schedule_snapshots() {
            let snap = self.snapshot();
            hooks.before_schedule(&snap);
        }
        // Re-estimate exactly the sets the paper says each algorithm
        // consults at every scheduling attempt.
        let mut running_views: Vec<RunningView> = Vec::with_capacity(self.running.len());
        if self.alg.uses_running_estimates() {
            for i in 0..self.running.len() {
                let (id, start, nodes) = {
                    let r = &self.running[i];
                    (r.id, r.start, r.nodes)
                };
                let elapsed = self.now - start;
                let pred = self
                    .get_estimate(est, id, elapsed)?
                    .max(elapsed + Dur::SECOND);
                running_views.push(RunningView {
                    nodes,
                    pred_end: start + pred,
                });
            }
        } else {
            running_views.extend(self.running.iter().map(|r| RunningView {
                nodes: r.nodes,
                pred_end: self.now + Dur::SECOND,
            }));
        }
        let mut entries: Vec<QueueEntry> = Vec::with_capacity(self.queue.len());
        for i in 0..self.queue.len() {
            let (id, seq) = self.queue[i];
            let pred = if self.alg.uses_queue_estimates() {
                self.get_estimate(est, id, Dur::ZERO)?.max(Dur::SECOND)
            } else {
                Dur::SECOND
            };
            entries.push(QueueEntry {
                id,
                seq,
                nodes: self.wl.job(id).nodes,
                pred_runtime: pred,
            });
        }
        let start_idxs = schedule_pass_reporting(
            self.alg,
            self.now,
            self.wl.machine_nodes,
            self.free_nodes,
            &running_views,
            &entries,
            if self.guarded {
                Some(&mut self.violations)
            } else {
                None
            },
        );
        if start_idxs.is_empty() {
            return Ok(());
        }
        // Start the chosen jobs; remove from the queue afterwards so the
        // indices stay valid.
        let chosen_jobs: Vec<(JobId, u64)> = start_idxs
            .iter()
            .map(|&i| (entries[i].id, entries[i].seq))
            .collect();
        let mut chosen = vec![false; self.queue.len()];
        for &i in &start_idxs {
            chosen[i] = true;
        }
        let mut keep_idx = 0;
        self.queue.retain(|_| {
            let k = !chosen[keep_idx];
            keep_idx += 1;
            k
        });
        for (id, seq) in chosen_jobs {
            let job = self.wl.job(id);
            if self.guarded && job.nodes > self.free_nodes {
                // Report rather than panic, and re-queue the job so node
                // accounting stays sound (it may then stall, which the
                // guarded entry point reports as an error).
                self.violations.push(format!(
                    "capacity exceeded at t={}: job {} wants {} nodes, {} free",
                    self.now.seconds(),
                    id.0,
                    job.nodes,
                    self.free_nodes
                ));
                self.queue.push((id, seq));
                continue;
            }
            debug_assert!(job.nodes <= self.free_nodes, "scheduler oversubscribed");
            qpredict_obs::counter_add("sim.jobs_started", 1);
            self.free_nodes -= job.nodes;
            self.running.push(RunningJob {
                id,
                start: self.now,
                nodes: job.nodes,
            });
            self.starts[id.index()] = Some(self.now);
            self.events.push(Reverse((
                self.now + job.runtime,
                KIND_FINISH,
                id.0 as u64,
                id,
            )));
            est.on_start(job, self.now);
            hooks.on_job_start(job, self.now);
        }
        Ok(())
    }

    /// Capture the current system state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            now: self.now,
            free_nodes: self.free_nodes,
            running: self.running.iter().map(|r| (r.id, r.start)).collect(),
            queued: self.queue.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{ActualEstimator, MaxRuntimeEstimator};
    use qpredict_workload::JobBuilder;

    /// machine of 8 nodes; jobs: (submit, nodes, runtime, max_rt)
    fn wl(jobs: &[(i64, u32, i64, i64)]) -> Workload {
        let mut w = Workload::new("t", 8);
        w.jobs = jobs
            .iter()
            .enumerate()
            .map(|(i, &(s, n, r, m))| {
                JobBuilder::new()
                    .submit(Time(s))
                    .nodes(n)
                    .runtime(Dur(r))
                    .max_runtime(Dur(m))
                    .build(JobId(i as u32))
            })
            .collect();
        w.finalize();
        w
    }

    #[test]
    fn single_job_runs_immediately() {
        let w = wl(&[(10, 4, 100, 200)]);
        let r = Simulation::run(&w, Algorithm::Fcfs, &mut ActualEstimator);
        assert_eq!(r.outcomes[0].start, Time(10));
        assert_eq!(r.outcomes[0].finish, Time(110));
        assert_eq!(r.metrics.mean_wait, Dur::ZERO);
    }

    #[test]
    fn fcfs_serializes_oversized_jobs() {
        let w = wl(&[(0, 8, 100, 200), (0, 8, 100, 200)]);
        let r = Simulation::run(&w, Algorithm::Fcfs, &mut ActualEstimator);
        assert_eq!(r.outcomes[0].start, Time(0));
        assert_eq!(r.outcomes[1].start, Time(100));
        assert_eq!(r.metrics.mean_wait, Dur(50));
    }

    #[test]
    fn finish_frees_nodes_for_same_instant_submit() {
        // Job 0 ends at t=100; job 1 arrives exactly at t=100 and must
        // start immediately (finish processed before submit).
        let w = wl(&[(0, 8, 100, 200), (100, 8, 50, 100)]);
        let r = Simulation::run(&w, Algorithm::Fcfs, &mut ActualEstimator);
        assert_eq!(r.outcomes[1].start, Time(100));
    }

    #[test]
    fn lwf_reorders_by_work() {
        // Arrivals: big job first (8x100=800 work), then small (1x50=50).
        // Machine busy until t=50, so both wait; LWF starts the small one
        // first when nodes free... but the small one fits in 1 node. Use a
        // full blocker.
        let w = wl(&[
            (0, 8, 50, 100),  // blocker, starts at 0
            (1, 8, 100, 200), // big: work 800
            (2, 1, 50, 100),  // small: work 50
        ]);
        let r = Simulation::run(&w, Algorithm::Lwf, &mut ActualEstimator);
        assert_eq!(r.outcomes[2].start, Time(50)); // small first
        assert_eq!(r.outcomes[1].start, Time(100)); // big after small
    }

    #[test]
    fn fcfs_would_not_reorder() {
        let w = wl(&[(0, 8, 50, 100), (1, 8, 100, 200), (2, 1, 50, 100)]);
        let r = Simulation::run(&w, Algorithm::Fcfs, &mut ActualEstimator);
        // FCFS keeps arrival order: the big job takes the whole machine
        // at t=50, and the small job waits behind it until t=150.
        assert_eq!(r.outcomes[1].start, Time(50));
        assert_eq!(r.outcomes[2].start, Time(150));
    }

    #[test]
    fn backfill_uses_accurate_estimates() {
        // Blocker runs to t=100 on 4 nodes. Head job wants 8 nodes ->
        // reserved at t=100. Small job (4 nodes, 50 s) backfills at 0.
        let w = wl(&[
            (0, 4, 100, 100), // blocker
            (1, 8, 100, 100), // head, reserved at 100
            (2, 4, 50, 50),   // backfills
        ]);
        let r = Simulation::run(&w, Algorithm::Backfill, &mut ActualEstimator);
        assert_eq!(r.outcomes[2].start, Time(2)); // backfilled at submit
        assert_eq!(r.outcomes[1].start, Time(100));
    }

    #[test]
    fn backfill_with_loose_limits_wastes_holes() {
        // Same scenario but the small job's limit is 200 s: under
        // max-runtime estimates it appears to overlap the reservation and
        // cannot backfill.
        let w = wl(&[
            (0, 4, 100, 100),
            (1, 8, 100, 100),
            (2, 4, 50, 200), // loose limit
        ]);
        let mut est = MaxRuntimeEstimator::from_workload(&w);
        let r = Simulation::run(&w, Algorithm::Backfill, &mut est);
        assert!(
            r.outcomes[2].start >= Time(100),
            "loose limit should block backfill"
        );
    }

    #[test]
    fn all_jobs_complete_and_accounting_balances() {
        let w = qpredict_workload::synthetic::toy(400, 32, 3);
        for alg in Algorithm::ALL {
            let r = Simulation::run(&w, alg, &mut ActualEstimator);
            assert_eq!(r.outcomes.len(), 400);
            for o in &r.outcomes {
                assert!(o.start >= o.submit, "{alg}: started before submit");
                assert_eq!(
                    o.finish - o.start,
                    w.job(o.id).runtime,
                    "{alg}: runtime distorted"
                );
            }
            assert!(r.metrics.utilization > 0.0 && r.metrics.utilization <= 1.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let w = qpredict_workload::synthetic::toy(300, 32, 4);
        for alg in Algorithm::ALL {
            let a = Simulation::run(&w, alg, &mut ActualEstimator);
            let b = Simulation::run(&w, alg, &mut ActualEstimator);
            assert_eq!(a.outcomes, b.outcomes, "{alg} nondeterministic");
        }
    }

    #[test]
    fn snapshot_contains_new_job() {
        struct Grab(Vec<(usize, usize)>); // (#running, #queued) at submits
        impl SimHooks for Grab {
            fn after_submit(&mut self, snap: &Snapshot, _job: &Job) {
                self.0.push((snap.running.len(), snap.queued.len()));
            }
        }
        let w = wl(&[(0, 8, 100, 100), (10, 8, 100, 100)]);
        let mut hooks = Grab(Vec::new());
        let mut sim = Simulation::new(&w, Algorithm::Fcfs);
        sim.run_with_hooks(&mut ActualEstimator, &mut hooks);
        // First submit: nothing running yet, itself queued.
        assert_eq!(hooks.0[0], (0, 1));
        // Second submit: first job running, itself queued.
        assert_eq!(hooks.0[1], (1, 1));
    }

    #[test]
    fn guarded_run_matches_unguarded_on_healthy_trace() {
        let w = qpredict_workload::synthetic::toy(200, 16, 5);
        for alg in Algorithm::ALL {
            let plain = Simulation::run(&w, alg, &mut ActualEstimator);
            let guarded =
                Simulation::run_guarded(&w, alg, &mut ActualEstimator, SimLimits::default())
                    .expect("healthy trace");
            assert_eq!(plain.outcomes, guarded.result.outcomes, "{alg}");
            assert!(
                guarded.violations.is_empty(),
                "{alg}: {:?}",
                guarded.violations
            );
        }
    }

    #[test]
    fn guarded_run_reports_stall_instead_of_panicking() {
        // A job wanting more nodes than the machine has can never start.
        // (Workload::validate rejects this; the guarded engine must
        // survive a workload that bypassed validation.)
        let mut w = Workload::new("t", 8);
        w.jobs = vec![
            JobBuilder::new().nodes(4).runtime(Dur(10)).build(JobId(0)),
            JobBuilder::new()
                .nodes(16)
                .runtime(Dur(10))
                .submit(Time(1))
                .build(JobId(1)),
        ];
        // No finalize-with-clamp: leave the oversized job in place.
        let err = Simulation::run_guarded(
            &w,
            Algorithm::Fcfs,
            &mut ActualEstimator,
            SimLimits::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::Stalled {
                queued: 1,
                at: Time(10)
            }
        );
        assert!(err.to_string().contains("stalled"));
    }

    #[test]
    fn guarded_run_honours_step_budget() {
        let w = qpredict_workload::synthetic::toy(50, 16, 6);
        let err = Simulation::run_guarded(
            &w,
            Algorithm::Fcfs,
            &mut ActualEstimator,
            SimLimits { max_steps: Some(3) },
        )
        .unwrap_err();
        assert_eq!(err, SimError::BudgetExhausted { steps: 3 });
    }

    #[test]
    fn guarded_run_surfaces_estimate_failure() {
        struct Broken;
        impl RuntimeEstimator for Broken {
            fn estimate(&mut self, job: &Job, _n: Time, _e: Dur) -> Dur {
                job.runtime
            }
            fn try_estimate(
                &mut self,
                _job: &Job,
                _now: Time,
                _elapsed: Dur,
            ) -> Result<Dur, crate::estimators::EstimateError> {
                Err(crate::estimators::EstimateError {
                    reason: "all sources exhausted".into(),
                })
            }
        }
        let w = wl(&[(0, 4, 100, 200), (1, 4, 50, 100)]);
        // Backfill consults the estimator; the failure must surface.
        let err =
            Simulation::run_guarded(&w, Algorithm::Backfill, &mut Broken, SimLimits::default())
                .unwrap_err();
        match err {
            SimError::EstimateFailed { reason, .. } => {
                assert!(reason.contains("exhausted"));
            }
            other => panic!("expected EstimateFailed, got {other:?}"),
        }
        // FCFS never estimates: the same estimator completes fine.
        Simulation::run_guarded(&w, Algorithm::Fcfs, &mut Broken, SimLimits::default())
            .expect("FCFS needs no estimates");
    }

    #[test]
    fn derived_budget_scales_with_workload() {
        let w = qpredict_workload::synthetic::toy(100, 16, 7);
        assert!(SimLimits::derived_budget(&w) >= 2 * 100);
    }

    #[test]
    fn estimator_sees_completions() {
        struct Count(usize);
        impl RuntimeEstimator for Count {
            fn estimate(&mut self, job: &Job, _n: Time, _e: Dur) -> Dur {
                job.runtime
            }
            fn on_complete(&mut self, _job: &Job, _now: Time) {
                self.0 += 1;
            }
        }
        let w = wl(&[(0, 2, 10, 10), (0, 2, 10, 10), (5, 2, 10, 10)]);
        let mut est = Count(0);
        Simulation::run(&w, Algorithm::Backfill, &mut est);
        assert_eq!(est.0, 3);
    }
}
