//! Property-based tests over the scheduling algorithms and the engine.

use proptest::prelude::*;

use qpredict_sim::tests_support::workload_from_triples;
use qpredict_sim::{
    schedule_pass, ActualEstimator, Algorithm, QueueEntry, RunningView, Simulation, Timeline,
};
use qpredict_workload::{Dur, JobId, Time};

/// Strategy: a consistent `(machine, free, running, queue)` scheduler
/// view.
fn arb_pass_input() -> impl Strategy<
    Value = (
        u32,
        u32,
        Vec<RunningView>,
        Vec<QueueEntry>,
    ),
> {
    (
        3u32..=7, // machine = 2^k
        proptest::collection::vec((1u32..=32, 1i64..500), 0..5),
        proptest::collection::vec((1u32..=64, 1i64..400), 1..12),
    )
        .prop_map(|(mexp, running_raw, queue_raw)| {
            let machine = 1u32 << mexp;
            let mut used = 0u32;
            let running: Vec<RunningView> = running_raw
                .into_iter()
                .filter_map(|(n, end)| {
                    let n = n.min(machine);
                    if used + n <= machine {
                        used += n;
                        Some(RunningView {
                            nodes: n,
                            pred_end: Time(end),
                        })
                    } else {
                        None
                    }
                })
                .collect();
            let free = machine - used;
            let queue: Vec<QueueEntry> = queue_raw
                .into_iter()
                .enumerate()
                .map(|(i, (n, rt))| QueueEntry {
                    id: JobId(i as u32),
                    seq: i as u64,
                    nodes: n.min(machine),
                    pred_runtime: Dur(rt),
                })
                .collect();
            (machine, free, running, queue)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No algorithm ever starts more nodes than are free, and never
    /// starts the same queue slot twice.
    #[test]
    fn passes_respect_capacity((machine, free, running, queue) in arb_pass_input()) {
        for alg in [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill, Algorithm::EasyBackfill] {
            let starts = schedule_pass(alg, Time(0), machine, free, &running, &queue);
            let total: u32 = starts.iter().map(|&i| queue[i].nodes).sum();
            prop_assert!(total <= free, "{alg} started {total} of {free} free");
            let mut seen = std::collections::HashSet::new();
            for &i in &starts {
                prop_assert!(seen.insert(i), "{alg} duplicated start {i}");
            }
        }
    }

    /// FCFS starts exactly a prefix of the arrival order.
    #[test]
    fn fcfs_starts_are_a_prefix((machine, free, running, queue) in arb_pass_input()) {
        let starts = schedule_pass(Algorithm::Fcfs, Time(0), machine, free, &running, &queue);
        let mut by_seq: Vec<u64> = starts.iter().map(|&i| queue[i].seq).collect();
        by_seq.sort_unstable();
        for (k, s) in by_seq.iter().enumerate() {
            prop_assert_eq!(*s, k as u64, "FCFS skipped an earlier job");
        }
    }

    /// Conservative and EASY backfill agree on the *head* of the queue:
    /// both start it exactly when it fits right now. (Start-set
    /// inclusion does NOT hold in either direction — EASY may backfill
    /// an earlier arrival that conservative refused, consuming capacity
    /// a later job would otherwise get; proptest found the
    /// counterexample.)
    #[test]
    fn backfill_flavours_agree_on_queue_head((machine, free, running, queue) in arb_pass_input()) {
        let cons = schedule_pass(Algorithm::Backfill, Time(0), machine, free, &running, &queue);
        let easy = schedule_pass(Algorithm::EasyBackfill, Time(0), machine, free, &running, &queue);
        let head = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.seq)
            .map(|(i, _)| i)
            .expect("non-empty queue");
        prop_assert_eq!(
            cons.contains(&head),
            easy.contains(&head),
            "flavours disagree on the queue head"
        );
        // And the head starts iff it fits in the free nodes right now.
        prop_assert_eq!(cons.contains(&head), queue[head].nodes <= free);
    }

    /// With an empty machine and no contention the head job always
    /// starts immediately under every algorithm.
    #[test]
    fn empty_machine_always_starts_head(
        nodes in 1u32..=32,
        rt in 1i64..1000,
    ) {
        let queue = [QueueEntry { id: JobId(0), seq: 0, nodes, pred_runtime: Dur(rt) }];
        for alg in [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill, Algorithm::EasyBackfill] {
            let starts = schedule_pass(alg, Time(5), 32, 32, &[], &queue);
            prop_assert_eq!(&starts, &vec![0usize], "{} refused a fitting head", alg);
        }
    }

    /// End-to-end: every engine schedule is feasible (timeline-checked)
    /// and work-conserving in the sense that the machine is never idle
    /// while the head of an FCFS queue would fit. (Weak form: peak
    /// occupancy is positive whenever jobs exist.)
    #[test]
    fn engine_schedules_feasible(
        jobs in proptest::collection::vec((0i64..2_000, 1u32..=16, 1i64..500), 1..40),
        alg_idx in 0usize..4,
    ) {
        let alg = [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill, Algorithm::EasyBackfill][alg_idx];
        let wl = workload_from_triples(16, &jobs);
        let result = Simulation::run(&wl, alg, &mut ActualEstimator);
        let t = Timeline::build(&wl, &result.outcomes);
        prop_assert!(t.is_feasible(), "{alg} oversubscribed (peak {})", t.peak());
        prop_assert!(t.peak() > 0);
    }

    /// EASY never worsens any *single-pass* start decision relative to
    /// conservative across a whole run: total completed work is equal
    /// (both run every job) and EASY's mean wait is finite. (Full-run
    /// dominance does not hold in general, so assert only soundness.)
    #[test]
    fn easy_runs_complete(
        jobs in proptest::collection::vec((0i64..2_000, 1u32..=16, 1i64..500), 1..30),
    ) {
        let wl = workload_from_triples(16, &jobs);
        let r = Simulation::run(&wl, Algorithm::EasyBackfill, &mut ActualEstimator);
        prop_assert_eq!(r.outcomes.len(), wl.len());
        for o in &r.outcomes {
            prop_assert!(o.start >= o.submit);
        }
    }
}
