//! Randomized tests over the scheduling algorithms and the engine.
//!
//! Deterministic seeded loops stand in for an external property-testing
//! harness: the workspace must build offline with no crates beyond std.

use qpredict_sim::tests_support::workload_from_triples;
use qpredict_sim::{
    schedule_pass, ActualEstimator, Algorithm, QueueEntry, RunningView, Simulation, Timeline,
};
use qpredict_workload::{Dur, JobId, Rng64, Time};

/// A consistent `(machine, free, running, queue)` scheduler view.
fn random_pass_input(rng: &mut Rng64) -> (u32, u32, Vec<RunningView>, Vec<QueueEntry>) {
    let machine = 1u32 << (3 + rng.gen_index(5)); // 8..=128 nodes
    let mut used = 0u32;
    let running: Vec<RunningView> = (0..rng.gen_index(5))
        .filter_map(|_| {
            let n = (1 + rng.gen_index(32) as u32).min(machine);
            let end = rng.gen_range_i64(1, 499);
            if used + n <= machine {
                used += n;
                Some(RunningView {
                    nodes: n,
                    pred_end: Time(end),
                })
            } else {
                None
            }
        })
        .collect();
    let free = machine - used;
    let queue: Vec<QueueEntry> = (0..1 + rng.gen_index(11))
        .map(|i| QueueEntry {
            id: JobId(i as u32),
            seq: i as u64,
            nodes: (1 + rng.gen_index(64) as u32).min(machine),
            pred_runtime: Dur(rng.gen_range_i64(1, 399)),
        })
        .collect();
    (machine, free, running, queue)
}

/// No algorithm ever starts more nodes than are free, and never starts
/// the same queue slot twice.
#[test]
fn passes_respect_capacity() {
    for seed in 0u64..128 {
        let mut rng = Rng64::seed_from_u64(seed);
        let (machine, free, running, queue) = random_pass_input(&mut rng);
        for alg in [
            Algorithm::Fcfs,
            Algorithm::Lwf,
            Algorithm::Backfill,
            Algorithm::EasyBackfill,
        ] {
            let starts = schedule_pass(alg, Time(0), machine, free, &running, &queue);
            let total: u32 = starts.iter().map(|&i| queue[i].nodes).sum();
            assert!(
                total <= free,
                "seed {seed}: {alg} started {total} of {free} free"
            );
            let mut seen = std::collections::HashSet::new();
            for &i in &starts {
                assert!(seen.insert(i), "seed {seed}: {alg} duplicated start {i}");
            }
        }
    }
}

/// FCFS starts exactly a prefix of the arrival order.
#[test]
fn fcfs_starts_are_a_prefix() {
    for seed in 0u64..128 {
        let mut rng = Rng64::seed_from_u64(seed);
        let (machine, free, running, queue) = random_pass_input(&mut rng);
        let starts = schedule_pass(Algorithm::Fcfs, Time(0), machine, free, &running, &queue);
        let mut by_seq: Vec<u64> = starts.iter().map(|&i| queue[i].seq).collect();
        by_seq.sort_unstable();
        for (k, s) in by_seq.iter().enumerate() {
            assert_eq!(*s, k as u64, "seed {seed}: FCFS skipped an earlier job");
        }
    }
}

/// Conservative and EASY backfill agree on the *head* of the queue:
/// both start it exactly when it fits right now. (Start-set inclusion
/// does NOT hold in either direction — EASY may backfill an earlier
/// arrival that conservative refused, consuming capacity a later job
/// would otherwise get; random search found the counterexample.)
#[test]
fn backfill_flavours_agree_on_queue_head() {
    for seed in 0u64..128 {
        let mut rng = Rng64::seed_from_u64(seed);
        let (machine, free, running, queue) = random_pass_input(&mut rng);
        let cons = schedule_pass(
            Algorithm::Backfill,
            Time(0),
            machine,
            free,
            &running,
            &queue,
        );
        let easy = schedule_pass(
            Algorithm::EasyBackfill,
            Time(0),
            machine,
            free,
            &running,
            &queue,
        );
        let head = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.seq)
            .map(|(i, _)| i)
            .expect("non-empty queue");
        assert_eq!(
            cons.contains(&head),
            easy.contains(&head),
            "seed {seed}: flavours disagree on the queue head"
        );
        // And the head starts iff it fits in the free nodes right now.
        assert_eq!(
            cons.contains(&head),
            queue[head].nodes <= free,
            "seed {seed}"
        );
    }
}

/// With an empty machine and no contention the head job always starts
/// immediately under every algorithm.
#[test]
fn empty_machine_always_starts_head() {
    for seed in 0u64..64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let nodes = 1 + rng.gen_index(32) as u32;
        let rt = rng.gen_range_i64(1, 999);
        let queue = [QueueEntry {
            id: JobId(0),
            seq: 0,
            nodes,
            pred_runtime: Dur(rt),
        }];
        for alg in [
            Algorithm::Fcfs,
            Algorithm::Lwf,
            Algorithm::Backfill,
            Algorithm::EasyBackfill,
        ] {
            let starts = schedule_pass(alg, Time(5), 32, 32, &[], &queue);
            assert_eq!(
                &starts,
                &vec![0usize],
                "seed {seed}: {alg} refused a fitting head"
            );
        }
    }
}

fn random_triples(rng: &mut Rng64, max_jobs: usize) -> Vec<(i64, u32, i64)> {
    (0..1 + rng.gen_index(max_jobs - 1))
        .map(|_| {
            (
                rng.gen_range_i64(0, 1_999),
                1 + rng.gen_index(16) as u32,
                rng.gen_range_i64(1, 499),
            )
        })
        .collect()
}

/// End-to-end: every engine schedule is feasible (timeline-checked) and
/// peak occupancy is positive whenever jobs exist.
#[test]
fn engine_schedules_feasible() {
    for seed in 0u64..128 {
        let mut rng = Rng64::seed_from_u64(seed);
        let jobs = random_triples(&mut rng, 40);
        let alg = [
            Algorithm::Fcfs,
            Algorithm::Lwf,
            Algorithm::Backfill,
            Algorithm::EasyBackfill,
        ][rng.gen_index(4)];
        let wl = workload_from_triples(16, &jobs);
        let result = Simulation::run(&wl, alg, &mut ActualEstimator);
        let t = Timeline::build(&wl, &result.outcomes);
        assert!(
            t.is_feasible(),
            "seed {seed}: {alg} oversubscribed (peak {})",
            t.peak()
        );
        assert!(t.peak() > 0, "seed {seed}");
    }
}

/// EASY always completes every job and never starts one before submit.
#[test]
fn easy_runs_complete() {
    for seed in 0u64..64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let jobs = random_triples(&mut rng, 30);
        let wl = workload_from_triples(16, &jobs);
        let r = Simulation::run(&wl, Algorithm::EasyBackfill, &mut ActualEstimator);
        assert_eq!(r.outcomes.len(), wl.len(), "seed {seed}");
        for o in &r.outcomes {
            assert!(o.start >= o.submit, "seed {seed}");
        }
    }
}
