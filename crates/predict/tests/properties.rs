//! Randomized tests over the predictor stack.
//!
//! Deterministic seeded loops stand in for an external property-testing
//! harness: the workspace must build offline with no crates beyond std.

use qpredict_predict::{
    estimators, CharSet, DowneyPredictor, DowneyVariant, GibbonsPredictor, Prediction,
    RunTimePredictor, SmithPredictor, Template, TemplateSet,
};
use qpredict_workload::{Characteristic, Dur, Job, JobBuilder, JobId, Rng64, SymbolTable};

fn job(syms: &mut SymbolTable, user: u8, exe: u8, nodes: u32, rt: i64) -> Job {
    let u = syms.intern(&format!("u{user}"));
    let e = syms.intern(&format!("e{exe}"));
    JobBuilder::new()
        .with(Characteristic::User, u)
        .with(Characteristic::Executable, e)
        .nodes(nodes.max(1))
        .runtime(Dur(rt.max(1)))
        .max_runtime(Dur(rt.max(1) * 2))
        .build(JobId(0))
}

fn check_sane(p: Prediction, elapsed: i64) {
    assert!(p.estimate >= Dur(elapsed + 1));
    assert!(p.estimate.seconds() >= 1);
}

/// The sample mean with CI matches the moments-based fast path on any
/// sample.
#[test]
fn mean_paths_agree() {
    for seed in 0u64..48 {
        let mut rng = Rng64::seed_from_u64(seed);
        let xs: Vec<f64> = (0..1 + rng.gen_index(59))
            .map(|_| rng.gen_range_f64(0.1, 1e6))
            .collect();
        let slow = estimators::mean(xs.iter().copied()).unwrap();
        let (n, s, s2) = xs.iter().fold((0usize, 0.0, 0.0), |(n, s, s2), &x| {
            (n + 1, s + x, s2 + x * x)
        });
        let fast = estimators::mean_from_moments(n, s, s2).unwrap();
        assert!(
            (slow.value - fast.value).abs() < 1e-6 * slow.value.abs().max(1.0),
            "seed {seed}"
        );
        if slow.ci.is_finite() {
            assert!(
                (slow.ci - fast.ci).abs() < 1e-6 * slow.ci.abs().max(1.0),
                "seed {seed}"
            );
        } else {
            assert!(fast.ci.is_infinite(), "seed {seed}");
        }
    }
}

/// The mean's confidence interval shrinks (weakly) as identical batches
/// of data accumulate.
#[test]
fn ci_shrinks_with_replication() {
    for seed in 0u64..48 {
        let mut rng = Rng64::seed_from_u64(seed);
        let xs: Vec<f64> = (0..3 + rng.gen_index(7))
            .map(|_| rng.gen_range_f64(1.0, 1e4))
            .collect();
        let reps = 2 + rng.gen_index(4);
        let small = estimators::mean(xs.iter().copied()).unwrap();
        let big_data: Vec<f64> = std::iter::repeat_n(xs.clone(), reps).flatten().collect();
        let big = estimators::mean(big_data.iter().copied()).unwrap();
        assert!(
            big.ci <= small.ci + 1e-9,
            "seed {seed}: ci grew from {} to {} after replication",
            small.ci,
            big.ci
        );
    }
}

/// A noiseless linear relation is recovered exactly wherever it is
/// evaluated, for every regression family applied to its own data.
#[test]
fn regressions_interpolate_their_family() {
    use qpredict_predict::estimators::{regression, RegressionKind};
    for seed in 0u64..48 {
        let mut rng = Rng64::seed_from_u64(seed);
        let a = rng.gen_range_f64(-100.0, 100.0);
        let b = rng.gen_range_f64(-100.0, 100.0);
        let x0 = rng.gen_range_f64(1.0, 64.0);
        for kind in [
            RegressionKind::Linear,
            RegressionKind::Inverse,
            RegressionKind::Logarithmic,
        ] {
            let g = |x: f64| match kind {
                RegressionKind::Linear => x,
                RegressionKind::Inverse => 1.0 / x,
                RegressionKind::Logarithmic => x.ln(),
            };
            let pts: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0]
                .iter()
                .map(|&x| (x, a + b * g(x)))
                .collect();
            let est = regression(kind, pts.iter().copied(), x0).unwrap();
            let want = a + b * g(x0);
            assert!(
                (est.value - want).abs() < 1e-6 * want.abs().max(1.0),
                "seed {seed} {kind:?}: {} vs {want}",
                est.value
            );
        }
    }
}

/// Every predictor returns sane predictions whatever the (valid) history
/// and query, and all are deterministic.
#[test]
fn predictors_always_sane() {
    for seed in 0u64..48 {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut syms = SymbolTable::new();
        let set = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User, Characteristic::Executable]),
            Template::mean_over(&[Characteristic::User]).relative(),
            Template::mean_over(&[]).with_node_range(2).with_rtime(),
        ]);
        let mut smith = SmithPredictor::new(set);
        let mut gibbons = GibbonsPredictor::new();
        let mut downey = DowneyPredictor::new(DowneyVariant::ConditionalMedian, None);
        for _ in 0..rng.gen_index(40) {
            let (u, e) = (rng.gen_index(4) as u8, rng.gen_index(4) as u8);
            let n = 1 + rng.gen_index(63) as u32;
            let rt = rng.gen_range_i64(1, 49_999);
            let j = job(&mut syms, u, e, n, rt);
            smith.on_complete(&j);
            gibbons.on_complete(&j);
            downey.on_complete(&j);
        }
        let quser = rng.gen_index(4) as u8;
        let qexe = rng.gen_index(4) as u8;
        let qnodes = 1 + rng.gen_index(63) as u32;
        let elapsed = rng.gen_range_i64(0, 99_999);
        let q = job(&mut syms, quser, qexe, qnodes, 1234);
        for p in [
            smith.predict(&q, Dur(elapsed)),
            gibbons.predict(&q, Dur(elapsed)),
            downey.predict(&q, Dur(elapsed)),
        ] {
            check_sane(p, elapsed);
        }
        // Determinism of repeated queries.
        assert_eq!(
            smith.predict(&q, Dur(elapsed)),
            smith.predict(&q, Dur(elapsed))
        );
        assert_eq!(
            gibbons.predict(&q, Dur(elapsed)),
            gibbons.predict(&q, Dur(elapsed))
        );
    }
}

/// Smith with a single exact-identity template converges to the true
/// per-identity mean.
#[test]
fn smith_converges_to_group_mean() {
    for seed in 0u64..48 {
        let mut rng = Rng64::seed_from_u64(seed);
        let rts: Vec<i64> = (0..2 + rng.gen_index(28))
            .map(|_| rng.gen_range_i64(10, 9_999))
            .collect();
        let mut syms = SymbolTable::new();
        let set = TemplateSet::new(vec![Template::mean_over(&[Characteristic::User])]);
        let mut p = SmithPredictor::new(set);
        for &rt in &rts {
            p.on_complete(&job(&mut syms, 1, 1, 4, rt));
        }
        let q = job(&mut syms, 1, 1, 4, 1);
        let pred = p.predict(&q, Dur::ZERO);
        let mean = rts.iter().sum::<i64>() as f64 / rts.len() as f64;
        assert!(
            (pred.estimate.as_secs_f64() - mean).abs() <= 1.0,
            "seed {seed}: {} vs mean {mean}",
            pred.estimate.as_secs_f64()
        );
    }
}

/// History caps keep category sizes bounded no matter the insert volume.
#[test]
fn capped_history_forgets() {
    for seed in 0u64..24 {
        let mut rng = Rng64::seed_from_u64(seed);
        let n_inserts = 10 + rng.gen_index(190);
        let mut syms = SymbolTable::new();
        let set = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]).with_max_history(8)
        ]);
        let mut p = SmithPredictor::new(set);
        // Feed a drifting signal: the prediction must track the recent
        // window, not the stale past.
        for i in 0..n_inserts {
            let rt = if i < n_inserts.saturating_sub(8) {
                100
            } else {
                9000
            };
            p.on_complete(&job(&mut syms, 1, 1, 4, rt));
        }
        let pred = p.predict(&job(&mut syms, 1, 1, 4, 1), Dur::ZERO);
        assert_eq!(
            pred.estimate,
            Dur(9000),
            "seed {seed} n_inserts {n_inserts}"
        );
    }
}

/// CharSet operations behave like a set of at most 8 elements.
#[test]
fn charset_is_a_set() {
    for bits in 0u16..=255 {
        let cs = CharSet(bits as u8);
        assert_eq!(cs.len(), (bits as u8).count_ones());
        let collected: Vec<Characteristic> = cs.iter().collect();
        assert_eq!(collected.len() as u32, cs.len());
        for c in collected {
            assert!(cs.contains(c));
        }
    }
}
