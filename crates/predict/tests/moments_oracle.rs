//! Property tests: the incremental-moment estimator paths must agree
//! with the naive full-scan oracle on seeded random histories.
//!
//! Regression sums are maintained append-only with recompute-on-evict,
//! which preserves the exact f64 addition order of a fresh scan — so
//! regression estimates are asserted **bit-identical** to the oracle.
//! The mean moments (`abs`/`ratio`) use subtract-on-evict, whose low-bit
//! drift is inherent; they are asserted bit-identical until the first
//! eviction and within tight relative tolerance after.

use qpredict_predict::category::{History, Point};
use qpredict_predict::estimators::{mean, regression, regression_from_moments, Estimate};
use qpredict_predict::{
    EstimatorKind, Prediction, RunTimePredictor, SmithPredictor, Template, TemplateSet,
};
use qpredict_workload::rng::Rng64;
use qpredict_workload::{Characteristic, Dur, Job, JobBuilder, JobId, SymbolTable};

fn rand_point(rng: &mut Rng64) -> Point {
    let runtime = rng.gen_range_f64(1.0, 50_000.0);
    let has_limit = rng.gen_bool(0.8);
    Point {
        runtime,
        ratio: if has_limit {
            runtime / rng.gen_range_f64(runtime, runtime * 20.0).max(1.0)
        } else {
            f64::NAN
        },
        nodes: (1 + rng.gen_index(128)) as f64,
    }
}

fn assert_bit_identical(fast: Option<Estimate>, scan: Option<Estimate>, what: &str) {
    match (fast, scan) {
        (None, None) => {}
        (Some(f), Some(s)) => {
            assert_eq!(f.n, s.n, "{what}: n");
            assert_eq!(
                f.value.to_bits(),
                s.value.to_bits(),
                "{what}: value {} vs {}",
                f.value,
                s.value
            );
            assert_eq!(
                f.ci.to_bits(),
                s.ci.to_bits(),
                "{what}: ci {} vs {}",
                f.ci,
                s.ci
            );
        }
        (f, s) => panic!("{what}: fast {f:?} vs scan {s:?}"),
    }
}

fn assert_close(fast: Option<Estimate>, scan: Option<Estimate>, what: &str) {
    match (fast, scan) {
        (None, None) => {}
        (Some(f), Some(s)) => {
            assert_eq!(f.n, s.n, "{what}: n");
            let close =
                |a: f64, b: f64| (a == b) || (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
            assert!(
                close(f.value, s.value),
                "{what}: value {} vs {}",
                f.value,
                s.value
            );
            // The interval is a *square root* of the drifting quantity:
            // subtract-on-evict residue of ~1e-16 relative to sum2
            // surfaces as ~1e-8 absolute in the CI when the true
            // variance is ~0 (near-constant history). Tolerate drift
            // proportional to the value scale.
            let scale = f.value.abs().max(s.value.abs()).max(1.0);
            let ci_close = close(f.ci, s.ci) || (f.ci - s.ci).abs() <= 1e-6 * scale;
            assert!(ci_close, "{what}: ci {} vs {}", f.ci, s.ci);
        }
        (f, s) => panic!("{what}: fast {f:?} vs scan {s:?}"),
    }
}

/// Every estimator configuration, relative and absolute, capped and
/// uncapped: incremental History aggregates vs a naive rescan of the
/// retained points.
#[test]
fn history_moments_match_full_scan_oracle() {
    let mut rng = Rng64::seed_from_u64(0xA11CE);
    for case in 0..200 {
        let estimator = EstimatorKind::ALL[rng.gen_index(4)];
        let relative = rng.gen_bool(0.5);
        let cap = if rng.gen_bool(0.5) {
            Some(2 + rng.gen_index(12) as u32)
        } else {
            None
        };
        let mut t = Template::mean_over(&[]).with_estimator(estimator);
        if relative {
            t = t.relative();
        }
        if let Some(c) = cap {
            t = t.with_max_history(c);
        }
        let mut h = History::default();
        let mut evicted_yet = false;
        let n_points = 1 + rng.gen_index(40);
        for i in 0..n_points {
            let mut p = rand_point(&mut rng);
            if relative && !p.ratio.is_finite() {
                // Relative categories only ever receive limited jobs
                // (applies_to requires a limit at insertion).
                p.ratio = p.runtime / (p.runtime * 2.0);
            }
            h.push(p, &t);
            if let Some(c) = cap {
                evicted_yet |= i + 1 > c as usize;
            }
            let what = format!("case {case} point {i} ({estimator:?} rel={relative} cap={cap:?})");
            let value_of = |q: &Point| if relative { q.ratio } else { q.runtime };
            let x0 = (1 + rng.gen_index(256)) as f64;
            match estimator.regression() {
                None => {
                    let m = if relative {
                        h.ratio_moments()
                    } else {
                        h.abs_moments()
                    };
                    let fast = qpredict_predict::estimators::mean_from_moments(m.n, m.sum, m.sum2);
                    let scan = mean(h.iter().map(value_of));
                    if evicted_yet {
                        assert_close(fast, scan, &what);
                    } else {
                        assert_bit_identical(fast, scan, &what);
                    }
                }
                Some(kind) => {
                    let m = h
                        .reg_moments(kind, relative)
                        .expect("regression template maintains sums");
                    let fast =
                        regression_from_moments(kind, m.n, m.sg, m.sy, m.sgg, m.sgy, m.syy, x0);
                    let scan = regression(kind, h.iter().map(|q| (q.nodes, value_of(q))), x0);
                    // Recompute-on-evict keeps regressions exact even
                    // after eviction.
                    assert_bit_identical(fast, scan, &what);
                }
            }
        }
    }
}

fn rand_job(rng: &mut Rng64, syms: &mut SymbolTable, id: u32) -> Job {
    let user = syms.intern(["ann", "bob", "cho", "dee"][rng.gen_index(4)]);
    let exe = syms.intern(["fft", "cfd", "qcd"][rng.gen_index(3)]);
    let runtime = Dur(1 + rng.gen_range_i64(1, 40_000));
    let mut b = JobBuilder::new()
        .with(Characteristic::User, user)
        .with(Characteristic::Executable, exe)
        .nodes(1 + rng.gen_index(64) as u32)
        .runtime(runtime);
    if rng.gen_bool(0.8) {
        b = b.max_runtime(Dur(runtime.0 * rng.gen_range_i64(1, 20)));
    }
    b.build(JobId(id))
}

fn spicy_set() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[Characteristic::User])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_max_history(6),
        Template::mean_over(&[Characteristic::Executable])
            .with_estimator(EstimatorKind::InverseRegression)
            .relative(),
        Template::mean_over(&[])
            .with_estimator(EstimatorKind::LogRegression)
            .with_max_history(4),
        Template::mean_over(&[Characteristic::User])
            .relative()
            .with_max_history(3),
        Template::mean_over(&[Characteristic::User]).with_rtime(),
        Template::mean_over(&[]),
    ])
}

/// End-to-end: a predictor that lived through `reset()` must predict
/// exactly like a fresh predictor replaying only the post-reset history
/// — reset leaves no residue in any incremental aggregate.
#[test]
fn predictor_after_reset_matches_fresh_replay() {
    let mut rng = Rng64::seed_from_u64(0xBEEF);
    let mut syms = SymbolTable::new();
    let mut veteran = SmithPredictor::new(spicy_set());
    let mut id = 0u32;
    // Pre-reset life: learn, predict, then wipe.
    for _ in 0..60 {
        let j = rand_job(&mut rng, &mut syms, id);
        id += 1;
        veteran.on_complete(&j);
        let _ = veteran.predict(&j, Dur::ZERO);
    }
    veteran.reset();
    // Post-reset: replay an identical stream into a fresh predictor and
    // compare every prediction bit-for-bit.
    let mut fresh = SmithPredictor::new(spicy_set());
    let mut history: Vec<Job> = Vec::new();
    for round in 0..80 {
        let j = rand_job(&mut rng, &mut syms, id);
        id += 1;
        veteran.on_complete(&j);
        fresh.on_complete(&j);
        history.push(j);
        let probe = &history[rng.gen_index(history.len())];
        for elapsed in [Dur::ZERO, Dur(rng.gen_range_i64(1, 5_000))] {
            let a: Prediction = veteran.predict(probe, elapsed);
            let b: Prediction = fresh.predict(probe, elapsed);
            assert_eq!(
                a, b,
                "round {round}: veteran-after-reset diverged from fresh replay"
            );
        }
    }
}

/// Generations are monotone and bump exactly on state mutations.
#[test]
fn generation_contract() {
    let mut rng = Rng64::seed_from_u64(7);
    let mut syms = SymbolTable::new();
    let mut p = SmithPredictor::new(spicy_set());
    let mut last = p.generation().expect("smith is cacheable");
    for i in 0..30 {
        let j = rand_job(&mut rng, &mut syms, i);
        let _ = p.predict(&j, Dur::ZERO);
        assert_eq!(p.generation(), Some(last), "predict must not bump");
        p.on_complete(&j);
        let now = p.generation().expect("smith is cacheable");
        assert!(now > last, "on_complete must bump");
        last = now;
    }
    p.reset();
    assert!(p.generation().expect("cacheable") > last, "reset must bump");
}
