//! Prediction-error accounting.
//!
//! The paper reports mean absolute errors in minutes and as percentages
//! of the mean of the quantity being predicted (run time or wait time).
//! [`ErrorStats`] accumulates both for any stream of
//! `(predicted, actual)` pairs.

use qpredict_workload::Dur;

/// Accumulates absolute-error statistics over `(predicted, actual)`
/// duration pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ErrorStats {
    n: u64,
    sum_abs_err_s: f64,
    sum_err_s: f64,
    sum_actual_s: f64,
    sum_sq_err_s: f64,
    max_abs_err_s: f64,
}

impl ErrorStats {
    /// An empty accumulator.
    pub fn new() -> ErrorStats {
        ErrorStats::default()
    }

    /// Record one prediction against its realized value.
    pub fn record(&mut self, predicted: Dur, actual: Dur) {
        let err = predicted.as_secs_f64() - actual.as_secs_f64();
        self.n += 1;
        self.sum_abs_err_s += err.abs();
        self.sum_err_s += err;
        self.sum_actual_s += actual.as_secs_f64();
        self.sum_sq_err_s += err * err;
        if err.abs() > self.max_abs_err_s {
            self.max_abs_err_s = err.abs();
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.n += other.n;
        self.sum_abs_err_s += other.sum_abs_err_s;
        self.sum_err_s += other.sum_err_s;
        self.sum_actual_s += other.sum_actual_s;
        self.sum_sq_err_s += other.sum_sq_err_s;
        self.max_abs_err_s = self.max_abs_err_s.max(other.max_abs_err_s);
    }

    /// Number of recorded pairs.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean absolute error, in minutes (the paper's "Mean Error").
    pub fn mean_abs_error_min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_abs_err_s / self.n as f64 / 60.0
        }
    }

    /// Mean signed error (bias), in minutes. Positive = overprediction.
    pub fn mean_bias_min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_err_s / self.n as f64 / 60.0
        }
    }

    /// Mean of the actual values, in minutes.
    pub fn mean_actual_min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_actual_s / self.n as f64 / 60.0
        }
    }

    /// Mean absolute error as a percentage of the mean actual value
    /// (the paper's "Percentage of Mean Wait Time" / "... Run Time").
    pub fn pct_of_mean_actual(&self) -> f64 {
        let m = self.mean_actual_min();
        if m <= 0.0 {
            0.0
        } else {
            100.0 * self.mean_abs_error_min() / m
        }
    }

    /// Root-mean-square error, in minutes.
    pub fn rmse_min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum_sq_err_s / self.n as f64).sqrt() / 60.0
        }
    }

    /// Largest absolute error, in minutes.
    pub fn max_abs_error_min(&self) -> f64 {
        self.max_abs_err_s / 60.0
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={}  MAE {:.2} min ({:.0}% of mean {:.2} min)  bias {:+.2} min  RMSE {:.2} min",
            self.n,
            self.mean_abs_error_min(),
            self.pct_of_mean_actual(),
            self.mean_actual_min(),
            self.mean_bias_min(),
            self.rmse_min()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let e = ErrorStats::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean_abs_error_min(), 0.0);
        assert_eq!(e.pct_of_mean_actual(), 0.0);
    }

    #[test]
    fn hand_computed_case() {
        let mut e = ErrorStats::new();
        e.record(Dur(120), Dur(60)); // err +60 s
        e.record(Dur(60), Dur(180)); // err -120 s
        assert_eq!(e.count(), 2);
        // MAE = (60+120)/2 = 90 s = 1.5 min
        assert!((e.mean_abs_error_min() - 1.5).abs() < 1e-12);
        // bias = (60-120)/2 = -30 s = -0.5 min
        assert!((e.mean_bias_min() + 0.5).abs() < 1e-12);
        // mean actual = 120 s = 2 min -> 75%
        assert!((e.pct_of_mean_actual() - 75.0).abs() < 1e-9);
        assert!((e.max_abs_error_min() - 2.0).abs() < 1e-12);
        // RMSE = sqrt((3600+14400)/2) = sqrt(9000) s
        assert!((e.rmse_min() - 9000f64.sqrt() / 60.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = ErrorStats::new();
        a.record(Dur(100), Dur(50));
        let mut b = ErrorStats::new();
        b.record(Dur(10), Dur(40));
        b.record(Dur(70), Dur(70));
        let mut merged = a;
        merged.merge(&b);
        let mut seq = ErrorStats::new();
        seq.record(Dur(100), Dur(50));
        seq.record(Dur(10), Dur(40));
        seq.record(Dur(70), Dur(70));
        assert_eq!(merged, seq);
    }

    #[test]
    fn perfect_predictions() {
        let mut e = ErrorStats::new();
        for v in [10, 100, 1000] {
            e.record(Dur(v), Dur(v));
        }
        assert_eq!(e.mean_abs_error_min(), 0.0);
        assert_eq!(e.pct_of_mean_actual(), 0.0);
        assert_eq!(e.rmse_min(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let mut e = ErrorStats::new();
        e.record(Dur(120), Dur(60));
        let s = e.to_string();
        assert!(s.contains("n=1"));
        assert!(s.contains("MAE"));
    }
}
