//! Baseline predictors: user-supplied maximum run times and the oracle.

use std::collections::HashMap;

use qpredict_workload::{Characteristic, Dur, Job, Sym, Workload};

use crate::{Prediction, RunTimePredictor};

/// Predicts every job at its user-supplied maximum run time, as EASY-style
/// schedulers do. For workloads without recorded limits (SDSC), per-queue
/// maxima are derived from the trace — *"we determine the longest running
/// job in each queue and use that as the maximum run time for all jobs in
/// that queue"*.
#[derive(Debug, Clone)]
pub struct MaxRuntimePredictor {
    queue_max: HashMap<Option<Sym>, Dur>,
    global_max: Dur,
}

impl MaxRuntimePredictor {
    /// Derive the per-queue maxima from `w`.
    pub fn from_workload(w: &Workload) -> MaxRuntimePredictor {
        let queue_max = w.derive_queue_max_runtimes();
        let global_max = queue_max.get(&None).copied().unwrap_or(Dur::HOUR);
        MaxRuntimePredictor {
            queue_max,
            global_max,
        }
    }

    /// The limit used for `job`.
    pub fn limit_for(&self, job: &Job) -> Dur {
        if let Some(m) = job.max_runtime {
            return m;
        }
        let q = job.characteristic(Characteristic::Queue);
        self.queue_max.get(&q).copied().unwrap_or(self.global_max)
    }
}

impl RunTimePredictor for MaxRuntimePredictor {
    fn name(&self) -> &'static str {
        "maxrt"
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        Prediction {
            estimate: self.limit_for(job),
            ci_halfwidth: f64::INFINITY,
            fallback: false,
        }
        .clamped(elapsed)
    }

    fn on_complete(&mut self, _job: &Job) {}

    fn reset(&mut self) {}

    fn generation(&self) -> Option<u64> {
        Some(0) // limits are fixed at construction: stateless
    }
}

/// Predicts every job at its actual run time: the perfect-information
/// upper bound of Tables 4 and 10.
#[derive(Debug, Clone, Copy, Default)]
pub struct OraclePredictor;

impl RunTimePredictor for OraclePredictor {
    fn name(&self) -> &'static str {
        "actual"
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        Prediction {
            estimate: job.runtime,
            ci_halfwidth: 0.0,
            fallback: false,
        }
        .clamped(elapsed)
    }

    fn on_complete(&mut self, _job: &Job) {}

    fn reset(&mut self) {}

    fn generation(&self) -> Option<u64> {
        Some(0) // pure function of the job: stateless
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::{JobBuilder, JobId};

    #[test]
    fn maxrt_uses_explicit_limit() {
        let mut w = Workload::new("t", 8);
        w.jobs = vec![JobBuilder::new()
            .runtime(Dur(50))
            .max_runtime(Dur(600))
            .build(JobId(0))];
        w.finalize();
        let mut p = MaxRuntimePredictor::from_workload(&w);
        assert_eq!(p.predict(&w.jobs[0], Dur::ZERO).estimate, Dur(600));
    }

    #[test]
    fn maxrt_derives_per_queue() {
        let mut w = Workload::new("t", 8);
        let q = w.symbols.intern("short");
        let r = w.symbols.intern("long");
        use qpredict_workload::Time;
        w.jobs = vec![
            JobBuilder::new()
                .with(Characteristic::Queue, q)
                .runtime(Dur(100))
                .build(JobId(0)),
            JobBuilder::new()
                .with(Characteristic::Queue, r)
                .runtime(Dur(9000))
                .submit(Time(1))
                .build(JobId(1)),
        ];
        w.finalize();
        let mut p = MaxRuntimePredictor::from_workload(&w);
        assert_eq!(p.predict(&w.jobs[0], Dur::ZERO).estimate, Dur(100));
        assert_eq!(p.predict(&w.jobs[1], Dur::ZERO).estimate, Dur(9000));
    }

    #[test]
    fn oracle_is_exact() {
        let j = JobBuilder::new().runtime(Dur(1234)).build(JobId(0));
        let mut p = OraclePredictor;
        let pred = p.predict(&j, Dur::ZERO);
        assert_eq!(pred.estimate, Dur(1234));
        assert_eq!(pred.ci_halfwidth, 0.0);
        assert!(!pred.fallback);
    }

    #[test]
    fn both_respect_elapsed_clamp() {
        let j = JobBuilder::new()
            .runtime(Dur(100))
            .max_runtime(Dur(100))
            .build(JobId(0));
        let mut w = Workload::new("t", 8);
        w.jobs = vec![j.clone()];
        w.finalize();
        let mut m = MaxRuntimePredictor::from_workload(&w);
        assert_eq!(m.predict(&j, Dur(500)).estimate, Dur(501));
        assert_eq!(OraclePredictor.predict(&j, Dur(500)).estimate, Dur(501));
    }
}
