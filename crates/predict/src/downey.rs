//! Downey's run-time predictor \[3\], as summarized in the paper.
//!
//! Downey categorizes jobs by submission queue, models the cumulative
//! distribution of run times in each category with a log-linear function
//! `F(t) = beta0 + beta1 * ln t`, and derives two point predictors for a
//! job that has been running `a` seconds:
//!
//! * **conditional median** lifetime: `sqrt(a * e^((1 - beta0)/beta1))`,
//! * **conditional average** lifetime:
//!   `(t_max - a) / (ln t_max - ln a)` with `t_max = e^((1-beta0)/beta1)`.
//!
//! Queued jobs have age zero; following Downey's own evaluation we use a
//! one-second minimum age. For workloads without queues the category
//! characteristic degrades (queue -> type -> class -> single global
//! category), which Downey explicitly allows ("other characteristics can
//! be used").

use std::collections::HashMap;

use qpredict_workload::{Characteristic, Dur, Job, Sym, Workload};

use crate::{Prediction, RunTimePredictor};

/// Which of Downey's two point estimators to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DowneyVariant {
    /// Conditional average lifetime.
    ConditionalAverage,
    /// Conditional median lifetime.
    ConditionalMedian,
}

impl DowneyVariant {
    /// Display tag.
    pub fn name(self) -> &'static str {
        match self {
            DowneyVariant::ConditionalAverage => "downey-avg",
            DowneyVariant::ConditionalMedian => "downey-med",
        }
    }
}

/// Fitted log-linear CDF model of one category.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CdfModel {
    beta0: f64,
    beta1: f64,
    /// `e^((1 - beta0) / beta1)`: the model's maximum lifetime.
    tmax: f64,
    /// Standard error of the fitted CDF level mapped into `ln t` units:
    /// `sqrt(resid_var / n) / beta1`. Shrinks as the category gains
    /// history; zero for a perfect fit.
    se_ln: f64,
}

/// One category's observations and (lazily refitted) model.
#[derive(Debug, Clone, Default)]
struct Category {
    /// Sorted run times, seconds.
    runtimes: Vec<f64>,
    model: Option<CdfModel>,
    dirty: bool,
}

/// Minimum observations before a category's model is trusted.
const MIN_POINTS: usize = 4;

impl Category {
    fn insert(&mut self, rt: f64) {
        let pos = self.runtimes.partition_point(|&x| x <= rt);
        self.runtimes.insert(pos, rt);
        self.dirty = true;
    }

    /// Least-squares fit of `F = beta0 + beta1 ln t` through the
    /// empirical CDF points `(ln t_(i), (i + 0.5) / n)`.
    fn fit(&mut self) -> Option<CdfModel> {
        if self.dirty {
            let _span = qpredict_obs::span("downey.fit");
            self.dirty = false;
            self.model = None;
            let n = self.runtimes.len();
            if n >= MIN_POINTS {
                let nf = n as f64;
                let (mut sx, mut sy, mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
                for (i, &t) in self.runtimes.iter().enumerate() {
                    let x = t.max(1.0).ln();
                    let y = (i as f64 + 0.5) / nf;
                    sx += x;
                    sy += y;
                    sxx += x * x;
                    sxy += x * y;
                    syy += y * y;
                }
                let sxx_c = sxx - sx * sx / nf;
                if sxx_c > 1e-9 {
                    let beta1 = (sxy - sx * sy / nf) / sxx_c;
                    let beta0 = sy / nf - beta1 * sx / nf;
                    if beta1 > 1e-9 {
                        // cap e^30 ~ 10^13 s
                        let expo = ((1.0 - beta0) / beta1).min(30.0);
                        // Residual spread of the fit, via the identity
                        // rss = Syy_c - beta1^2 * Sxx_c (clamped against
                        // rounding), with n-2 regression dofs.
                        let syy_c = syy - sy * sy / nf;
                        let rss = (syy_c - beta1 * beta1 * sxx_c).max(0.0);
                        let resid_var = rss / (nf - 2.0).max(1.0);
                        self.model = Some(CdfModel {
                            beta0,
                            beta1,
                            tmax: expo.exp(),
                            se_ln: (resid_var / nf).sqrt() / beta1,
                        });
                    }
                }
            }
        }
        self.model
    }
}

/// Downey's predictor.
#[derive(Debug, Clone)]
pub struct DowneyPredictor {
    variant: DowneyVariant,
    /// Which characteristic defines categories (queue, or a fallback).
    category_char: Option<Characteristic>,
    categories: HashMap<Option<Sym>, Category>,
    /// Pooled observations across all categories, used when a job's own
    /// category has too little data.
    global: Category,
    total_sum: f64,
    total_n: u64,
    /// Bumps on every state mutation; see
    /// [`RunTimePredictor::generation`].
    generation: u64,
}

impl DowneyPredictor {
    /// Build a predictor categorizing by `category_char` (`None` = one
    /// global category).
    pub fn new(variant: DowneyVariant, category_char: Option<Characteristic>) -> DowneyPredictor {
        DowneyPredictor {
            variant,
            category_char,
            categories: HashMap::new(),
            global: Category::default(),
            total_sum: 0.0,
            total_n: 0,
            generation: 0,
        }
    }

    /// Choose the categorization for a workload the way the paper's
    /// comparison requires: queues when recorded (SDSC), else job type
    /// (ANL), else class, else a single global category.
    pub fn for_workload(variant: DowneyVariant, w: &Workload) -> DowneyPredictor {
        let c = [
            Characteristic::Queue,
            Characteristic::Type,
            Characteristic::Class,
        ]
        .into_iter()
        .find(|&c| w.records(c));
        DowneyPredictor::new(variant, c)
    }

    /// The categorization characteristic in use.
    pub fn category_characteristic(&self) -> Option<Characteristic> {
        self.category_char
    }

    fn category_value(&self, job: &Job) -> Option<Sym> {
        self.category_char.and_then(|c| job.characteristic(c))
    }

    /// Conditional quantile of the remaining-lifetime model: the run
    /// time `t` such that `P(T <= t | T > age) = q` under the fitted
    /// log-linear CDF. `q = 0.5` recovers the paper's conditional
    /// median formula `sqrt(age * t_max)` exactly.
    ///
    /// Returns `None` until the job's category (or the pooled fallback)
    /// has a valid model, and `None` for a quantile outside `[0, 1]`
    /// (including NaN) — a nonsensical `q` is a caller bug we surface as
    /// "no answer" rather than a panic deep inside a simulation.
    pub fn predict_quantile(&mut self, job: &Job, elapsed: Dur, q: f64) -> Option<Dur> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let key = self.category_value(job);
        let model = self
            .categories
            .get_mut(&key)
            .and_then(|c| c.fit())
            .or_else(|| self.global.fit())?;
        let a = elapsed.as_secs_f64().max(1.0).min(model.tmax * 0.999);
        // F(t | T > a) = (F(t) - F(a)) / (1 - F(a)) = q
        let f_a = (model.beta0 + model.beta1 * a.ln()).clamp(0.0, 1.0);
        let target = f_a + q * (1.0 - f_a);
        let ln_t = (target - model.beta0) / model.beta1;
        let t = ln_t.min(30.0).exp().clamp(a, model.tmax);
        Some(Dur::from_secs_f64(t.max(elapsed.as_secs_f64() + 1.0)))
    }

    /// Serialize the complete mutable state as deterministic text.
    /// Fitted models are *not* serialized: the fit is a deterministic
    /// function of the sorted run-time vector, so restoring the vectors
    /// with `dirty = true` reproduces bit-identical models lazily.
    /// `Sym` handles are written as raw interning indices.
    pub fn encode_state(&self) -> String {
        use std::fmt::Write as _;
        let runtimes = |out: &mut String, c: &Category| {
            let _ = write!(out, " rts=");
            for (i, r) in c.runtimes.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}{:016X}", r.to_bits());
            }
            out.push('\n');
        };
        let mut s = String::with_capacity(128);
        let _ = writeln!(s, "downey-state v1");
        let _ = writeln!(
            s,
            "config variant={} char={}",
            match self.variant {
                DowneyVariant::ConditionalAverage => "avg",
                DowneyVariant::ConditionalMedian => "med",
            },
            self.category_char.map(|c| c.abbrev()).unwrap_or("-")
        );
        let _ = writeln!(
            s,
            "totals sum={:016X} n={} gen={}",
            self.total_sum.to_bits(),
            self.total_n,
            self.generation
        );
        let mut keys: Vec<&Option<Sym>> = self.categories.keys().collect();
        keys.sort();
        for key in keys {
            let tag = match key {
                Some(sym) => sym.index().to_string(),
                None => "-".to_string(),
            };
            let _ = write!(s, "cat {tag}");
            runtimes(&mut s, &self.categories[key]);
        }
        let _ = write!(s, "glob");
        runtimes(&mut s, &self.global);
        s
    }

    /// Rebuild a predictor from [`encode_state`](Self::encode_state)
    /// output. `syms` must have the same interning order as the table the
    /// state was recorded under.
    pub fn decode_state(
        syms: &qpredict_workload::SymbolTable,
        text: &str,
    ) -> Result<DowneyPredictor, String> {
        use qpredict_workload::CHARACTERISTICS;
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty downey state")?;
        if magic != "downey-state v1" {
            return Err(format!("not a downey state: {magic:?}"));
        }
        let parse_cat = |rest: &str, key: &str| -> Result<Category, String> {
            let list = rest
                .trim_start()
                .strip_prefix(key)
                .and_then(|w| w.strip_prefix('='))
                .ok_or_else(|| format!("missing {key}= field"))?;
            let runtimes = if list.is_empty() {
                Vec::new()
            } else {
                list.split(',')
                    .map(qpredict_durable::parse_f64_hex)
                    .collect::<Result<Vec<f64>, String>>()?
            };
            Ok(Category {
                runtimes,
                model: None,
                dirty: true,
            })
        };
        let mut p: Option<DowneyPredictor> = None;
        let mut saw_totals = false;
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "config" => {
                    let v = qpredict_durable::parse_kv(rest, &["variant", "char"])?;
                    let variant = match v[0] {
                        "avg" => DowneyVariant::ConditionalAverage,
                        "med" => DowneyVariant::ConditionalMedian,
                        other => return Err(format!("unknown downey variant {other:?}")),
                    };
                    let category_char = if v[1] == "-" {
                        None
                    } else {
                        Some(
                            CHARACTERISTICS
                                .iter()
                                .copied()
                                .find(|c| c.abbrev() == v[1])
                                .ok_or_else(|| format!("unknown characteristic {:?}", v[1]))?,
                        )
                    };
                    p = Some(DowneyPredictor::new(variant, category_char));
                }
                _ if p.is_none() => {
                    return Err("downey state must open with its config record".into());
                }
                "totals" => {
                    let v = qpredict_durable::parse_kv(rest, &["sum", "n", "gen"])?;
                    let p = p.as_mut().expect("checked above");
                    p.total_sum = qpredict_durable::parse_f64_hex(v[0])?;
                    p.total_n = v[1].parse().map_err(|e| format!("bad n: {e}"))?;
                    p.generation = v[2].parse().map_err(|e| format!("bad gen: {e}"))?;
                    saw_totals = true;
                }
                "cat" => {
                    let (tag, rest) = rest.split_once(' ').ok_or("cat: missing runtime list")?;
                    let sym = if tag == "-" {
                        None
                    } else {
                        let i = tag
                            .parse::<usize>()
                            .map_err(|e| format!("bad symbol index {tag:?}: {e}"))?;
                        Some(syms.sym_at(i).ok_or_else(|| {
                            format!("symbol index {i} beyond table of {}", syms.len())
                        })?)
                    };
                    let cat = parse_cat(rest, "rts")?;
                    let p = p.as_mut().expect("checked above");
                    if p.categories.insert(sym, cat).is_some() {
                        return Err(format!("cat: duplicate category {tag:?}"));
                    }
                }
                "glob" => {
                    let p = p.as_mut().expect("checked above");
                    p.global = parse_cat(rest, "rts")?;
                }
                other => return Err(format!("unknown downey state record {other:?}")),
            }
        }
        let p = p.ok_or("downey state missing config record")?;
        if !saw_totals {
            return Err("downey state missing totals record".into());
        }
        Ok(p)
    }

    fn point_estimate(&self, model: CdfModel, age_s: f64) -> f64 {
        let a = age_s.max(1.0).min(model.tmax * 0.999);
        match self.variant {
            DowneyVariant::ConditionalMedian => (a * model.tmax).sqrt(),
            DowneyVariant::ConditionalAverage => {
                let denom = model.tmax.ln() - a.ln();
                if denom <= 1e-9 {
                    model.tmax
                } else {
                    (model.tmax - a) / denom
                }
            }
        }
    }
}

impl RunTimePredictor for DowneyPredictor {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        let _span = qpredict_obs::span("downey.predict");
        let key = self.category_value(job);
        let model = self
            .categories
            .get_mut(&key)
            .and_then(|c| c.fit())
            .or_else(|| self.global.fit());
        match model {
            Some(m) => {
                let v = self.point_estimate(m, elapsed.as_secs_f64());
                // A ±z·se band around the fitted CDF level maps to a
                // multiplicative e^(±z·se) band in time, so the interval
                // tightens as the category accumulates history.
                const Z: f64 = 1.96;
                let zse = (Z * m.se_ln).min(30.0);
                let half = v.max(1.0) * (zse.exp() - (-zse).exp()) / 2.0;
                Prediction {
                    estimate: Dur::from_secs_f64(v.max(1.0)),
                    ci_halfwidth: half,
                    fallback: false,
                }
                .clamped(elapsed)
            }
            None => {
                let fb = if self.total_n > 0 {
                    Dur::from_secs_f64(self.total_sum / self.total_n as f64)
                } else if let Some(l) = job.max_runtime {
                    l
                } else {
                    Dur::HOUR
                };
                Prediction::fallback(fb).clamped(elapsed)
            }
        }
    }

    fn on_complete(&mut self, job: &Job) {
        let key = self.category_value(job);
        let rt = job.runtime.as_secs_f64();
        self.categories.entry(key).or_default().insert(rt);
        self.global.insert(rt);
        self.total_sum += rt;
        self.total_n += 1;
        self.generation += 1;
    }

    fn reset(&mut self) {
        self.categories.clear();
        self.global = Category::default();
        self.total_sum = 0.0;
        self.total_n = 0;
        self.generation += 1;
    }

    fn generation(&self) -> Option<u64> {
        Some(self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::{JobBuilder, JobId, SymbolTable};

    fn qjob(syms: &mut SymbolTable, queue: &str, rt: i64) -> qpredict_workload::Job {
        let q = syms.intern(queue);
        JobBuilder::new()
            .with(Characteristic::Queue, q)
            .runtime(Dur(rt))
            .build(JobId(0))
    }

    fn trained(variant: DowneyVariant) -> (SymbolTable, DowneyPredictor) {
        let mut syms = SymbolTable::new();
        let mut p = DowneyPredictor::new(variant, Some(Characteristic::Queue));
        // Log-uniform-ish runtimes between ~e^2 and ~e^8 seconds.
        for i in 0..50 {
            let rt = (2.0 + 6.0 * (i as f64 + 0.5) / 50.0).exp();
            p.on_complete(&qjob(&mut syms, "batch", rt as i64));
        }
        (syms, p)
    }

    #[test]
    fn cold_start_falls_back() {
        let mut syms = SymbolTable::new();
        let mut p = DowneyPredictor::new(DowneyVariant::ConditionalMedian, None);
        let pred = p.predict(&qjob(&mut syms, "q", 100), Dur::ZERO);
        assert!(pred.fallback);
    }

    #[test]
    fn fit_recovers_log_uniform() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalMedian);
        // For a log-uniform distribution on [e^2, e^8]:
        // beta1 ~ 1/6, beta0 ~ -2/6, tmax ~ e^8.
        let cat = p.categories.get_mut(&Some(syms.intern("batch"))).unwrap();
        let m = cat.fit().unwrap();
        assert!((m.beta1 - 1.0 / 6.0).abs() < 0.02, "beta1 {}", m.beta1);
        assert!((m.tmax.ln() - 8.0).abs() < 0.5, "ln tmax {}", m.tmax.ln());
    }

    #[test]
    fn median_at_age_one_is_sqrt_tmax() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalMedian);
        let pred = p.predict(&qjob(&mut syms, "batch", 1), Dur::ZERO);
        // sqrt(1 * tmax) = sqrt(e^8) = e^4 ~ 54.6 s
        let want = (8.0f64 / 2.0).exp();
        let got = pred.estimate.as_secs_f64();
        assert!((got - want).abs() / want < 0.25, "got {got}, want ~{want}");
    }

    #[test]
    fn median_grows_with_age() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalMedian);
        let young = p.predict(&qjob(&mut syms, "batch", 1), Dur(10));
        let old = p.predict(&qjob(&mut syms, "batch", 1), Dur(1000));
        assert!(old.estimate > young.estimate);
    }

    #[test]
    fn conditional_average_formula() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalAverage);
        let a = 100.0;
        let pred = p.predict(&qjob(&mut syms, "batch", 1), Dur(a as i64));
        let q = syms.intern("batch");
        let m = p.categories.get_mut(&Some(q)).unwrap().fit().unwrap();
        let want = (m.tmax - a) / (m.tmax.ln() - a.ln());
        let got = pred.estimate.as_secs_f64();
        assert!((got - want).abs() <= 1.0, "got {got}, want {want}");
    }

    #[test]
    fn quantile_median_matches_paper_formula() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalMedian);
        let j = qjob(&mut syms, "batch", 1);
        let a = 50.0;
        let med = p.predict_quantile(&j, Dur(a as i64), 0.5).unwrap();
        let q = syms.intern("batch");
        let m = p.categories.get_mut(&Some(q)).unwrap().fit().unwrap();
        let want = (a * m.tmax).sqrt();
        assert!(
            (med.as_secs_f64() - want).abs() / want < 0.02,
            "median {} vs sqrt(a*tmax) {}",
            med.as_secs_f64(),
            want
        );
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalAverage);
        let j = qjob(&mut syms, "batch", 1);
        let q10 = p.predict_quantile(&j, Dur(20), 0.10).unwrap();
        let q50 = p.predict_quantile(&j, Dur(20), 0.50).unwrap();
        let q90 = p.predict_quantile(&j, Dur(20), 0.90).unwrap();
        assert!(q10 <= q50 && q50 <= q90);
        assert!(q10 >= Dur(21), "quantile below elapsed");
        // q = 1 hits (approximately) the model's tmax.
        let q100 = p.predict_quantile(&j, Dur(20), 1.0).unwrap();
        assert!(q100 >= q90);
    }

    #[test]
    fn quantile_out_of_range_is_none() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalMedian);
        let j = qjob(&mut syms, "batch", 1);
        assert!(p.predict_quantile(&j, Dur(20), 0.5).is_some());
        assert!(p.predict_quantile(&j, Dur(20), -0.1).is_none());
        assert!(p.predict_quantile(&j, Dur(20), 1.5).is_none());
        assert!(p.predict_quantile(&j, Dur(20), f64::NAN).is_none());
    }

    #[test]
    fn ci_shrinks_with_history() {
        // Noisy log-uniform training data so the fit has real residual
        // spread; the sin-based jitter is deterministic.
        fn noisy(n: usize) -> (SymbolTable, DowneyPredictor) {
            let mut syms = SymbolTable::new();
            let mut p = DowneyPredictor::new(
                DowneyVariant::ConditionalMedian,
                Some(Characteristic::Queue),
            );
            for i in 0..n {
                let u = (i as f64 + 0.5) / n as f64;
                let jitter = 0.4 * (1e4 * (i as f64 + 1.0)).sin();
                let rt = (2.0 + 6.0 * u + jitter).exp().max(1.0);
                p.on_complete(&qjob(&mut syms, "batch", rt as i64));
            }
            (syms, p)
        }
        let (mut s10, mut p10) = noisy(10);
        let (mut s200, mut p200) = noisy(200);
        let ci10 = p10
            .predict(&qjob(&mut s10, "batch", 1), Dur::ZERO)
            .ci_halfwidth;
        let ci200 = p200
            .predict(&qjob(&mut s200, "batch", 1), Dur::ZERO)
            .ci_halfwidth;
        assert!(ci10.is_finite() && ci10 > 0.0, "ci10 {ci10}");
        assert!(ci200.is_finite() && ci200 > 0.0, "ci200 {ci200}");
        assert!(
            ci200 < ci10 / 2.0,
            "interval should tighten with history: ci10 {ci10}, ci200 {ci200}"
        );
        // And it is a genuine interval, not the old tmax proxy.
        let m = p200
            .categories
            .get_mut(&Some(s200.intern("batch")))
            .unwrap()
            .fit()
            .unwrap();
        assert!(ci200 < m.tmax / 10.0, "ci200 {ci200} vs tmax {}", m.tmax);
    }

    #[test]
    fn quantile_none_without_history() {
        let mut syms = SymbolTable::new();
        let mut p = DowneyPredictor::new(DowneyVariant::ConditionalMedian, None);
        assert!(p
            .predict_quantile(&qjob(&mut syms, "q", 1), Dur::ZERO, 0.5)
            .is_none());
    }

    #[test]
    fn queues_are_separate_categories() {
        // Each queue needs some runtime spread or its fit degenerates
        // and falls back to the global model.
        let mut syms = SymbolTable::new();
        let mut p = DowneyPredictor::new(
            DowneyVariant::ConditionalMedian,
            Some(Characteristic::Queue),
        );
        for i in 0..20 {
            p.on_complete(&qjob(&mut syms, "short", 5 + i));
            p.on_complete(&qjob(&mut syms, "long", 5000 + 100 * i));
        }
        let ps = p.predict(&qjob(&mut syms, "short", 1), Dur::ZERO);
        let pl = p.predict(&qjob(&mut syms, "long", 1), Dur::ZERO);
        assert!(pl.estimate > ps.estimate * 10);
    }

    #[test]
    fn for_workload_picks_best_characteristic() {
        let w = qpredict_workload::synthetic::sdsc95().truncated(50);
        let p = DowneyPredictor::for_workload(DowneyVariant::ConditionalMedian, &w);
        assert_eq!(p.category_characteristic(), Some(Characteristic::Queue));

        let w = qpredict_workload::synthetic::toy(50, 16, 1);
        let p = DowneyPredictor::for_workload(DowneyVariant::ConditionalMedian, &w);
        assert_eq!(p.category_characteristic(), None);
    }

    #[test]
    fn degenerate_identical_runtimes_fall_back() {
        let mut syms = SymbolTable::new();
        let mut p = DowneyPredictor::new(DowneyVariant::ConditionalAverage, None);
        for _ in 0..10 {
            p.on_complete(&qjob(&mut syms, "q", 100));
        }
        let pred = p.predict(&qjob(&mut syms, "q", 1), Dur::ZERO);
        assert!(pred.fallback);
        assert_eq!(pred.estimate, Dur(100)); // global mean
    }

    #[test]
    fn prediction_exceeds_elapsed() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalAverage);
        let pred = p.predict(&qjob(&mut syms, "batch", 1), Dur(100_000));
        assert!(pred.estimate >= Dur(100_001));
    }

    #[test]
    fn reset_clears() {
        let (mut syms, mut p) = trained(DowneyVariant::ConditionalMedian);
        p.reset();
        assert!(p.predict(&qjob(&mut syms, "batch", 1), Dur::ZERO).fallback);
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let (mut syms, p) = trained(DowneyVariant::ConditionalAverage);
        let mut p = p;
        // A second queue plus some uncategorized jobs.
        for i in 0..6i64 {
            p.on_complete(&qjob(&mut syms, "short", 30 + i * 11));
            p.on_complete(&JobBuilder::new().runtime(Dur(200 + i * 7)).build(JobId(0)));
        }
        let state = p.encode_state();
        let back = DowneyPredictor::decode_state(&syms, &state).expect("decodes");
        assert_eq!(back.encode_state(), state, "re-encode must be identical");
        assert_eq!(back.category_characteristic(), p.category_characteristic());
        let mut back = back;
        for i in 0..10i64 {
            let probe = qjob(&mut syms, if i % 2 == 0 { "batch" } else { "short" }, 1);
            let a = p.predict(&probe, Dur(1 + i * 29));
            let b = back.predict(&probe, Dur(1 + i * 29));
            assert_eq!(a, b, "probe {i}");
            assert_eq!(a.ci_halfwidth.to_bits(), b.ci_halfwidth.to_bits());
        }
        let j = qjob(&mut syms, "batch", 512);
        p.on_complete(&j);
        back.on_complete(&j);
        assert_eq!(p.encode_state(), back.encode_state());
    }

    #[test]
    fn state_decode_rejects_garbage() {
        let syms = SymbolTable::new();
        assert!(DowneyPredictor::decode_state(&syms, "").is_err());
        assert!(DowneyPredictor::decode_state(&syms, "downey-state v1\n").is_err());
        let no_config = "downey-state v1\ntotals sum=0000000000000000 n=0 gen=0\n";
        assert!(DowneyPredictor::decode_state(&syms, no_config).is_err());
    }
}
