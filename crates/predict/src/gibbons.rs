//! Gibbons' run-time predictor \[8, 9\], as summarized in the paper.
//!
//! Gibbons uses the fixed template/predictor hierarchy of the paper's
//! Table 3 and tries each in order until one yields a valid prediction:
//!
//! | # | Template        | Predictor         |
//! |---|-----------------|-------------------|
//! | 1 | `(u,e,n,rtime)` | mean              |
//! | 2 | `(u,e)`         | linear regression |
//! | 3 | `(e,n,rtime)`   | mean              |
//! | 4 | `(e)`           | linear regression |
//! | 5 | `(n,rtime)`     | mean              |
//! | 6 | `()`            | linear regression |
//!
//! Differences from the Smith framework, faithfully reproduced:
//!
//! * node ranges are the fixed exponential buckets 1, 2–3, 4–7, 8–15, …;
//! * the regressions at levels 2/4/6 are **weighted** linear regressions
//!   over the `(mean nodes, mean run time)` of each node-bucket
//!   subcategory, weighted by the inverse variance of the subcategory's
//!   run times;
//! * history is never bounded.
//!
//! Jobs lacking a user or executable fall into a single "unknown" value
//! for that characteristic (relevant for traces like SDSC that record
//! neither; level 1 then degenerates toward level 5, which is the
//! behaviour Gibbons' profiler would exhibit on such data).

use std::collections::HashMap;

use qpredict_workload::{Characteristic, Dur, Job, Sym};

use crate::estimators::{mean, weighted_linear, Estimate};
use crate::{Prediction, RunTimePredictor};

/// Run times observed in one `(key, node-bucket)` subcategory.
#[derive(Debug, Clone, Default)]
struct SubCategory {
    runtimes: Vec<f64>,
    nodes: Vec<f64>,
}

impl SubCategory {
    fn push(&mut self, rt: f64, nodes: f64) {
        self.runtimes.push(rt);
        self.nodes.push(nodes);
    }

    fn mean_nodes(&self) -> f64 {
        self.nodes.iter().sum::<f64>() / self.nodes.len() as f64
    }

    fn mean_runtime(&self) -> f64 {
        self.runtimes.iter().sum::<f64>() / self.runtimes.len() as f64
    }

    fn runtime_variance(&self) -> f64 {
        let n = self.runtimes.len() as f64;
        if n < 2.0 {
            return f64::NAN;
        }
        let m = self.mean_runtime();
        self.runtimes.iter().map(|r| (r - m).powi(2)).sum::<f64>() / (n - 1.0)
    }
}

/// Exponential node bucket: 1 -> 0, 2-3 -> 1, 4-7 -> 2, 8-15 -> 3, ...
fn node_bucket(nodes: u32) -> u32 {
    31 - nodes.max(1).leading_zeros()
}

type Key2 = (Option<Sym>, Option<Sym>); // (user, executable)

/// Gibbons' predictor state.
#[derive(Debug, Clone, Default)]
pub struct GibbonsPredictor {
    by_user_exe: HashMap<Key2, HashMap<u32, SubCategory>>,
    by_exe: HashMap<Option<Sym>, HashMap<u32, SubCategory>>,
    global: HashMap<u32, SubCategory>,
    total_sum: f64,
    total_n: u64,
    /// Longest run time observed so far; regressions at levels 2/4/6 can
    /// extrapolate wildly at unseen node counts, so predictions are
    /// clamped to twice this (floor: one hour).
    max_seen: f64,
    /// Bumps on every state mutation; see
    /// [`RunTimePredictor::generation`].
    generation: u64,
}

/// Minimum points for a valid mean at levels 1/3/5.
const MIN_MEAN_POINTS: usize = 2;

impl GibbonsPredictor {
    /// An empty predictor.
    pub fn new() -> GibbonsPredictor {
        GibbonsPredictor::default()
    }

    /// Level 1/3/5: mean of the run times in the exact node bucket,
    /// conditioned on the elapsed running time.
    fn bucket_mean(
        subcats: &HashMap<u32, SubCategory>,
        bucket: u32,
        elapsed_s: f64,
    ) -> Option<Estimate> {
        let sc = subcats.get(&bucket)?;
        let est = mean(
            sc.runtimes
                .iter()
                .copied()
                .filter(|&rt| elapsed_s <= 0.0 || rt > elapsed_s),
        )?;
        (est.n >= MIN_MEAN_POINTS).then_some(est)
    }

    /// Level 2/4/6: weighted linear regression over subcategory means,
    /// weighted by inverse run-time variance. Subcategories need at
    /// least two points to contribute a variance; near-zero variances
    /// are floored to keep weights finite.
    fn subcat_regression(subcats: &HashMap<u32, SubCategory>, nodes: f64) -> Option<Estimate> {
        let mut triples: Vec<(f64, f64, f64)> = subcats
            .values()
            .filter(|sc| sc.runtimes.len() >= 2)
            .map(|sc| {
                let var = sc.runtime_variance().max(1.0); // floor: 1 s^2
                (sc.mean_nodes(), sc.mean_runtime(), 1.0 / var)
            })
            .collect();
        if triples.len() < 2 {
            return None;
        }
        // Deterministic order (HashMap iteration is not). Compare the
        // *whole* triple: two subcategories can share a mean node count,
        // and a tie there would leave their relative order — and hence
        // the f64 accumulation order inside the regression — up to the
        // map's iteration order, breaking cross-process bit-identity.
        triples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        weighted_linear(triples.into_iter(), nodes)
    }

    /// Serialize the complete mutable state as deterministic text;
    /// observation vectors keep insertion order (mean/variance sums
    /// depend on f64 summation order). `Sym` handles are written as raw
    /// interning indices — the restorer must present a symbol table with
    /// the same interning order (see
    /// [`SymbolTable::sym_at`](qpredict_workload::SymbolTable)).
    pub fn encode_state(&self) -> String {
        use std::fmt::Write as _;
        let fx = |x: f64| format!("{:016X}", x.to_bits());
        let sym = |s: Option<Sym>| match s {
            Some(s) => s.index().to_string(),
            None => "-".to_string(),
        };
        let subcat = |out: &mut String, sc: &SubCategory| {
            let _ = write!(out, " rts=");
            for (i, r) in sc.runtimes.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}{}", fx(*r));
            }
            let _ = write!(out, " nodes=");
            for (i, n) in sc.nodes.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}{}", fx(*n));
            }
            out.push('\n');
        };
        let mut s = String::with_capacity(256);
        let _ = writeln!(s, "gibbons-state v1");
        let _ = writeln!(
            s,
            "totals sum={:016X} n={} max={:016X} gen={}",
            self.total_sum.to_bits(),
            self.total_n,
            self.max_seen.to_bits(),
            self.generation
        );
        let mut ue_keys: Vec<&Key2> = self.by_user_exe.keys().collect();
        ue_keys.sort();
        for key in ue_keys {
            let buckets = &self.by_user_exe[key];
            let mut bs: Vec<&u32> = buckets.keys().collect();
            bs.sort();
            for b in bs {
                let _ = write!(s, "ue {} {} {}", sym(key.0), sym(key.1), b);
                subcat(&mut s, &buckets[b]);
            }
        }
        let mut e_keys: Vec<&Option<Sym>> = self.by_exe.keys().collect();
        e_keys.sort();
        for key in e_keys {
            let buckets = &self.by_exe[key];
            let mut bs: Vec<&u32> = buckets.keys().collect();
            bs.sort();
            for b in bs {
                let _ = write!(s, "exe {} {}", sym(*key), b);
                subcat(&mut s, &buckets[b]);
            }
        }
        let mut bs: Vec<&u32> = self.global.keys().collect();
        bs.sort();
        for b in bs {
            let _ = write!(s, "glob {b}");
            subcat(&mut s, &self.global[b]);
        }
        s
    }

    /// Rebuild a predictor from [`encode_state`](Self::encode_state)
    /// output. `syms` must have the same interning order as the table the
    /// state was recorded under.
    pub fn decode_state(
        syms: &qpredict_workload::SymbolTable,
        text: &str,
    ) -> Result<GibbonsPredictor, String> {
        let mut p = GibbonsPredictor::new();
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty gibbons state")?;
        if magic != "gibbons-state v1" {
            return Err(format!("not a gibbons state: {magic:?}"));
        }
        let sym_of = |s: &str| -> Result<Option<Sym>, String> {
            if s == "-" {
                return Ok(None);
            }
            let i = s
                .parse::<usize>()
                .map_err(|e| format!("bad symbol index {s:?}: {e}"))?;
            syms.sym_at(i)
                .map(Some)
                .ok_or_else(|| format!("symbol index {i} beyond table of {}", syms.len()))
        };
        let mut saw_totals = false;
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "totals" => {
                    let v = qpredict_durable::parse_kv(rest, &["sum", "n", "max", "gen"])?;
                    p.total_sum = qpredict_durable::parse_f64_hex(v[0])?;
                    p.total_n = v[1].parse().map_err(|e| format!("bad n: {e}"))?;
                    p.max_seen = qpredict_durable::parse_f64_hex(v[2])?;
                    p.generation = v[3].parse().map_err(|e| format!("bad gen: {e}"))?;
                    saw_totals = true;
                }
                "ue" => {
                    let mut w = rest.split_whitespace();
                    let u = sym_of(w.next().ok_or("ue: missing user")?)?;
                    let e = sym_of(w.next().ok_or("ue: missing executable")?)?;
                    let (b, sc) = parse_subcat(&mut w)?;
                    let slot = p.by_user_exe.entry((u, e)).or_default();
                    if slot.insert(b, sc).is_some() {
                        return Err(format!("ue: duplicate bucket {b}"));
                    }
                }
                "exe" => {
                    let mut w = rest.split_whitespace();
                    let e = sym_of(w.next().ok_or("exe: missing executable")?)?;
                    let (b, sc) = parse_subcat(&mut w)?;
                    let slot = p.by_exe.entry(e).or_default();
                    if slot.insert(b, sc).is_some() {
                        return Err(format!("exe: duplicate bucket {b}"));
                    }
                }
                "glob" => {
                    let mut w = rest.split_whitespace();
                    let (b, sc) = parse_subcat(&mut w)?;
                    if p.global.insert(b, sc).is_some() {
                        return Err(format!("glob: duplicate bucket {b}"));
                    }
                }
                other => return Err(format!("unknown gibbons state record {other:?}")),
            }
        }
        if !saw_totals {
            return Err("gibbons state missing totals record".into());
        }
        Ok(p)
    }
}

/// Parse `<bucket> rts=<hex,…> nodes=<hex,…>` from the remaining words
/// of a subcategory line.
fn parse_subcat<'a>(
    words: &mut impl Iterator<Item = &'a str>,
) -> Result<(u32, SubCategory), String> {
    let bucket = words
        .next()
        .ok_or("missing bucket")?
        .parse::<u32>()
        .map_err(|e| format!("bad bucket: {e}"))?;
    let parse_list = |word: Option<&str>, key: &str| -> Result<Vec<f64>, String> {
        let text = word
            .and_then(|w| w.strip_prefix(key))
            .and_then(|w| w.strip_prefix('='))
            .ok_or_else(|| format!("missing {key}= field"))?;
        if text.is_empty() {
            return Ok(Vec::new());
        }
        text.split(',')
            .map(qpredict_durable::parse_f64_hex)
            .collect()
    };
    let runtimes = parse_list(words.next(), "rts")?;
    let nodes = parse_list(words.next(), "nodes")?;
    if words.next().is_some() {
        return Err("trailing subcategory fields".into());
    }
    if runtimes.len() != nodes.len() {
        return Err(format!(
            "{} runtimes vs {} node counts",
            runtimes.len(),
            nodes.len()
        ));
    }
    Ok((bucket, SubCategory { runtimes, nodes }))
}

impl RunTimePredictor for GibbonsPredictor {
    fn name(&self) -> &'static str {
        "gibbons"
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        let _span = qpredict_obs::span("gibbons.predict");
        let u = job.characteristic(Characteristic::User);
        let e = job.characteristic(Characteristic::Executable);
        let bucket = node_bucket(job.nodes);
        let elapsed_s = elapsed.as_secs_f64();
        let nodes = job.nodes as f64;

        let est = None
            // 1: (u, e, n, rtime) mean
            .or_else(|| {
                self.by_user_exe
                    .get(&(u, e))
                    .and_then(|s| Self::bucket_mean(s, bucket, elapsed_s))
            })
            // 2: (u, e) weighted linear regression
            .or_else(|| {
                self.by_user_exe
                    .get(&(u, e))
                    .and_then(|s| Self::subcat_regression(s, nodes))
            })
            // 3: (e, n, rtime) mean
            .or_else(|| {
                self.by_exe
                    .get(&e)
                    .and_then(|s| Self::bucket_mean(s, bucket, elapsed_s))
            })
            // 4: (e) weighted linear regression
            .or_else(|| {
                self.by_exe
                    .get(&e)
                    .and_then(|s| Self::subcat_regression(s, nodes))
            })
            // 5: (n, rtime) mean
            .or_else(|| Self::bucket_mean(&self.global, bucket, elapsed_s))
            // 6: () weighted linear regression
            .or_else(|| Self::subcat_regression(&self.global, nodes));

        let cap = (self.max_seen * 2.0).max(3600.0);
        match est {
            Some(est) if est.value.is_finite() => Prediction {
                estimate: Dur::from_secs_f64(est.value.clamp(1.0, cap)),
                ci_halfwidth: est.ci,
                fallback: false,
            }
            .clamped(elapsed),
            _ => {
                let fb = if self.total_n > 0 {
                    Dur::from_secs_f64(self.total_sum / self.total_n as f64)
                } else if let Some(m) = job.max_runtime {
                    m
                } else {
                    Dur::HOUR
                };
                Prediction::fallback(fb).clamped(elapsed)
            }
        }
    }

    fn on_complete(&mut self, job: &Job) {
        let _span = qpredict_obs::span("gibbons.learn");
        let u = job.characteristic(Characteristic::User);
        let e = job.characteristic(Characteristic::Executable);
        let bucket = node_bucket(job.nodes);
        let rt = job.runtime.as_secs_f64();
        let nodes = job.nodes as f64;
        self.by_user_exe
            .entry((u, e))
            .or_default()
            .entry(bucket)
            .or_default()
            .push(rt, nodes);
        self.by_exe
            .entry(e)
            .or_default()
            .entry(bucket)
            .or_default()
            .push(rt, nodes);
        self.global.entry(bucket).or_default().push(rt, nodes);
        self.total_sum += rt;
        self.total_n += 1;
        self.max_seen = self.max_seen.max(rt);
        self.generation += 1;
    }

    fn reset(&mut self) {
        // Keep the generation monotone across the wipe so stale cached
        // predictions can never alias a post-reset state.
        let generation = self.generation + 1;
        *self = GibbonsPredictor {
            generation,
            ..GibbonsPredictor::default()
        };
    }

    fn generation(&self) -> Option<u64> {
        Some(self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::{JobBuilder, JobId, SymbolTable};

    fn job(
        syms: &mut SymbolTable,
        user: &str,
        exe: &str,
        nodes: u32,
        rt: i64,
    ) -> qpredict_workload::Job {
        let u = syms.intern(user);
        let e = syms.intern(exe);
        JobBuilder::new()
            .with(Characteristic::User, u)
            .with(Characteristic::Executable, e)
            .nodes(nodes)
            .runtime(Dur(rt))
            .build(JobId(0))
    }

    #[test]
    fn exponential_buckets() {
        assert_eq!(node_bucket(1), 0);
        assert_eq!(node_bucket(2), 1);
        assert_eq!(node_bucket(3), 1);
        assert_eq!(node_bucket(4), 2);
        assert_eq!(node_bucket(7), 2);
        assert_eq!(node_bucket(8), 3);
        assert_eq!(node_bucket(512), 9);
    }

    #[test]
    fn cold_start_falls_back() {
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        let j = job(&mut syms, "a", "x", 4, 100);
        let pred = p.predict(&j, Dur::ZERO);
        assert!(pred.fallback);
    }

    #[test]
    fn level1_exact_match_wins() {
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        // Alice's `x` on 4 nodes: 100 s. Bob's `x` on 4 nodes: 900 s.
        for _ in 0..3 {
            p.on_complete(&job(&mut syms, "alice", "x", 4, 100));
            p.on_complete(&job(&mut syms, "bob", "x", 4, 900));
        }
        let pred = p.predict(&job(&mut syms, "alice", "x", 4, 1), Dur::ZERO);
        assert!(!pred.fallback);
        assert_eq!(pred.estimate, Dur(100));
    }

    #[test]
    fn level3_pools_users_for_same_executable() {
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        for _ in 0..3 {
            p.on_complete(&job(&mut syms, "alice", "x", 4, 100));
            p.on_complete(&job(&mut syms, "bob", "x", 4, 300));
        }
        // Carol has never run `x`: levels 1-2 are empty for her; level 3
        // pools alice's and bob's runs.
        let pred = p.predict(&job(&mut syms, "carol", "x", 4, 1), Dur::ZERO);
        assert!(!pred.fallback);
        assert_eq!(pred.estimate, Dur(200));
    }

    #[test]
    fn level2_regression_extrapolates_across_buckets() {
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        // Alice's `x`: runtime ~ 100 * nodes, in buckets 0 (1 node) and
        // 2 (4 nodes).
        for _ in 0..3 {
            p.on_complete(&job(&mut syms, "alice", "x", 1, 100));
            p.on_complete(&job(&mut syms, "alice", "x", 4, 400));
        }
        // 16 nodes: bucket 4 has no data, level 1 invalid; level 2
        // regression across subcategory means predicts ~1600.
        let pred = p.predict(&job(&mut syms, "alice", "x", 16, 1), Dur::ZERO);
        assert!(!pred.fallback);
        assert!(
            (pred.estimate.seconds() - 1600).abs() <= 2,
            "got {:?}",
            pred.estimate
        );
    }

    #[test]
    fn level5_uses_node_bucket_across_everything() {
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        p.on_complete(&job(&mut syms, "a", "x", 8, 500));
        p.on_complete(&job(&mut syms, "b", "y", 9, 700));
        // New user, new exe, 10 nodes (bucket 3, same as 8 and 9).
        let pred = p.predict(&job(&mut syms, "c", "z", 10, 1), Dur::ZERO);
        assert!(!pred.fallback);
        assert_eq!(pred.estimate, Dur(600));
    }

    #[test]
    fn rtime_conditioning_at_level1() {
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        for rt in [10, 10, 10, 6000, 8000] {
            p.on_complete(&job(&mut syms, "a", "x", 4, rt));
        }
        let queued = p.predict(&job(&mut syms, "a", "x", 4, 1), Dur::ZERO);
        assert_eq!(queued.estimate, Dur((10 + 10 + 10 + 6000 + 8000) / 5));
        let running = p.predict(&job(&mut syms, "a", "x", 4, 1), Dur(100));
        assert_eq!(running.estimate, Dur(7000));
    }

    #[test]
    fn missing_characteristics_pool_as_unknown() {
        let mut p = GibbonsPredictor::new();
        let anon = |nodes: u32, rt: i64| {
            JobBuilder::new()
                .nodes(nodes)
                .runtime(Dur(rt))
                .build(JobId(0))
        };
        p.on_complete(&anon(4, 100));
        p.on_complete(&anon(4, 300));
        let pred = p.predict(&anon(4, 1), Dur::ZERO);
        assert!(!pred.fallback);
        assert_eq!(pred.estimate, Dur(200));
    }

    #[test]
    fn prediction_exceeds_elapsed_even_from_fallback() {
        let mut p = GibbonsPredictor::new();
        let j = JobBuilder::new().nodes(2).build(JobId(0));
        let pred = p.predict(&j, Dur(9999));
        assert!(pred.estimate >= Dur(10_000));
    }

    #[test]
    fn reset_clears_state() {
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        p.on_complete(&job(&mut syms, "a", "x", 4, 100));
        p.reset();
        assert!(
            p.predict(&job(&mut syms, "a", "x", 4, 1), Dur::ZERO)
                .fallback
        );
    }

    #[test]
    fn extrapolation_is_capped() {
        // Steep runtime-vs-nodes slope; a 512-node probe would
        // extrapolate to ~51200 s, but the cap is 2 x max seen (7200 s
        // here... below the 3600 floor? 2*3600=7200).
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        for n in [1u32, 2, 4] {
            for _ in 0..3 {
                p.on_complete(&job(&mut syms, "a", "x", n, (n as i64) * 900));
            }
        }
        let pred = p.predict(&job(&mut syms, "a", "x", 512, 1), Dur::ZERO);
        assert!(!pred.fallback);
        assert!(
            pred.estimate <= Dur(7200),
            "runaway extrapolation: {:?}",
            pred.estimate
        );
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        for i in 0..30i64 {
            let user = ["alice", "bob", "carol"][(i % 3) as usize];
            let exe = ["x", "y"][(i % 2) as usize];
            p.on_complete(&job(&mut syms, user, exe, 1 + (i as u32 % 10), 50 + i * 23));
        }
        // A job with no user/exe exercises the None symbol keys.
        p.on_complete(&JobBuilder::new().nodes(4).runtime(Dur(444)).build(JobId(0)));
        let state = p.encode_state();
        let back = GibbonsPredictor::decode_state(&syms, &state).expect("decodes");
        assert_eq!(back.encode_state(), state, "re-encode must be identical");
        let mut back = back;
        for i in 0..10i64 {
            let probe = job(&mut syms, "alice", "x", 1 + (i as u32 * 3 % 16), 1);
            let a = p.predict(&probe, Dur(i * 17));
            let b = back.predict(&probe, Dur(i * 17));
            assert_eq!(a, b, "probe {i}");
            assert_eq!(a.ci_halfwidth.to_bits(), b.ci_halfwidth.to_bits());
        }
        let j = job(&mut syms, "dave", "x", 8, 321);
        p.on_complete(&j);
        back.on_complete(&j);
        assert_eq!(p.encode_state(), back.encode_state());
    }

    #[test]
    fn state_decode_rejects_garbage() {
        let syms = SymbolTable::new();
        assert!(GibbonsPredictor::decode_state(&syms, "").is_err());
        assert!(GibbonsPredictor::decode_state(&syms, "nonsense\n").is_err());
        // A symbol index beyond the table is a configuration mismatch.
        let bad = "gibbons-state v1\n\
                   totals sum=0000000000000000 n=0 max=0000000000000000 gen=0\n\
                   exe 7 0 rts=4059000000000000 nodes=3FF0000000000000\n";
        assert!(GibbonsPredictor::decode_state(&syms, bad)
            .unwrap_err()
            .contains("beyond table"));
    }

    #[test]
    fn deterministic_regression_order() {
        // Subcategory iteration is sorted; repeated predictions agree.
        let mut syms = SymbolTable::new();
        let mut p = GibbonsPredictor::new();
        for n in [1u32, 2, 4, 8, 16] {
            for _ in 0..3 {
                p.on_complete(&job(&mut syms, "a", "x", n, (n as i64) * 50 + 7));
            }
        }
        let a = p.predict(&job(&mut syms, "a", "x", 32, 1), Dur::ZERO);
        let b = p.predict(&job(&mut syms, "a", "x", 32, 1), Dur::ZERO);
        assert_eq!(a, b);
    }
}
