//! Templates and template sets — the paper's definition of job
//! similarity.
//!
//! A [`Template`] selects a subset of job characteristics (and optionally
//! a node-range size); two jobs matching on all selected values fall into
//! the same *category*. Each template also fixes how predictions are
//! formed from a category (mean or regression, absolute or relative run
//! times, optional conditioning on elapsed running time) and how much
//! history the category retains.

use std::fmt;

use qpredict_workload::{Characteristic, Job, CHARACTERISTICS};

use crate::estimators::RegressionKind;

/// A set of categorical characteristics, as a bitmask over
/// [`CHARACTERISTICS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CharSet(pub u8);

impl CharSet {
    /// The empty set.
    pub const EMPTY: CharSet = CharSet(0);

    /// Build from a list of characteristics.
    pub fn of(chars: &[Characteristic]) -> CharSet {
        let mut m = 0u8;
        for c in chars {
            m |= 1 << c.index();
        }
        CharSet(m)
    }

    /// Does the set contain `c`?
    #[inline]
    pub fn contains(self, c: Characteristic) -> bool {
        self.0 & (1 << c.index()) != 0
    }

    /// Add `c`.
    pub fn insert(&mut self, c: Characteristic) {
        self.0 |= 1 << c.index();
    }

    /// Remove `c`.
    pub fn remove(&mut self, c: Characteristic) {
        self.0 &= !(1 << c.index());
    }

    /// Number of characteristics in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no characteristic is selected.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate the contained characteristics in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Characteristic> {
        CHARACTERISTICS
            .into_iter()
            .filter(move |c| self.contains(*c))
    }
}

/// Which estimator a template applies to its categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Sample mean (the paper found this the single best predictor).
    Mean,
    /// Linear regression of the value on the node count.
    LinearRegression,
    /// Inverse regression (`y = a + b/n`).
    InverseRegression,
    /// Logarithmic regression (`y = a + b ln n`).
    LogRegression,
}

impl EstimatorKind {
    /// All estimator kinds, in the paper's encoding order.
    pub const ALL: [EstimatorKind; 4] = [
        EstimatorKind::Mean,
        EstimatorKind::LinearRegression,
        EstimatorKind::InverseRegression,
        EstimatorKind::LogRegression,
    ];

    /// The regression family, if this is a regression.
    pub fn regression(self) -> Option<RegressionKind> {
        match self {
            EstimatorKind::Mean => None,
            EstimatorKind::LinearRegression => Some(RegressionKind::Linear),
            EstimatorKind::InverseRegression => Some(RegressionKind::Inverse),
            EstimatorKind::LogRegression => Some(RegressionKind::Logarithmic),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            EstimatorKind::Mean => "mean",
            EstimatorKind::LinearRegression => "lin",
            EstimatorKind::InverseRegression => "inv",
            EstimatorKind::LogRegression => "log",
        }
    }
}

/// One similarity template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Template {
    /// Which categorical characteristics must match.
    pub chars: CharSet,
    /// `Some(k)` partitions jobs by node ranges of size `2^k`
    /// (the paper's range sizes are 1..512 in powers of two, so
    /// `k` is 0..=9); `None` ignores node counts.
    pub node_range_log2: Option<u8>,
    /// Maximum data points a category retains (`None` = unlimited; the
    /// paper's limits are powers of two from 2 to 65536).
    pub max_history: Option<u32>,
    /// Store relative run times (`actual / user limit`) instead of
    /// absolute; only applicable to jobs with a recorded limit.
    pub relative: bool,
    /// Condition on elapsed running time: predict only from data points
    /// whose run time exceeds the job's elapsed time.
    pub use_rtime: bool,
    /// How predictions are formed from a category.
    pub estimator: EstimatorKind,
}

impl Template {
    /// A mean-of-absolute-run-times template over `chars` with no node
    /// ranges and unlimited history — the simplest useful form.
    pub fn mean_over(chars: &[Characteristic]) -> Template {
        Template {
            chars: CharSet::of(chars),
            node_range_log2: None,
            max_history: None,
            relative: false,
            use_rtime: false,
            estimator: EstimatorKind::Mean,
        }
    }

    /// Builder-style: set a node range size of `2^k`.
    pub fn with_node_range(mut self, k: u8) -> Template {
        self.node_range_log2 = Some(k.min(9));
        self
    }

    /// Builder-style: use relative run times.
    pub fn relative(mut self) -> Template {
        self.relative = true;
        self
    }

    /// Builder-style: condition on elapsed running time.
    pub fn with_rtime(mut self) -> Template {
        self.use_rtime = true;
        self
    }

    /// Builder-style: cap category history.
    pub fn with_max_history(mut self, h: u32) -> Template {
        self.max_history = Some(h.max(2));
        self
    }

    /// Builder-style: set the estimator.
    pub fn with_estimator(mut self, e: EstimatorKind) -> Template {
        self.estimator = e;
        self
    }

    /// Whether `job` can fall into a category of this template: it must
    /// record every selected characteristic, and relative templates need
    /// a recorded limit.
    pub fn applies_to(&self, job: &Job) -> bool {
        if self.relative && job.max_runtime.is_none() {
            return false;
        }
        self.chars.iter().all(|c| job.characteristic(c).is_some())
    }

    /// The node bucket `job` falls into under this template's range size
    /// (`None` when node counts are ignored).
    pub fn node_bucket(&self, job: &Job) -> Option<u32> {
        self.node_range_log2.map(|k| (job.nodes.max(1) - 1) >> k)
    }

    /// Specificity: how many constraints the template imposes. Used only
    /// for deterministic tie-breaking between equal confidence intervals.
    pub fn specificity(&self) -> u32 {
        self.chars.len() + u32::from(self.node_range_log2.is_some())
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = self.chars.iter().map(|c| c.abbrev().to_string()).collect();
        if let Some(k) = self.node_range_log2 {
            parts.push(format!("n={}", 1u32 << k));
        }
        if self.use_rtime {
            parts.push("rtime".into());
        }
        write!(f, "({})", parts.join(","))?;
        write!(f, "[{}", self.estimator.tag())?;
        if self.relative {
            write!(f, ",rel")?;
        }
        if let Some(h) = self.max_history {
            write!(f, ",h={h}")?;
        }
        write!(f, "]")
    }
}

/// An ordered collection of 1 to 10 templates (the paper's chromosome
/// bounds).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemplateSet {
    templates: Vec<Template>,
}

/// The paper's maximum number of templates per set.
pub const MAX_TEMPLATES: usize = 10;

impl TemplateSet {
    /// Build from templates.
    ///
    /// # Panics
    /// Panics if `templates` is empty or exceeds [`MAX_TEMPLATES`].
    pub fn new(templates: Vec<Template>) -> TemplateSet {
        assert!(
            !templates.is_empty() && templates.len() <= MAX_TEMPLATES,
            "a template set holds 1 to {MAX_TEMPLATES} templates, got {}",
            templates.len()
        );
        TemplateSet { templates }
    }

    /// The templates, in order.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Always false (sets are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// A sensible default set for a workload that records the given
    /// characteristics: progressively coarser user/identity templates
    /// with small node ranges, plus relative variants when limits exist.
    /// This is the starting point when no genetic search has been run.
    pub fn default_for(recorded: &[Characteristic], has_max_runtimes: bool) -> TemplateSet {
        use Characteristic as C;
        let rec = |c: C| recorded.contains(&c);
        let mut ts: Vec<Template> = Vec::new();
        // Most specific: identity characteristics + fine node ranges.
        let mut ident: Vec<C> = Vec::new();
        for c in [C::User, C::Executable, C::Arguments, C::Queue, C::Class] {
            if rec(c) {
                ident.push(c);
            }
        }
        if !ident.is_empty() {
            ts.push(Template::mean_over(&ident).with_node_range(1));
            if has_max_runtimes {
                ts.push(Template::mean_over(&ident).relative());
            }
        }
        if rec(C::User) && rec(C::Executable) {
            ts.push(Template::mean_over(&[C::User, C::Executable]).with_node_range(3));
        }
        if rec(C::User) && rec(C::Queue) {
            ts.push(Template::mean_over(&[C::User, C::Queue]));
        }
        if rec(C::User) {
            ts.push(Template::mean_over(&[C::User]).with_max_history(128));
            if has_max_runtimes {
                ts.push(
                    Template::mean_over(&[C::User])
                        .relative()
                        .with_max_history(128),
                );
            }
        }
        if rec(C::Queue) {
            ts.push(Template::mean_over(&[C::Queue]).with_rtime());
        }
        if rec(C::Executable) {
            ts.push(Template::mean_over(&[C::Executable]));
        }
        ts.push(
            Template::mean_over(&[])
                .with_node_range(5)
                .with_max_history(256),
        );
        ts.truncate(MAX_TEMPLATES);
        TemplateSet::new(ts)
    }
}

impl fmt::Display for TemplateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.templates.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::{Dur, JobBuilder, JobId, SymbolTable};

    #[test]
    fn charset_ops() {
        let mut s = CharSet::of(&[Characteristic::User, Characteristic::Queue]);
        assert!(s.contains(Characteristic::User));
        assert!(!s.contains(Characteristic::Executable));
        assert_eq!(s.len(), 2);
        s.insert(Characteristic::Executable);
        assert_eq!(s.len(), 3);
        s.remove(Characteristic::User);
        assert!(!s.contains(Characteristic::User));
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(
            collected,
            vec![Characteristic::Queue, Characteristic::Executable]
        );
    }

    #[test]
    fn node_buckets() {
        let t = Template::mean_over(&[]).with_node_range(2); // ranges of 4
        let mk = |n: u32| JobBuilder::new().nodes(n).build(JobId(0));
        assert_eq!(t.node_bucket(&mk(1)), Some(0));
        assert_eq!(t.node_bucket(&mk(4)), Some(0));
        assert_eq!(t.node_bucket(&mk(5)), Some(1));
        assert_eq!(t.node_bucket(&mk(8)), Some(1));
        let t0 = Template::mean_over(&[]);
        assert_eq!(t0.node_bucket(&mk(64)), None);
    }

    #[test]
    fn applies_requires_recorded_chars() {
        let mut syms = SymbolTable::new();
        let u = syms.intern("alice");
        let with_user = JobBuilder::new()
            .with(Characteristic::User, u)
            .build(JobId(0));
        let without = JobBuilder::new().build(JobId(1));
        let t = Template::mean_over(&[Characteristic::User]);
        assert!(t.applies_to(&with_user));
        assert!(!t.applies_to(&without));
    }

    #[test]
    fn relative_requires_limit() {
        let t = Template::mean_over(&[]).relative();
        let with_limit = JobBuilder::new().max_runtime(Dur(100)).build(JobId(0));
        let without = JobBuilder::new().build(JobId(1));
        assert!(t.applies_to(&with_limit));
        assert!(!t.applies_to(&without));
    }

    #[test]
    fn display_round_trips_semantics() {
        let t = Template::mean_over(&[Characteristic::User, Characteristic::Executable])
            .with_node_range(2)
            .relative()
            .with_rtime()
            .with_max_history(64);
        let s = t.to_string();
        assert!(s.contains("u"), "{s}");
        assert!(s.contains("e"), "{s}");
        assert!(s.contains("n=4"), "{s}");
        assert!(s.contains("rtime"), "{s}");
        assert!(s.contains("rel"), "{s}");
        assert!(s.contains("h=64"), "{s}");
    }

    #[test]
    #[should_panic(expected = "1 to 10")]
    fn set_rejects_empty() {
        TemplateSet::new(vec![]);
    }

    #[test]
    fn default_set_adapts_to_recording() {
        let anl_like = TemplateSet::default_for(
            &[
                Characteristic::Type,
                Characteristic::User,
                Characteristic::Executable,
                Characteristic::Arguments,
            ],
            true,
        );
        assert!(anl_like.len() >= 4);
        assert!(anl_like.templates().iter().any(|t| t.relative));

        let sdsc_like =
            TemplateSet::default_for(&[Characteristic::Queue, Characteristic::User], false);
        assert!(sdsc_like.len() >= 3);
        assert!(sdsc_like.templates().iter().all(|t| !t.relative));
        assert!(sdsc_like
            .templates()
            .iter()
            .any(|t| t.chars.contains(Characteristic::Queue)));
    }

    #[test]
    fn specificity_ordering() {
        let broad = Template::mean_over(&[]);
        let narrow = Template::mean_over(&[Characteristic::User, Characteristic::Executable])
            .with_node_range(0);
        assert!(narrow.specificity() > broad.specificity());
    }
}
