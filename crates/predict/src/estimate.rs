//! The unified estimation layer: generation-keyed memoization of
//! predictions.
//!
//! Prediction-driven schedulers re-request the same estimates at brutal
//! frequency — LWF re-estimates every waiting job and backfill every
//! running *and* waiting job on each scheduling attempt — while the
//! predictor's learned state only changes when a completion adds
//! history. [`CachingPredictor`] exploits that: it memoizes
//! `(job, elapsed) → Prediction` and trusts a cached entry exactly as
//! long as the inner predictor's [`RunTimePredictor::generation`]
//! counter is unchanged. A completion (or reset) bumps the generation,
//! which invalidates the whole cache — precisely the moments at which
//! any cached estimate could have changed.
//!
//! Correctness argument: a prediction is a pure function of the job's
//! immutable fields, the elapsed running time, and the predictor's
//! learned state. Within one workload a [`qpredict_workload::JobId`]
//! denotes one immutable job, elapsed time is integral seconds (so the
//! key is exact, no bucketing error), and the generation counter is
//! bumped by every state mutation. Hence `(job id, elapsed, generation)`
//! determines the prediction bit-for-bit, and serving a hit is
//! indistinguishable from recomputing. Predictors whose `predict` has
//! observable side effects (e.g. [`crate::FallbackPredictor`]'s
//! degradation accounting) return `None` from `generation()` and are
//! passed through uncached.

use std::collections::HashMap;

use qpredict_workload::{Dur, Job, JobId};

use crate::{DegradationCounts, PredictError, Prediction, RunTimePredictor};

/// Hit/miss/invalidation counters of a [`CachingPredictor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Predictions served from the cache.
    pub hits: u64,
    /// Predictions computed by the inner predictor (includes every call
    /// on an uncacheable inner predictor).
    pub misses: u64,
    /// Cache flushes triggered by a generation change with live entries.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total predictions served.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of predictions served from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Accumulate another accumulator into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.0}% hit rate, {} invalidations)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.invalidations
        )
    }
}

/// Memoizing wrapper around any [`RunTimePredictor`]; see the module
/// docs for the invalidation contract.
#[derive(Debug, Clone)]
pub struct CachingPredictor<P> {
    inner: P,
    cache: HashMap<(JobId, Dur), Prediction>,
    /// Generation the cached entries were computed at.
    cached_gen: Option<u64>,
    stats: CacheStats,
}

impl<P: RunTimePredictor> CachingPredictor<P> {
    /// Wrap `inner` with an empty cache.
    pub fn new(inner: P) -> CachingPredictor<P> {
        CachingPredictor {
            inner,
            cache: HashMap::new(),
            cached_gen: None,
            stats: CacheStats::default(),
        }
    }

    /// The accumulated hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Live cached entries (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Borrow the wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutably borrow the wrapped predictor. Mutating its history
    /// directly is safe for cache coherence — every `predict` re-checks
    /// the generation — but bypasses this wrapper's accounting.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwrap, discarding the cache.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Drop every cached entry if the inner predictor's generation moved
    /// since they were computed.
    fn sync_generation(&mut self, gen: u64) {
        if self.cached_gen != Some(gen) {
            if !self.cache.is_empty() {
                self.stats.invalidations += 1;
                qpredict_obs::counter_add("cache.invalidations", 1);
                self.cache.clear();
            }
            self.cached_gen = Some(gen);
        }
    }
}

impl<P: RunTimePredictor> RunTimePredictor for CachingPredictor<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        let Some(gen) = self.inner.generation() else {
            // Unobservable state: every call must reach the inner
            // predictor. Counted as misses so hit_rate reads 0.
            self.stats.misses += 1;
            qpredict_obs::counter_add("cache.misses", 1);
            return self.inner.predict(job, elapsed);
        };
        self.sync_generation(gen);
        if let Some(p) = self.cache.get(&(job.id, elapsed)) {
            self.stats.hits += 1;
            qpredict_obs::counter_add("cache.hits", 1);
            return *p;
        }
        let p = self.inner.predict(job, elapsed);
        self.stats.misses += 1;
        qpredict_obs::counter_add("cache.misses", 1);
        self.cache.insert((job.id, elapsed), p);
        p
    }

    fn try_predict(&mut self, job: &Job, elapsed: Dur) -> Result<Prediction, PredictError> {
        // Route through the cache; the fallback marker is part of the
        // cached Prediction, so the Ok/Err split is preserved.
        let p = self.predict(job, elapsed);
        if p.fallback {
            Err(PredictError::NoMatchingHistory(p))
        } else {
            Ok(p)
        }
    }

    fn on_complete(&mut self, job: &Job) {
        self.inner.on_complete(job);
        // Invalidation is lazy: the next predict observes the bumped
        // generation. An eager clear here would miscount predictors that
        // don't bump on every completion (e.g. stateless baselines).
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn degradations(&self) -> Option<DegradationCounts> {
        self.inner.degradations()
    }

    fn generation(&self) -> Option<u64> {
        self.inner.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{Template, TemplateSet};
    use crate::{OraclePredictor, SmithPredictor};
    use qpredict_workload::{Characteristic, JobBuilder, SymbolTable};

    fn job(syms: &mut SymbolTable, user: &str, rt: i64, id: u32) -> Job {
        let u = syms.intern(user);
        JobBuilder::new()
            .with(Characteristic::User, u)
            .runtime(Dur(rt))
            .build(JobId(id))
    }

    fn smith() -> SmithPredictor {
        SmithPredictor::new(TemplateSet::new(vec![Template::mean_over(&[
            Characteristic::User,
        ])]))
    }

    #[test]
    fn repeated_predictions_hit_and_match() {
        let mut syms = SymbolTable::new();
        let mut c = CachingPredictor::new(smith());
        c.on_complete(&job(&mut syms, "alice", 100, 0));
        c.on_complete(&job(&mut syms, "alice", 200, 1));
        let q = job(&mut syms, "alice", 1, 2);
        let first = c.predict(&q, Dur::ZERO);
        let second = c.predict(&q, Dur::ZERO);
        assert_eq!(first, second);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0,
            }
        );
    }

    #[test]
    fn completion_invalidates() {
        let mut syms = SymbolTable::new();
        let mut c = CachingPredictor::new(smith());
        c.on_complete(&job(&mut syms, "alice", 100, 0));
        let q = job(&mut syms, "alice", 1, 1);
        let stale = c.predict(&q, Dur::ZERO);
        assert_eq!(stale.estimate, Dur(100));
        c.on_complete(&job(&mut syms, "alice", 300, 2));
        let fresh = c.predict(&q, Dur::ZERO);
        assert_eq!(fresh.estimate, Dur(200), "post-completion mean");
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn cached_matches_uncached_everywhere() {
        // Interleave completions and predictions; the cached stream must
        // equal the uncached one prediction-for-prediction.
        let mut syms = SymbolTable::new();
        let mut plain = smith();
        let mut cached = CachingPredictor::new(smith());
        for round in 0..20i64 {
            let done = job(
                &mut syms,
                if round % 3 == 0 { "a" } else { "b" },
                60 + round * 7,
                round as u32,
            );
            plain.on_complete(&done);
            cached.on_complete(&done);
            for probe in 0..4u32 {
                let q = job(
                    &mut syms,
                    if probe % 2 == 0 { "a" } else { "b" },
                    1,
                    100 + probe,
                );
                for elapsed in [Dur::ZERO, Dur(30)] {
                    // Repeat to force hits.
                    assert_eq!(plain.predict(&q, elapsed), cached.predict(&q, elapsed));
                    assert_eq!(plain.predict(&q, elapsed), cached.predict(&q, elapsed));
                }
            }
        }
        assert!(cached.stats().hits > 0, "repeats must hit");
        assert!(cached.stats().invalidations > 0, "completions must flush");
    }

    #[test]
    fn elapsed_is_part_of_the_key() {
        let mut syms = SymbolTable::new();
        let mut c = CachingPredictor::new(smith());
        for rt in [10, 10, 10, 5000] {
            c.on_complete(&job(&mut syms, "alice", rt, 0));
        }
        let q = job(&mut syms, "alice", 1, 1);
        let queued = c.predict(&q, Dur::ZERO);
        let running = c.predict(&q, Dur(4000));
        assert_ne!(queued.estimate, running.estimate);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn stateless_predictor_caches_forever() {
        let mut syms = SymbolTable::new();
        let mut c = CachingPredictor::new(OraclePredictor);
        let q = job(&mut syms, "alice", 777, 0);
        assert_eq!(c.predict(&q, Dur::ZERO).estimate, Dur(777));
        c.on_complete(&q); // no-op learn: generation stays 0
        assert_eq!(c.predict(&q, Dur::ZERO).estimate, Dur(777));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0,
            }
        );
    }

    #[test]
    fn uncacheable_inner_passes_through() {
        struct Moody(u64);
        impl RunTimePredictor for Moody {
            fn name(&self) -> &'static str {
                "moody"
            }
            fn predict(&mut self, _job: &Job, _elapsed: Dur) -> Prediction {
                self.0 += 1;
                Prediction::fallback(Dur(self.0 as i64))
            }
            fn on_complete(&mut self, _job: &Job) {}
            fn reset(&mut self) {}
            // generation(): default None — predictions vary per call.
        }
        let mut syms = SymbolTable::new();
        let mut c = CachingPredictor::new(Moody(0));
        let q = job(&mut syms, "alice", 1, 0);
        assert_eq!(c.predict(&q, Dur::ZERO).estimate, Dur(1));
        assert_eq!(c.predict(&q, Dur::ZERO).estimate, Dur(2), "no caching");
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.cache_len(), 0);
    }

    #[test]
    fn try_predict_uses_cache_and_preserves_split() {
        let mut syms = SymbolTable::new();
        let mut c = CachingPredictor::new(smith());
        let q = job(&mut syms, "alice", 1, 0);
        assert!(c.try_predict(&q, Dur::ZERO).is_err(), "cold start");
        c.on_complete(&job(&mut syms, "alice", 100, 1));
        assert!(c.try_predict(&q, Dur::ZERO).is_ok());
        let before = c.stats().hits;
        assert!(c.try_predict(&q, Dur::ZERO).is_ok());
        assert_eq!(c.stats().hits, before + 1);
    }

    #[test]
    fn reset_invalidates_via_generation() {
        let mut syms = SymbolTable::new();
        let mut c = CachingPredictor::new(smith());
        c.on_complete(&job(&mut syms, "alice", 100, 0));
        let q = job(&mut syms, "alice", 1, 1);
        assert!(!c.predict(&q, Dur::ZERO).fallback);
        c.reset();
        assert!(
            c.predict(&q, Dur::ZERO).fallback,
            "reset must not serve stale history"
        );
    }

    #[test]
    fn stats_merge_and_rate() {
        let mut a = CacheStats {
            hits: 3,
            misses: 1,
            invalidations: 1,
        };
        let b = CacheStats {
            hits: 1,
            misses: 3,
            invalidations: 0,
        };
        a.merge(&b);
        assert_eq!(a.total(), 8);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = a.to_string();
        assert!(s.contains("50% hit rate"), "{s}");
    }
}
