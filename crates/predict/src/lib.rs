#![warn(missing_docs)]

//! Run-time predictors for batch jobs.
//!
//! The centerpiece is [`SmithPredictor`] — the paper's contribution: a
//! history-based predictor whose notion of "similar past jobs" is defined
//! by a set of [`Template`]s over job characteristics, with per-category
//! mean/regression estimators and confidence intervals; the estimate with
//! the smallest confidence interval wins.
//!
//! The baselines the paper compares against are here too:
//!
//! * [`GibbonsPredictor`] — Gibbons' fixed six-template hierarchy with
//!   weighted linear regression (paper Table 3),
//! * [`DowneyPredictor`] — Downey's log-uniform CDF model with the
//!   conditional-average and conditional-median estimators,
//! * [`MaxRuntimePredictor`] — user-supplied maximum run times (EASY
//!   style), with per-queue maxima derived for traces that record none,
//! * [`OraclePredictor`] — the actual run times (perfect information).
//!
//! All predictors implement [`RunTimePredictor`]: they produce a
//! [`Prediction`] for a job given how long it has already been running,
//! and they learn from completions (`on_complete`), mirroring the paper's
//! step 3 ("at the time each application completes execution").

pub mod baseline;
pub mod category;
pub mod downey;
pub mod error;
pub mod estimate;
pub mod estimators;
pub mod fallback;
pub mod gibbons;
pub mod smith;
pub mod template;

pub use baseline::{MaxRuntimePredictor, OraclePredictor};
pub use downey::{DowneyPredictor, DowneyVariant};
pub use error::ErrorStats;
pub use estimate::{CacheStats, CachingPredictor};
pub use fallback::{DegradationCounts, FallbackPredictor};
pub use gibbons::GibbonsPredictor;
pub use smith::{EstimateOps, SmithPredictor};
pub use template::{CharSet, EstimatorKind, Template, TemplateSet};

use qpredict_workload::{Dur, Job};

/// A run-time prediction with its uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted total run time.
    pub estimate: Dur,
    /// Half-width of the confidence interval around the estimate, in
    /// seconds. `INFINITY` when the source cannot quantify uncertainty
    /// (single data point, fallback paths).
    pub ci_halfwidth: f64,
    /// True when no category could predict and a fallback (global mean,
    /// user limit, or constant) was used.
    pub fallback: bool,
}

impl Prediction {
    /// A prediction from a fallback source.
    pub fn fallback(estimate: Dur) -> Prediction {
        Prediction {
            estimate,
            ci_halfwidth: f64::INFINITY,
            fallback: true,
        }
    }

    /// Clamp the estimate so it is positive and exceeds the elapsed run
    /// time (a running job's total run time is at least `elapsed + 1`).
    pub fn clamped(mut self, elapsed: Dur) -> Prediction {
        self.estimate = self.estimate.max(elapsed + Dur::SECOND).max(Dur::SECOND);
        self
    }
}

/// Why a predictor could not produce a confident prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// No category in the predictor's history matched the job. The
    /// carried [`Prediction`] is the predictor's own last-ditch fallback
    /// value, usable by a caller with nothing better.
    NoMatchingHistory(Prediction),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NoMatchingHistory(p) => {
                write!(
                    f,
                    "no matching history (fallback estimate {:?})",
                    p.estimate
                )
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// A run-time predictor: produces predictions on demand and learns from
/// completed jobs.
pub trait RunTimePredictor {
    /// Short display name, e.g. `"smith"`, `"gibbons"`.
    fn name(&self) -> &'static str;

    /// Predict the **total** run time of `job`, which has been running
    /// for `elapsed` (zero if still queued). Implementations always
    /// return a prediction; when no history applies they fall back and
    /// mark the result accordingly. The returned estimate is positive and
    /// at least `elapsed + 1`.
    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction;

    /// Fallible variant of [`predict`](RunTimePredictor::predict):
    /// returns `Err` instead of a silently degraded estimate, so callers
    /// (notably [`FallbackPredictor`]) can try the next source in a
    /// chain. The default treats any prediction marked `fallback` as a
    /// failure and carries it in the error.
    fn try_predict(&mut self, job: &Job, elapsed: Dur) -> Result<Prediction, PredictError> {
        let p = self.predict(job, elapsed);
        if p.fallback {
            Err(PredictError::NoMatchingHistory(p))
        } else {
            Ok(p)
        }
    }

    /// Incorporate a completed job into the predictor's history.
    fn on_complete(&mut self, job: &Job);

    /// Discard all accumulated history.
    fn reset(&mut self);

    /// Degradation accounting, for predictors that chain multiple
    /// sources ([`FallbackPredictor`]). `None` for simple predictors.
    fn degradations(&self) -> Option<DegradationCounts> {
        None
    }

    /// A monotone counter identifying the predictor's learned state:
    /// implementations bump it on **every** state mutation
    /// (`on_complete`, `reset`), so two `predict` calls for the same
    /// `(job, elapsed)` at the same generation are guaranteed to return
    /// the identical [`Prediction`]. Stateless predictors return a
    /// constant. The default `None` declares the state unobservable (or
    /// `predict` side-effecting, as in [`FallbackPredictor`]'s
    /// degradation accounting), which disables
    /// [`CachingPredictor`] memoization for this predictor.
    fn generation(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_respects_elapsed() {
        let p = Prediction {
            estimate: Dur(10),
            ci_halfwidth: 1.0,
            fallback: false,
        };
        assert_eq!(p.clamped(Dur(100)).estimate, Dur(101));
        assert_eq!(p.clamped(Dur::ZERO).estimate, Dur(10));
    }

    #[test]
    fn fallback_marks_infinite_ci() {
        let p = Prediction::fallback(Dur(60));
        assert!(p.fallback);
        assert!(p.ci_halfwidth.is_infinite());
    }
}
