//! Category storage for the template framework.
//!
//! Each (template, matching characteristic values, node bucket) triple is
//! a *category* holding the data points of completed jobs. Histories are
//! bounded by their template's maximum history: when full, the oldest
//! point is evicted (paper step 3(b)ii).

use std::collections::{HashMap, VecDeque};

use qpredict_workload::Job;

use crate::estimators::RegressionKind;
use crate::template::{Template, TemplateSet};

/// One completed job's contribution to a category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Actual run time, seconds.
    pub runtime: f64,
    /// `runtime / max_runtime` when the job recorded a limit, else `NaN`.
    pub ratio: f64,
    /// Requested node count (regression abscissa).
    pub nodes: f64,
}

impl Point {
    /// Build a point from a completed job.
    pub fn from_job(job: &Job) -> Point {
        Point {
            runtime: job.runtime.as_secs_f64(),
            ratio: job
                .max_runtime
                .map(|m| job.runtime.as_secs_f64() / m.as_secs_f64().max(1.0))
                .unwrap_or(f64::NAN),
            nodes: job.nodes as f64,
        }
    }
}

/// Category identity: which template, the values of its selected
/// characteristics (by characteristic index; `u32::MAX` = slot unused),
/// and the node bucket (`u32::MAX` when the template ignores nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CategoryKey {
    template: u16,
    values: [u32; 8],
    node_bucket: u32,
}

const UNUSED: u32 = u32::MAX;

impl CategoryKey {
    /// The key for `job` under template `t` (index `ti` in its set), or
    /// `None` when the job does not record a selected characteristic or
    /// lacks a limit required by a relative template.
    pub fn for_job(ti: usize, t: &Template, job: &Job) -> Option<CategoryKey> {
        if !t.applies_to(job) {
            return None;
        }
        let mut values = [UNUSED; 8];
        for c in t.chars.iter() {
            let v = job.characteristic(c)?; // applies_to guarantees Some
            values[c.index()] = v.index() as u32;
        }
        Some(CategoryKey {
            template: ti as u16,
            values,
            node_bucket: t.node_bucket(job).unwrap_or(UNUSED),
        })
    }
}

/// Running first/second moments of a value stream, maintained under
/// append and evict. Floating-point drift from incremental subtraction is
/// negligible at trace scale (tens of thousands of bounded values).
#[derive(Debug, Clone, Copy, Default)]
pub struct Moments {
    /// Number of values.
    pub n: usize,
    /// Sum of values.
    pub sum: f64,
    /// Sum of squared values.
    pub sum2: f64,
}

impl Moments {
    fn add(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.sum2 += v * v;
    }

    fn remove(&mut self, v: f64) {
        self.n -= 1;
        self.sum -= v;
        self.sum2 -= v * v;
        if self.n == 0 {
            *self = Moments::default();
        }
    }
}

/// Running sums for a least-squares regression of `y` on `g(x)`:
/// `(n, Σg, Σy, Σg², Σgy, Σy²)` — everything
/// [`crate::estimators::regression_from_moments`] needs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegMoments {
    /// Number of samples.
    pub n: usize,
    /// Sum of transformed abscissas `g(x)`.
    pub sg: f64,
    /// Sum of ordinates.
    pub sy: f64,
    /// Sum of squared transformed abscissas.
    pub sgg: f64,
    /// Sum of cross products.
    pub sgy: f64,
    /// Sum of squared ordinates.
    pub syy: f64,
}

impl RegMoments {
    fn add(&mut self, g: f64, y: f64) {
        self.n += 1;
        self.sg += g;
        self.sy += y;
        self.sgg += g * g;
        self.sgy += g * y;
        self.syy += y * y;
    }
}

/// Bounded history of one category, with running aggregates for the hot
/// mean- and regression-estimator paths.
///
/// Each history belongs to exactly one category, whose key includes the
/// template index — so it only ever serves one `(estimator, relative)`
/// configuration, and one set of regression sums per history suffices.
#[derive(Debug, Clone, Default)]
pub struct History {
    points: VecDeque<Point>,
    abs: Moments,
    ratio: Moments,
    /// Regression configuration and running sums, populated on first
    /// push for regression templates (`None` for mean templates).
    reg: Option<(RegressionKind, bool, RegMoments)>,
}

impl History {
    /// Append a point, evicting the oldest when the template's history
    /// cap is reached, and maintain every running aggregate.
    pub fn push(&mut self, p: Point, t: &Template) {
        let mut evicted = false;
        if let Some(cap) = t.max_history {
            while self.points.len() >= cap.max(1) as usize {
                let old = self.points.pop_front().expect("len checked");
                self.abs.remove(old.runtime);
                if old.ratio.is_finite() {
                    self.ratio.remove(old.ratio);
                }
                evicted = true;
            }
        }
        self.abs.add(p.runtime);
        if p.ratio.is_finite() {
            self.ratio.add(p.ratio);
        }
        self.points.push_back(p);
        if let Some(kind) = t.estimator.regression() {
            self.update_reg(kind, t.relative, p, evicted);
        }
    }

    /// Keep the regression sums in step with the deque. Appends add one
    /// term in insertion order — the same order a fresh scan visits — so
    /// the sums stay bit-identical to scanning. Evictions recompute from
    /// the remaining deque rather than subtracting: subtraction changes
    /// the f64 addition order and would drift from the scan result.
    fn update_reg(&mut self, kind: RegressionKind, relative: bool, p: Point, evicted: bool) {
        let y_of = |q: &Point| if relative { q.ratio } else { q.runtime };
        match self.reg.as_mut() {
            Some((k, rel, m)) if !evicted => {
                debug_assert!(*k == kind && *rel == relative);
                m.add(kind.g(p.nodes), y_of(&p));
            }
            _ => {
                let mut m = RegMoments::default();
                for q in &self.points {
                    m.add(kind.g(q.nodes), y_of(q));
                }
                self.reg = Some((kind, relative, m));
            }
        }
    }

    /// The running regression sums, when this history is maintained for
    /// exactly the requested `(kind, relative)` configuration.
    pub fn reg_moments(&self, kind: RegressionKind, relative: bool) -> Option<RegMoments> {
        match self.reg {
            Some((k, rel, m)) if k == kind && rel == relative => Some(m),
            _ => None,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate stored points, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Point> {
        self.points.iter()
    }

    /// Running moments of the absolute run times (O(1) mean/CI).
    pub fn abs_moments(&self) -> Moments {
        self.abs
    }

    /// Running moments of the run-time-to-limit ratios, over points that
    /// have one.
    pub fn ratio_moments(&self) -> Moments {
        self.ratio
    }
}

/// All categories of one template set.
#[derive(Debug, Clone, Default)]
pub struct CategoryStore {
    map: HashMap<CategoryKey, History>,
}

impl CategoryStore {
    /// An empty store.
    pub fn new() -> CategoryStore {
        CategoryStore::default()
    }

    /// Insert a completed job into every category it matches.
    pub fn insert(&mut self, set: &TemplateSet, job: &Job) {
        let p = Point::from_job(job);
        for (ti, t) in set.templates().iter().enumerate() {
            if let Some(key) = CategoryKey::for_job(ti, t, job) {
                self.map.entry(key).or_default().push(p, t);
            }
        }
    }

    /// The history of `job`'s category under template `ti`, if any
    /// points exist.
    pub fn history(&self, ti: usize, t: &Template, job: &Job) -> Option<&History> {
        let key = CategoryKey::for_job(ti, t, job)?;
        self.map.get(&key).filter(|h| !h.is_empty())
    }

    /// Number of live categories.
    pub fn category_count(&self) -> usize {
        self.map.len()
    }

    /// Total points held across every category (bounded-memory
    /// diagnostics: the serve crate's eviction test watches this).
    pub fn total_points(&self) -> usize {
        self.map.values().map(|h| h.len()).sum()
    }

    /// Discard everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Serialize every category as `cat …` lines, in deterministic
    /// (sorted-key) order, appended to `out`.
    ///
    /// Aggregates (moments, regression sums) are serialized **bitwise**
    /// rather than recomputed on restore: their f64 values carry the
    /// whole add/remove history of the stream, which a replay of only
    /// the surviving points would not reproduce. [`decode_state_line`]
    /// rebuilds a `History` byte-for-byte equal to the original.
    ///
    /// [`decode_state_line`]: CategoryStore::decode_state_line
    pub fn encode_state(&self, out: &mut String) {
        use std::fmt::Write as _;
        let mut keys: Vec<&CategoryKey> = self.map.keys().collect();
        keys.sort_by_key(|k| (k.template, k.values, k.node_bucket));
        let fx = |x: f64| format!("{:016X}", x.to_bits());
        for key in keys {
            let h = &self.map[key];
            let _ = write!(out, "cat {} {}", key.template, key.node_bucket);
            let _ = write!(out, " vals=");
            for (i, v) in key.values.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}{v}");
            }
            let _ = write!(out, " abs={},{},{}", h.abs.n, fx(h.abs.sum), fx(h.abs.sum2));
            let _ = write!(
                out,
                " ratio={},{},{}",
                h.ratio.n,
                fx(h.ratio.sum),
                fx(h.ratio.sum2)
            );
            match h.reg {
                Some((kind, rel, m)) => {
                    let k = match kind {
                        RegressionKind::Linear => "lin",
                        RegressionKind::Inverse => "inv",
                        RegressionKind::Logarithmic => "log",
                    };
                    let _ = write!(
                        out,
                        " reg={k},{},{},{},{},{},{},{}",
                        if rel { 1 } else { 0 },
                        m.n,
                        fx(m.sg),
                        fx(m.sy),
                        fx(m.sgg),
                        fx(m.sgy),
                        fx(m.syy)
                    );
                }
                None => {
                    let _ = write!(out, " reg=-");
                }
            }
            let _ = write!(out, " pts=");
            for (i, p) in h.points.iter().enumerate() {
                let sep = if i == 0 { "" } else { ";" };
                let _ = write!(
                    out,
                    "{sep}{}:{}:{}",
                    fx(p.runtime),
                    fx(p.ratio),
                    fx(p.nodes)
                );
            }
            out.push('\n');
        }
    }

    /// Rebuild one category from the `rest` of a `cat` line produced by
    /// [`encode_state`](CategoryStore::encode_state).
    pub fn decode_state_line(&mut self, rest: &str) -> Result<(), String> {
        let px = |s: &str| -> Result<f64, String> {
            u64::from_str_radix(s, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("bad hex float {s:?}: {e}"))
        };
        let mut words = words_of(rest);
        let template = words
            .next()
            .ok_or("cat: missing template index")?
            .parse::<u16>()
            .map_err(|e| format!("bad template index: {e}"))?;
        let node_bucket = words
            .next()
            .ok_or("cat: missing node bucket")?
            .parse::<u32>()
            .map_err(|e| format!("bad node bucket: {e}"))?;
        let vals = field(words.next(), "vals")?;
        let mut values = [UNUSED; 8];
        let parts: Vec<&str> = vals.split(',').collect();
        if parts.len() != 8 {
            return Err(format!("vals needs 8 entries, found {}", parts.len()));
        }
        for (slot, part) in values.iter_mut().zip(&parts) {
            *slot = part
                .parse::<u32>()
                .map_err(|e| format!("bad value {part:?}: {e}"))?;
        }
        let abs = parse_moments(field(words.next(), "abs")?)?;
        let ratio = parse_moments(field(words.next(), "ratio")?)?;
        let reg_text = field(words.next(), "reg")?;
        let reg = if reg_text == "-" {
            None
        } else {
            let p: Vec<&str> = reg_text.split(',').collect();
            if p.len() != 8 {
                return Err(format!("reg needs 8 entries, found {}", p.len()));
            }
            let kind = match p[0] {
                "lin" => RegressionKind::Linear,
                "inv" => RegressionKind::Inverse,
                "log" => RegressionKind::Logarithmic,
                other => return Err(format!("unknown regression kind {other:?}")),
            };
            let rel = match p[1] {
                "0" => false,
                "1" => true,
                other => return Err(format!("bad relative flag {other:?}")),
            };
            let m = RegMoments {
                n: p[2]
                    .parse::<usize>()
                    .map_err(|e| format!("bad reg n: {e}"))?,
                sg: px(p[3])?,
                sy: px(p[4])?,
                sgg: px(p[5])?,
                sgy: px(p[6])?,
                syy: px(p[7])?,
            };
            Some((kind, rel, m))
        };
        let pts_text = field(words.next(), "pts")?;
        if words.next().is_some() {
            return Err("cat: trailing fields".into());
        }
        let mut points = VecDeque::new();
        if !pts_text.is_empty() {
            for triple in pts_text.split(';') {
                let p: Vec<&str> = triple.split(':').collect();
                if p.len() != 3 {
                    return Err(format!("point needs 3 entries, found {}", p.len()));
                }
                points.push_back(Point {
                    runtime: px(p[0])?,
                    ratio: px(p[1])?,
                    nodes: px(p[2])?,
                });
            }
        }
        if abs.n != points.len() {
            return Err(format!(
                "abs moments count {} disagrees with {} stored points",
                abs.n,
                points.len()
            ));
        }
        let key = CategoryKey {
            template,
            values,
            node_bucket,
        };
        if self
            .map
            .insert(
                key,
                History {
                    points,
                    abs,
                    ratio,
                    reg,
                },
            )
            .is_some()
        {
            return Err("cat: duplicate category key".into());
        }
        Ok(())
    }
}

fn words_of(rest: &str) -> impl Iterator<Item = &str> {
    rest.split_whitespace()
}

fn field<'a>(word: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    word.and_then(|w| w.strip_prefix(key))
        .and_then(|w| w.strip_prefix('='))
        .ok_or_else(|| format!("cat: missing {key}= field"))
}

fn parse_moments(text: &str) -> Result<Moments, String> {
    let p: Vec<&str> = text.split(',').collect();
    if p.len() != 3 {
        return Err(format!("moments need 3 entries, found {}", p.len()));
    }
    let px = |s: &str| -> Result<f64, String> {
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad hex float {s:?}: {e}"))
    };
    Ok(Moments {
        n: p[0]
            .parse::<usize>()
            .map_err(|e| format!("bad moments n: {e}"))?,
        sum: px(p[1])?,
        sum2: px(p[2])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use qpredict_workload::{Characteristic, Dur, JobBuilder, JobId, SymbolTable};

    fn setup() -> (SymbolTable, TemplateSet) {
        let syms = SymbolTable::new();
        let set = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]),
            Template::mean_over(&[]).with_node_range(2),
        ]);
        (syms, set)
    }

    #[test]
    fn insert_places_job_in_all_matching_categories() {
        let (mut syms, set) = setup();
        let u = syms.intern("alice");
        let mut store = CategoryStore::new();
        let j = JobBuilder::new()
            .with(Characteristic::User, u)
            .nodes(3)
            .runtime(Dur(100))
            .build(JobId(0));
        store.insert(&set, &j);
        assert_eq!(store.category_count(), 2);
        assert_eq!(
            store.history(0, &set.templates()[0], &j).map(|h| h.len()),
            Some(1)
        );
        assert_eq!(
            store.history(1, &set.templates()[1], &j).map(|h| h.len()),
            Some(1)
        );
    }

    #[test]
    fn job_without_user_skips_user_template() {
        let (_syms, set) = setup();
        let mut store = CategoryStore::new();
        let j = JobBuilder::new().nodes(3).runtime(Dur(100)).build(JobId(0));
        store.insert(&set, &j);
        assert_eq!(store.category_count(), 1); // only the node-range template
        assert!(store.history(0, &set.templates()[0], &j).is_none());
    }

    #[test]
    fn different_users_get_different_categories() {
        let (mut syms, set) = setup();
        let a = syms.intern("alice");
        let b = syms.intern("bob");
        let mut store = CategoryStore::new();
        let ja = JobBuilder::new()
            .with(Characteristic::User, a)
            .runtime(Dur(100))
            .build(JobId(0));
        let jb = JobBuilder::new()
            .with(Characteristic::User, b)
            .runtime(Dur(900))
            .build(JobId(1));
        store.insert(&set, &ja);
        store.insert(&set, &jb);
        let ha = store.history(0, &set.templates()[0], &ja).unwrap();
        assert_eq!(ha.len(), 1);
        assert_eq!(ha.iter().next().unwrap().runtime, 100.0);
    }

    #[test]
    fn node_buckets_separate_categories() {
        let (_syms, set) = setup();
        let mut store = CategoryStore::new();
        let small = JobBuilder::new().nodes(2).runtime(Dur(10)).build(JobId(0));
        let large = JobBuilder::new().nodes(20).runtime(Dur(99)).build(JobId(1));
        store.insert(&set, &small);
        store.insert(&set, &large);
        let h = store.history(1, &set.templates()[1], &small).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.iter().next().unwrap().runtime, 10.0);
    }

    #[test]
    fn history_cap_evicts_oldest() {
        let t = Template::mean_over(&[]).with_max_history(3);
        let mut h = History::default();
        for i in 0..5 {
            h.push(
                Point {
                    runtime: i as f64,
                    ratio: f64::NAN,
                    nodes: 1.0,
                },
                &t,
            );
        }
        assert_eq!(h.len(), 3);
        let runtimes: Vec<f64> = h.iter().map(|p| p.runtime).collect();
        assert_eq!(runtimes, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn reg_moments_match_scan_after_eviction() {
        use crate::estimators::{regression, regression_from_moments, RegressionKind};
        use crate::template::EstimatorKind;
        let t = Template::mean_over(&[])
            .with_estimator(EstimatorKind::LinearRegression)
            .with_max_history(4);
        let mut h = History::default();
        for i in 0..9 {
            h.push(
                Point {
                    runtime: (i * i) as f64 + 0.25,
                    ratio: f64::NAN,
                    nodes: (1 + i % 5) as f64,
                },
                &t,
            );
        }
        assert_eq!(h.len(), 4);
        let m = h
            .reg_moments(RegressionKind::Linear, false)
            .expect("regression template maintains sums");
        let fast = regression_from_moments(
            RegressionKind::Linear,
            m.n,
            m.sg,
            m.sy,
            m.sgg,
            m.sgy,
            m.syy,
            7.0,
        );
        let scan = regression(
            RegressionKind::Linear,
            h.iter().map(|p| (p.nodes, p.runtime)),
            7.0,
        );
        assert_eq!(
            fast, scan,
            "incremental sums must match a fresh scan exactly"
        );
        // Asking for a different configuration yields nothing.
        assert!(h.reg_moments(RegressionKind::Inverse, false).is_none());
        assert!(h.reg_moments(RegressionKind::Linear, true).is_none());
    }

    #[test]
    fn point_ratio_from_limit() {
        let j = JobBuilder::new()
            .runtime(Dur(50))
            .max_runtime(Dur(200))
            .build(JobId(0));
        let p = Point::from_job(&j);
        assert!((p.ratio - 0.25).abs() < 1e-12);
        let j2 = JobBuilder::new().runtime(Dur(50)).build(JobId(1));
        assert!(Point::from_job(&j2).ratio.is_nan());
    }

    #[test]
    fn clear_empties_store() {
        let (mut syms, set) = setup();
        let u = syms.intern("alice");
        let mut store = CategoryStore::new();
        let j = JobBuilder::new()
            .with(Characteristic::User, u)
            .build(JobId(0));
        store.insert(&set, &j);
        store.clear();
        assert_eq!(store.category_count(), 0);
    }
}
