//! The paper's template-based run-time predictor.
//!
//! Algorithm (Section 2.1):
//!
//! 1. A set of templates `T` defines categories.
//! 2. To predict a job: find the categories it falls into, drop those
//!    that cannot provide a valid prediction, compute a run-time estimate
//!    and confidence interval per category, and **select the estimate
//!    with the smallest confidence interval**.
//! 3. When a job completes, insert it into every matching category,
//!    evicting the oldest point where a maximum history applies.
//!
//! Per-template options: mean or linear/inverse/logarithmic regression of
//! run time on node count; absolute or relative (to the user limit) run
//! times; optional conditioning on the job's elapsed running time ("use
//! only data points whose run time exceeds the elapsed time" — the
//! paper's phrasing says "less than", which we read as a typo since a job
//! running for `a` seconds is guaranteed a run time of at least `a`; see
//! DESIGN.md).

use qpredict_workload::{Dur, Job};

use crate::category::{CategoryStore, History, Point};
use crate::estimators::{mean, mean_from_moments, regression, regression_from_moments, Estimate};
use crate::template::{Template, TemplateSet};
use crate::{Prediction, RunTimePredictor};

/// How a [`SmithPredictor`] produced its estimates: points actually
/// traversed by scans versus points the running-moment fast paths did
/// *not* traverse (what a naive scan-everything implementation would
/// have read). The ratio is the layer's headline win.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EstimateOps {
    /// History points traversed by scan-path estimates (only the
    /// `use_rtime` elapsed-conditioned case scans).
    pub scanned_points: u64,
    /// History points covered by moment-based estimates without being
    /// traversed.
    pub moment_points: u64,
    /// Estimates served from running moments.
    pub moment_estimates: u64,
    /// Estimates served by scanning history.
    pub scan_estimates: u64,
}

impl EstimateOps {
    fn merge(&mut self, other: EstimateOps) {
        self.scanned_points += other.scanned_points;
        self.moment_points += other.moment_points;
        self.moment_estimates += other.moment_estimates;
        self.scan_estimates += other.scan_estimates;
    }
}

/// History-based predictor driven by a [`TemplateSet`].
#[derive(Debug, Clone)]
pub struct SmithPredictor {
    set: TemplateSet,
    store: CategoryStore,
    /// Running mean of all completed run times — the last-resort
    /// fallback when no category can predict.
    global_sum: f64,
    global_n: u64,
    /// Longest run time observed so far; regression templates can
    /// extrapolate wildly at unseen node counts, so predictions are
    /// clamped to twice this (floor: one hour).
    max_seen: f64,
    /// Bumps on every history mutation; see
    /// [`RunTimePredictor::generation`].
    generation: u64,
    ops: EstimateOps,
}

impl SmithPredictor {
    /// Build a predictor over `set` with empty history.
    pub fn new(set: TemplateSet) -> SmithPredictor {
        SmithPredictor {
            set,
            store: CategoryStore::new(),
            global_sum: 0.0,
            global_n: 0,
            max_seen: 0.0,
            generation: 0,
            ops: EstimateOps::default(),
        }
    }

    /// The template set in use.
    pub fn template_set(&self) -> &TemplateSet {
        &self.set
    }

    /// Number of live categories (diagnostics).
    pub fn category_count(&self) -> usize {
        self.store.category_count()
    }

    /// Completed data points resident across all categories. Bounded by
    /// each template's `max_history`; the serve layer watches this to
    /// verify memory stays capped under unbounded streams.
    pub fn resident_points(&self) -> usize {
        self.store.total_points()
    }

    /// Scan-vs-moments accounting over every estimate so far.
    pub fn estimate_ops(&self) -> EstimateOps {
        self.ops
    }

    /// Estimate from one template's category for `job`, if valid.
    fn category_estimate(
        &self,
        ti: usize,
        t: &Template,
        job: &Job,
        elapsed: Dur,
        history: &History,
        ops: &mut EstimateOps,
    ) -> Option<Estimate> {
        let _ = ti;
        let elapsed_s = elapsed.as_secs_f64();
        // Only elapsed-time conditioning needs a per-estimate scan; every
        // other configuration reads running aggregates. (Relative
        // histories never hold non-finite ratios — `applies_to` requires
        // a limit at insertion — so the scan path's ratio filter is
        // vacuous and the aggregates cover the same points.)
        let scans = t.use_rtime && elapsed_s > 0.0;
        // Value extraction: absolute seconds, or ratio-to-limit scaled
        // back to seconds by this job's limit.
        let limit_s = job.max_runtime.map(|m| m.as_secs_f64().max(1.0));
        let filter = |p: &&Point| -> bool {
            if scans && p.runtime <= elapsed_s {
                return false;
            }
            if t.relative && !p.ratio.is_finite() {
                return false;
            }
            true
        };
        let value_of = |p: &Point| -> f64 {
            if t.relative {
                p.ratio
            } else {
                p.runtime
            }
        };
        if scans {
            ops.scan_estimates += 1;
            ops.scanned_points += history.len() as u64;
        } else {
            ops.moment_estimates += 1;
            ops.moment_points += history.len() as u64;
        }
        let est = match t.estimator.regression() {
            None if !scans => {
                let m = if t.relative {
                    history.ratio_moments()
                } else {
                    history.abs_moments()
                };
                mean_from_moments(m.n, m.sum, m.sum2)
            }
            None => mean(history.iter().filter(filter).map(&value_of)),
            Some(kind) if !scans => {
                let m = history
                    .reg_moments(kind, t.relative)
                    .expect("regression history maintains its sums");
                regression_from_moments(
                    kind,
                    m.n,
                    m.sg,
                    m.sy,
                    m.sgg,
                    m.sgy,
                    m.syy,
                    job.nodes as f64,
                )
            }
            Some(kind) => regression(
                kind,
                history
                    .iter()
                    .filter(filter)
                    .map(|p| (p.nodes, value_of(p))),
                job.nodes as f64,
            ),
        }?;
        // Scale relative estimates back to seconds.
        let est = if t.relative {
            let l = limit_s?; // applies_to guarantees Some, but stay safe
            Estimate {
                value: est.value * l,
                ci: est.ci * l,
                n: est.n,
            }
        } else {
            est
        };
        if !est.value.is_finite() {
            return None;
        }
        Some(est)
    }

    fn fallback_estimate(&self, job: &Job) -> Dur {
        if self.global_n > 0 {
            Dur::from_secs_f64(self.global_sum / self.global_n as f64)
        } else if let Some(m) = job.max_runtime {
            m
        } else {
            Dur::HOUR
        }
    }

    /// Serialize the complete mutable state (aggregates bitwise, points,
    /// counters, generation) as deterministic text. The template set is
    /// *not* serialized — the restorer reconstructs it from its own
    /// configuration — but its rendering is fingerprinted so a mismatch
    /// is detected instead of silently mixing histories across sets.
    pub fn encode_state(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + self.store.category_count() * 160);
        let _ = writeln!(s, "smith-state v1");
        let _ = writeln!(s, "set fp={:016X}", set_fingerprint(&self.set));
        let _ = writeln!(
            s,
            "global sum={:016X} n={} max={:016X} gen={}",
            self.global_sum.to_bits(),
            self.global_n,
            self.max_seen.to_bits(),
            self.generation
        );
        let o = self.ops;
        let _ = writeln!(
            s,
            "ops scanned={} moment_pts={} moment_est={} scan_est={}",
            o.scanned_points, o.moment_points, o.moment_estimates, o.scan_estimates
        );
        self.store.encode_state(&mut s);
        s
    }

    /// Rebuild a predictor from [`encode_state`](Self::encode_state)
    /// output and the template set the state was recorded under. The
    /// result is state-identical to the original: every later prediction
    /// is bit-identical.
    pub fn decode_state(set: TemplateSet, text: &str) -> Result<SmithPredictor, String> {
        let mut p = SmithPredictor::new(set);
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty smith state")?;
        if magic != "smith-state v1" {
            return Err(format!("not a smith state: {magic:?}"));
        }
        let mut saw_global = false;
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "set" => {
                    let v = parse_state_kv(rest, &["fp"])?;
                    let fp = u64::from_str_radix(v[0], 16)
                        .map_err(|e| format!("bad set fingerprint: {e}"))?;
                    let have = set_fingerprint(&p.set);
                    if fp != have {
                        return Err(format!(
                            "state was recorded under a different template set \
                             ({fp:016X} != {have:016X})"
                        ));
                    }
                }
                "global" => {
                    let v = parse_state_kv(rest, &["sum", "n", "max", "gen"])?;
                    p.global_sum = f64::from_bits(
                        u64::from_str_radix(v[0], 16).map_err(|e| format!("bad sum: {e}"))?,
                    );
                    p.global_n = v[1].parse().map_err(|e| format!("bad n: {e}"))?;
                    p.max_seen = f64::from_bits(
                        u64::from_str_radix(v[2], 16).map_err(|e| format!("bad max: {e}"))?,
                    );
                    p.generation = v[3].parse().map_err(|e| format!("bad gen: {e}"))?;
                    saw_global = true;
                }
                "ops" => {
                    let v =
                        parse_state_kv(rest, &["scanned", "moment_pts", "moment_est", "scan_est"])?;
                    let d = |s: &str| s.parse::<u64>().map_err(|e| format!("bad counter: {e}"));
                    p.ops = EstimateOps {
                        scanned_points: d(v[0])?,
                        moment_points: d(v[1])?,
                        moment_estimates: d(v[2])?,
                        scan_estimates: d(v[3])?,
                    };
                }
                "cat" => p.store.decode_state_line(rest)?,
                other => return Err(format!("unknown smith state record {other:?}")),
            }
        }
        if !saw_global {
            return Err("smith state missing global record".into());
        }
        Ok(p)
    }
}

/// FNV-1a 64 over a template set's canonical rendering — detects a
/// restore against the wrong configuration.
fn set_fingerprint(set: &TemplateSet) -> u64 {
    qpredict_durable::fnv1a(set.to_string().as_bytes())
}

use qpredict_durable::parse_kv as parse_state_kv;

impl RunTimePredictor for SmithPredictor {
    fn name(&self) -> &'static str {
        "smith"
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        let _span = qpredict_obs::span("smith.predict");
        // Step 2: gather candidate estimates and keep the one with the
        // smallest confidence interval. Ties (e.g. two infinite
        // intervals) break toward more data points, then higher template
        // specificity, then template order — all deterministic.
        let mut best: Option<(f64, usize, u32, usize, f64)> = None;
        // (ci, n, specificity, ti, value) — kept flat for cheap compares.
        let mut ops = EstimateOps::default();
        for (ti, t) in self.set.templates().iter().enumerate() {
            let Some(history) = self.store.history(ti, t, job) else {
                continue;
            };
            let Some(est) = self.category_estimate(ti, t, job, elapsed, history, &mut ops) else {
                continue;
            };
            let better = match best {
                None => true,
                Some((bci, bn, bspec, bti, _)) => (
                    est.ci,
                    std::cmp::Reverse(est.n),
                    std::cmp::Reverse(t.specificity()),
                    ti,
                )
                    .partial_cmp(&(bci, std::cmp::Reverse(bn), std::cmp::Reverse(bspec), bti))
                    .map(|o| o == std::cmp::Ordering::Less)
                    .unwrap_or(false),
            };
            if better {
                best = Some((est.ci, est.n, t.specificity(), ti, est.value));
            }
        }
        qpredict_obs::counter_add("smith.scanned_points", ops.scanned_points);
        qpredict_obs::counter_add("smith.moment_points", ops.moment_points);
        qpredict_obs::counter_add("smith.moment_estimates", ops.moment_estimates);
        qpredict_obs::counter_add("smith.scan_estimates", ops.scan_estimates);
        self.ops.merge(ops);
        let cap = (self.max_seen * 2.0).max(3600.0);
        match best {
            Some((ci, _, _, _, value)) => Prediction {
                estimate: Dur::from_secs_f64(value.clamp(1.0, cap)),
                ci_halfwidth: ci,
                fallback: false,
            }
            .clamped(elapsed),
            None => Prediction::fallback(self.fallback_estimate(job)).clamped(elapsed),
        }
    }

    fn on_complete(&mut self, job: &Job) {
        let _span = qpredict_obs::span("smith.learn");
        self.store.insert(&self.set, job);
        self.global_sum += job.runtime.as_secs_f64();
        self.global_n += 1;
        self.max_seen = self.max_seen.max(job.runtime.as_secs_f64());
        self.generation += 1;
    }

    fn reset(&mut self) {
        self.store.clear();
        self.global_sum = 0.0;
        self.global_n = 0;
        self.max_seen = 0.0;
        self.generation += 1;
        self.ops = EstimateOps::default();
    }

    fn generation(&self) -> Option<u64> {
        Some(self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{EstimatorKind, TemplateSet};
    use qpredict_workload::{Characteristic, JobBuilder, JobId, SymbolTable};

    fn user_set() -> TemplateSet {
        TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]),
            Template::mean_over(&[]),
        ])
    }

    fn job(syms: &mut SymbolTable, user: &str, rt: i64) -> qpredict_workload::Job {
        let u = syms.intern(user);
        JobBuilder::new()
            .with(Characteristic::User, u)
            .runtime(Dur(rt))
            .build(JobId(0))
    }

    #[test]
    fn cold_start_falls_back() {
        let mut syms = SymbolTable::new();
        let mut p = SmithPredictor::new(user_set());
        let j = job(&mut syms, "alice", 100);
        let pred = p.predict(&j, Dur::ZERO);
        assert!(pred.fallback);
        assert_eq!(pred.estimate, Dur::HOUR); // no history, no limit
    }

    #[test]
    fn fallback_prefers_limit_then_global_mean() {
        let mut syms = SymbolTable::new();
        let mut p = SmithPredictor::new(user_set());
        let with_limit = JobBuilder::new().max_runtime(Dur(900)).build(JobId(0));
        assert_eq!(p.predict(&with_limit, Dur::ZERO).estimate, Dur(900));
        // After completions the global mean takes over for jobs with no
        // matching category... but the empty-charset template matches
        // everything, so use a user-only set to exercise the fallback.
        let only_user = TemplateSet::new(vec![Template::mean_over(&[Characteristic::User])]);
        let mut p = SmithPredictor::new(only_user);
        p.on_complete(&job(&mut syms, "alice", 200));
        p.on_complete(&job(&mut syms, "alice", 400));
        let anon = JobBuilder::new().build(JobId(1));
        let pred = p.predict(&anon, Dur::ZERO);
        assert!(pred.fallback);
        assert_eq!(pred.estimate, Dur(300)); // global mean
    }

    #[test]
    fn learns_user_specific_runtimes() {
        let mut syms = SymbolTable::new();
        let mut p = SmithPredictor::new(user_set());
        for _ in 0..5 {
            p.on_complete(&job(&mut syms, "alice", 100));
            p.on_complete(&job(&mut syms, "bob", 1000));
        }
        let pa = p.predict(&job(&mut syms, "alice", 1), Dur::ZERO);
        let pb = p.predict(&job(&mut syms, "bob", 1), Dur::ZERO);
        assert!(!pa.fallback && !pb.fallback);
        assert_eq!(pa.estimate, Dur(100));
        assert_eq!(pb.estimate, Dur(1000));
    }

    #[test]
    fn smallest_ci_wins() {
        // Alice's history is tight (ci ~ 0); the global category mixes
        // alice and bob and is wide. Prediction must come from the tight
        // category.
        let mut syms = SymbolTable::new();
        let mut p = SmithPredictor::new(user_set());
        for _ in 0..4 {
            p.on_complete(&job(&mut syms, "alice", 100));
            p.on_complete(&job(&mut syms, "bob", 2000));
        }
        let pred = p.predict(&job(&mut syms, "alice", 1), Dur::ZERO);
        assert_eq!(pred.estimate, Dur(100));
        assert!(pred.ci_halfwidth < 1.0);
    }

    #[test]
    fn relative_template_scales_by_limit() {
        let mut syms = SymbolTable::new();
        let set = TemplateSet::new(vec![Template::mean_over(&[Characteristic::User]).relative()]);
        let mut p = SmithPredictor::new(set);
        let u = syms.intern("alice");
        // Alice uses 50% of her limit, twice.
        for _ in 0..2 {
            let j = JobBuilder::new()
                .with(Characteristic::User, u)
                .runtime(Dur(300))
                .max_runtime(Dur(600))
                .build(JobId(0));
            p.on_complete(&j);
        }
        // New job with a 2000 s limit: predict ~1000 s.
        let j = JobBuilder::new()
            .with(Characteristic::User, u)
            .max_runtime(Dur(2000))
            .build(JobId(1));
        let pred = p.predict(&j, Dur::ZERO);
        assert!(!pred.fallback);
        assert_eq!(pred.estimate, Dur(1000));
    }

    #[test]
    fn rtime_conditioning_drops_short_points() {
        let mut syms = SymbolTable::new();
        let set = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]).with_rtime()
        ]);
        let mut p = SmithPredictor::new(set);
        // History: mostly short runs, one long.
        for rt in [10, 10, 10, 10, 5000] {
            p.on_complete(&job(&mut syms, "alice", rt));
        }
        // Queued job: mean of all five.
        let queued = p.predict(&job(&mut syms, "alice", 1), Dur::ZERO);
        assert_eq!(queued.estimate, Dur(1008)); // (40 + 5000)/5
                                                // Job already running 60 s: the four 10-second points are
                                                // impossible; predict from the 5000 s point alone.
        let running = p.predict(&job(&mut syms, "alice", 1), Dur(60));
        assert_eq!(running.estimate, Dur(5000));
    }

    #[test]
    fn prediction_exceeds_elapsed() {
        let mut syms = SymbolTable::new();
        let mut p = SmithPredictor::new(user_set());
        for _ in 0..3 {
            p.on_complete(&job(&mut syms, "alice", 100));
        }
        let pred = p.predict(&job(&mut syms, "alice", 1), Dur(500));
        assert!(pred.estimate >= Dur(501));
    }

    #[test]
    fn max_history_keeps_recent_points() {
        let mut syms = SymbolTable::new();
        let set = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]).with_max_history(2)
        ]);
        let mut p = SmithPredictor::new(set);
        p.on_complete(&job(&mut syms, "alice", 1000));
        p.on_complete(&job(&mut syms, "alice", 100));
        p.on_complete(&job(&mut syms, "alice", 100));
        // The 1000 s point must be gone.
        let pred = p.predict(&job(&mut syms, "alice", 1), Dur::ZERO);
        assert_eq!(pred.estimate, Dur(100));
    }

    #[test]
    fn regression_template_tracks_node_scaling() {
        let set = TemplateSet::new(vec![
            Template::mean_over(&[]).with_estimator(EstimatorKind::LinearRegression)
        ]);
        let mut p = SmithPredictor::new(set);
        for (n, rt) in [(1, 100), (2, 200), (4, 400), (8, 800)] {
            let j = JobBuilder::new().nodes(n).runtime(Dur(rt)).build(JobId(0));
            p.on_complete(&j);
        }
        let j = JobBuilder::new().nodes(16).build(JobId(1));
        let pred = p.predict(&j, Dur::ZERO);
        assert!(!pred.fallback);
        assert!((pred.estimate.seconds() - 1600).abs() <= 1);
    }

    #[test]
    fn regression_extrapolation_is_capped() {
        let set = TemplateSet::new(vec![
            Template::mean_over(&[]).with_estimator(EstimatorKind::LinearRegression)
        ]);
        let mut p = SmithPredictor::new(set);
        for (n, rt) in [(1, 600), (2, 1200), (4, 2400)] {
            let j = JobBuilder::new().nodes(n).runtime(Dur(rt)).build(JobId(0));
            p.on_complete(&j);
        }
        // Raw extrapolation at 1024 nodes would be ~614400 s; the cap is
        // 2 x 2400 = 4800.
        let j = JobBuilder::new().nodes(1024).build(JobId(1));
        let pred = p.predict(&j, Dur::ZERO);
        assert!(pred.estimate <= Dur(4800), "got {:?}", pred.estimate);
    }

    #[test]
    fn reset_clears_history() {
        let mut syms = SymbolTable::new();
        let mut p = SmithPredictor::new(user_set());
        p.on_complete(&job(&mut syms, "alice", 100));
        assert!(p.category_count() > 0);
        p.reset();
        assert_eq!(p.category_count(), 0);
        assert!(p.predict(&job(&mut syms, "alice", 1), Dur::ZERO).fallback);
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let mut syms = SymbolTable::new();
        let set = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]).with_max_history(3),
            Template::mean_over(&[]).with_estimator(EstimatorKind::LinearRegression),
            Template::mean_over(&[Characteristic::User])
                .relative()
                .with_node_range(2),
        ]);
        let mut p = SmithPredictor::new(set.clone());
        for i in 0..25i64 {
            let u = syms.intern(if i % 3 == 0 { "alice" } else { "bob" });
            let j = JobBuilder::new()
                .with(Characteristic::User, u)
                .nodes(1 + (i as u32 % 9))
                .runtime(Dur(60 + i * 37))
                .max_runtime(Dur(4000))
                .build(JobId(i as u32));
            p.on_complete(&j);
            // Interleave predictions so ops counters are nonzero.
            let _ = p.predict(&j, Dur::ZERO);
        }
        let state = p.encode_state();
        let back = SmithPredictor::decode_state(set.clone(), &state).expect("decodes");
        assert_eq!(back.encode_state(), state, "re-encode must be identical");
        assert_eq!(back.generation(), p.generation());
        assert_eq!(back.estimate_ops(), p.estimate_ops());
        let mut back = back;
        for i in 0..12i64 {
            let u = syms.intern(if i % 2 == 0 { "alice" } else { "carol" });
            let probe = JobBuilder::new()
                .with(Characteristic::User, u)
                .nodes(1 + (i as u32 % 12))
                .max_runtime(Dur(4000))
                .build(JobId(900 + i as u32));
            let a = p.predict(&probe, Dur(i * 11));
            let b = back.predict(&probe, Dur(i * 11));
            assert_eq!(a, b, "probe {i}");
            assert_eq!(a.estimate.0, b.estimate.0);
            assert_eq!(a.ci_halfwidth.to_bits(), b.ci_halfwidth.to_bits());
        }
        // Learning after the restore stays in lockstep too.
        let u = syms.intern("alice");
        let j = JobBuilder::new()
            .with(Characteristic::User, u)
            .nodes(4)
            .runtime(Dur(777))
            .max_runtime(Dur(4000))
            .build(JobId(999));
        p.on_complete(&j);
        back.on_complete(&j);
        assert_eq!(p.encode_state(), back.encode_state());
    }

    #[test]
    fn state_decode_rejects_wrong_set_and_corruption() {
        let mut syms = SymbolTable::new();
        let mut p = SmithPredictor::new(user_set());
        p.on_complete(&job(&mut syms, "alice", 100));
        let state = p.encode_state();
        let other = TemplateSet::new(vec![Template::mean_over(&[])]);
        assert!(SmithPredictor::decode_state(other, &state)
            .unwrap_err()
            .contains("different template set"));
        assert!(SmithPredictor::decode_state(user_set(), "garbage\n").is_err());
        assert!(SmithPredictor::decode_state(user_set(), "").is_err());
        // A truncated cat line fails loudly, not silently.
        let cut = state.rfind("cat").unwrap() + 10;
        assert!(SmithPredictor::decode_state(user_set(), &state[..cut]).is_err());
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two single-point categories with infinite CI: the more
        // specific (user) template must win over the global one
        // deterministically.
        let mut syms = SymbolTable::new();
        let mut p = SmithPredictor::new(user_set());
        p.on_complete(&job(&mut syms, "alice", 100));
        let pred1 = p.predict(&job(&mut syms, "alice", 1), Dur::ZERO);
        let pred2 = p.predict(&job(&mut syms, "alice", 1), Dur::ZERO);
        assert_eq!(pred1, pred2);
        assert_eq!(pred1.estimate, Dur(100));
    }
}
