//! A degradation chain over predictors: try each learned predictor in
//! order, then the user-supplied maximum run time, then a static default.
//!
//! Early in a trace no learned predictor has matching history, and even a
//! warm predictor meets jobs whose characteristics it has never seen. A
//! production scheduler cannot refuse to answer, so [`FallbackPredictor`]
//! degrades gracefully — Smith → Gibbons/Downey → user limit → constant —
//! and records every degradation event in a [`DegradationCounts`] so the
//! operator can see how often (and how far) estimates fell down the chain.

use std::fmt::Write as _;

use qpredict_workload::{Dur, Job};

use crate::{MaxRuntimePredictor, Prediction, RunTimePredictor};

/// Accounting of which tier served each estimate and how often the chain
/// degraded past a tier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationCounts {
    /// `(tier name, estimates served)` for each learned tier, in chain
    /// order.
    pub served: Vec<(&'static str, u64)>,
    /// Estimates served from the user maximum-run-time tier.
    pub user_limit: u64,
    /// Estimates served from the static default.
    pub static_default: u64,
    /// Total degradation events: each time a tier failed to predict and
    /// the chain moved on.
    pub degradations: u64,
}

impl DegradationCounts {
    /// Total estimates served across all tiers.
    pub fn total_served(&self) -> u64 {
        self.served.iter().map(|&(_, n)| n).sum::<u64>() + self.user_limit + self.static_default
    }

    /// One line per tier with counts, for reports.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let total = self.total_served().max(1);
        for &(name, n) in &self.served {
            let _ = writeln!(
                out,
                "  {n:8} estimates from {name} ({:.1}%)",
                100.0 * n as f64 / total as f64
            );
        }
        let _ = writeln!(
            out,
            "  {:8} estimates from user max-runtime ({:.1}%)",
            self.user_limit,
            100.0 * self.user_limit as f64 / total as f64
        );
        let _ = writeln!(
            out,
            "  {:8} estimates from static default ({:.1}%)",
            self.static_default,
            100.0 * self.static_default as f64 / total as f64
        );
        let _ = writeln!(out, "  {:8} degradation events", self.degradations);
        out
    }
}

/// A predictor that chains other predictors, degrading tier by tier.
///
/// On each query the learned tiers are consulted in order via
/// [`RunTimePredictor::try_predict`]; the first confident answer wins.
/// When every learned tier fails, the job's user-supplied maximum run
/// time answers if present; otherwise a static default does. Completions
/// feed every learned tier so each keeps learning even while outranked.
pub struct FallbackPredictor {
    tiers: Vec<Box<dyn RunTimePredictor + Send>>,
    user_limit: MaxRuntimePredictor,
    static_default: Dur,
    counts: DegradationCounts,
}

impl FallbackPredictor {
    /// Default static last-resort estimate (one hour).
    pub const DEFAULT_ESTIMATE: Dur = Dur::HOUR;

    /// Assemble a chain. `tiers` are consulted in order; `user_limit`
    /// answers when a job carries an explicit maximum run time and every
    /// tier failed; `static_default` is the last resort.
    pub fn new(
        tiers: Vec<Box<dyn RunTimePredictor + Send>>,
        user_limit: MaxRuntimePredictor,
        static_default: Dur,
    ) -> FallbackPredictor {
        let served = tiers.iter().map(|t| (t.name(), 0)).collect();
        FallbackPredictor {
            tiers,
            user_limit,
            static_default,
            counts: DegradationCounts {
                served,
                ..DegradationCounts::default()
            },
        }
    }

    /// The accumulated degradation accounting.
    pub fn counts(&self) -> &DegradationCounts {
        &self.counts
    }
}

impl RunTimePredictor for FallbackPredictor {
    fn name(&self) -> &'static str {
        "fallback"
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        for (i, tier) in self.tiers.iter_mut().enumerate() {
            match tier.try_predict(job, elapsed) {
                Ok(p) => {
                    self.counts.served[i].1 += 1;
                    qpredict_obs::counter_add("degrade.served", 1);
                    return p;
                }
                Err(_) => {
                    self.counts.degradations += 1;
                    qpredict_obs::counter_add("degrade.degradations", 1);
                }
            }
        }
        if job.max_runtime.is_some() {
            self.counts.user_limit += 1;
            qpredict_obs::counter_add("degrade.user_limit", 1);
            return self.user_limit.predict(job, elapsed);
        }
        self.counts.degradations += 1;
        self.counts.static_default += 1;
        qpredict_obs::counter_add("degrade.degradations", 1);
        qpredict_obs::counter_add("degrade.static_default", 1);
        Prediction::fallback(self.static_default).clamped(elapsed)
    }

    fn on_complete(&mut self, job: &Job) {
        for tier in &mut self.tiers {
            tier.on_complete(job);
        }
    }

    fn reset(&mut self) {
        for tier in &mut self.tiers {
            tier.reset();
        }
        let served = self.tiers.iter().map(|t| (t.name(), 0)).collect();
        self.counts = DegradationCounts {
            served,
            ..DegradationCounts::default()
        };
    }

    fn generation(&self) -> Option<u64> {
        // Deliberately uncacheable: every predict() mutates the
        // degradation accounting, so serving a memoized prediction would
        // silently drop observable side effects.
        None
    }

    fn degradations(&self) -> Option<DegradationCounts> {
        Some(self.counts.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GibbonsPredictor, SmithPredictor, Template, TemplateSet};
    use qpredict_workload::{Characteristic, Job, JobBuilder, JobId, SymbolTable, Workload};

    fn chain(w: &Workload) -> FallbackPredictor {
        FallbackPredictor::new(
            vec![
                Box::new(SmithPredictor::new(TemplateSet::new(vec![
                    Template::mean_over(&[Characteristic::User]),
                ]))),
                Box::new(GibbonsPredictor::new()),
            ],
            MaxRuntimePredictor::from_workload(w),
            FallbackPredictor::DEFAULT_ESTIMATE,
        )
    }

    fn user_job(syms: &mut SymbolTable, user: &str, rt: i64) -> Job {
        let u = syms.intern(user);
        JobBuilder::new()
            .with(Characteristic::User, u)
            .runtime(Dur(rt))
            .build(JobId(0))
    }

    #[test]
    fn cold_chain_degrades_to_static_default() {
        let w = Workload::new("t", 8);
        let mut p = chain(&w);
        let mut syms = SymbolTable::new();
        let j = user_job(&mut syms, "alice", 100);
        let pred = p.predict(&j, Dur::ZERO);
        assert_eq!(pred.estimate, FallbackPredictor::DEFAULT_ESTIMATE);
        assert!(pred.fallback);
        let c = p.counts();
        assert_eq!(c.static_default, 1);
        // Two learned tiers failed plus the user-limit tier: 3 events.
        assert_eq!(c.degradations, 3);
    }

    #[test]
    fn cold_chain_uses_user_limit_when_present() {
        let w = Workload::new("t", 8);
        let mut p = chain(&w);
        let j = JobBuilder::new()
            .runtime(Dur(100))
            .max_runtime(Dur(700))
            .build(JobId(0));
        let pred = p.predict(&j, Dur::ZERO);
        assert_eq!(pred.estimate, Dur(700));
        assert_eq!(p.counts().user_limit, 1);
        assert_eq!(p.counts().static_default, 0);
    }

    #[test]
    fn warm_chain_serves_from_first_tier() {
        let w = Workload::new("t", 8);
        let mut p = chain(&w);
        let mut syms = SymbolTable::new();
        p.on_complete(&user_job(&mut syms, "alice", 300));
        p.on_complete(&user_job(&mut syms, "alice", 300));
        let pred = p.predict(&user_job(&mut syms, "alice", 1), Dur::ZERO);
        assert_eq!(pred.estimate, Dur(300));
        assert!(!pred.fallback);
        let c = p.counts();
        assert_eq!(c.served[0], ("smith", 1));
        assert_eq!(c.user_limit + c.static_default, 0);
    }

    #[test]
    fn reset_clears_history_and_counts() {
        let w = Workload::new("t", 8);
        let mut p = chain(&w);
        let mut syms = SymbolTable::new();
        p.on_complete(&user_job(&mut syms, "alice", 300));
        p.predict(&user_job(&mut syms, "alice", 1), Dur::ZERO);
        p.reset();
        assert_eq!(p.counts().total_served(), 0);
        let pred = p.predict(&user_job(&mut syms, "alice", 1), Dur::ZERO);
        assert!(pred.fallback, "history must be gone after reset");
    }

    #[test]
    fn summary_names_every_tier() {
        let w = Workload::new("t", 8);
        let mut p = chain(&w);
        let mut syms = SymbolTable::new();
        p.predict(&user_job(&mut syms, "alice", 1), Dur::ZERO);
        let s = p.counts().summary();
        assert!(s.contains("smith"), "{s}");
        assert!(s.contains("gibbons"), "{s}");
        assert!(s.contains("static default"), "{s}");
        assert!(s.contains("degradation events"), "{s}");
    }
}
