//! Point estimators with confidence intervals.
//!
//! The paper's template framework attaches one of four estimators to each
//! template — a mean or a linear, inverse, or logarithmic regression of
//! run time on the requested node count [13, 4] — and selects among
//! categories by the *smallest confidence interval*. This module
//! implements those estimators over `(x = nodes, y = value)` samples.
//!
//! Confidence/prediction intervals use the normal critical value 1.96
//! (95%); the relative ordering between categories, which is all the
//! selection rule needs, is unaffected by the choice of level.

/// Critical value for the interval half-widths.
const Z: f64 = 1.96;

/// An estimate with its confidence-interval half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate (same unit as the samples).
    pub value: f64,
    /// Half-width of the interval; `INFINITY` when not quantifiable
    /// (e.g. a single sample).
    pub ci: f64,
    /// Number of samples the estimate is based on.
    pub n: usize,
}

/// Sample mean with the standard-error-based interval `z * s / sqrt(n)`.
/// Returns `None` for an empty sample. A single sample yields an infinite
/// interval.
pub fn mean(values: impl Iterator<Item = f64>) -> Option<Estimate> {
    let mut n = 0usize;
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    for v in values {
        n += 1;
        sum += v;
        sum2 += v * v;
    }
    if n == 0 {
        return None;
    }
    let m = sum / n as f64;
    let ci = if n >= 2 {
        let var = ((sum2 - sum * sum / n as f64) / (n as f64 - 1.0)).max(0.0);
        Z * var.sqrt() / (n as f64).sqrt()
    } else {
        f64::INFINITY
    };
    Some(Estimate { value: m, ci, n })
}

/// Sample mean from precomputed moments `(n, sum, sum2)` — the O(1) fast
/// path equivalent of [`mean`].
pub fn mean_from_moments(n: usize, sum: f64, sum2: f64) -> Option<Estimate> {
    if n == 0 {
        return None;
    }
    let m = sum / n as f64;
    let ci = if n >= 2 {
        let var = ((sum2 - sum * sum / n as f64) / (n as f64 - 1.0)).max(0.0);
        Z * var.sqrt() / (n as f64).sqrt()
    } else {
        f64::INFINITY
    };
    Some(Estimate { value: m, ci, n })
}

/// The regression families of the paper: `y = a + b*g(x)` with
/// `g(x) = x`, `1/x`, or `ln x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegressionKind {
    /// `y = a + b x`
    Linear,
    /// `y = a + b / x`
    Inverse,
    /// `y = a + b ln x`
    Logarithmic,
}

impl RegressionKind {
    /// The abscissa transform `g(x)` of this family.
    pub fn g(self, x: f64) -> f64 {
        match self {
            RegressionKind::Linear => x,
            RegressionKind::Inverse => 1.0 / x.max(1e-12),
            RegressionKind::Logarithmic => x.max(1e-12).ln(),
        }
    }
}

/// Least-squares regression of `y` on `g(x)`, evaluated at `x0`, with the
/// standard prediction-interval half-width
/// `z * s_e * sqrt(1 + 1/n + (g0 - mean_g)^2 / S_gg)`.
///
/// Requires at least 3 samples and at least two distinct `x` values;
/// returns `None` otherwise (the category "cannot provide a valid
/// prediction" in the paper's terms).
pub fn regression(
    kind: RegressionKind,
    samples: impl Iterator<Item = (f64, f64)>,
    x0: f64,
) -> Option<Estimate> {
    let mut n = 0usize;
    let (mut sg, mut sy, mut sgg, mut sgy, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (x, y) in samples {
        let g = kind.g(x);
        n += 1;
        sg += g;
        sy += y;
        sgg += g * g;
        sgy += g * y;
        syy += y * y;
    }
    regression_from_moments(kind, n, sg, sy, sgg, sgy, syy, x0)
}

/// [`regression`] from precomputed running sums over the transformed
/// samples `(g, y)` with `g = g(x)` — the O(1) fast path used when the
/// sums are maintained incrementally. The post-sum arithmetic is shared
/// with [`regression`], so for identical sums the results are
/// bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn regression_from_moments(
    kind: RegressionKind,
    n: usize,
    sg: f64,
    sy: f64,
    sgg: f64,
    sgy: f64,
    syy: f64,
    x0: f64,
) -> Option<Estimate> {
    if n < 3 {
        return None;
    }
    let nf = n as f64;
    let s_gg = sgg - sg * sg / nf;
    if s_gg < 1e-9 {
        return None; // all x identical: slope undetermined
    }
    let s_gy = sgy - sg * sy / nf;
    let b = s_gy / s_gg;
    let a = (sy - b * sg) / nf;
    let g0 = kind.g(x0);
    let value = a + b * g0;
    // Residual variance; clamped at zero — catastrophic cancellation in
    // the sum-of-squares moments can drive it slightly negative for
    // near-perfect fits, and a NaN interval would poison the smallest-CI
    // selection.
    let sse = (syy - sy * sy / nf) - b * s_gy;
    let s_e2 = (sse / (nf - 2.0)).max(0.0);
    let mean_g = sg / nf;
    let ci = Z * s_e2.sqrt() * (1.0 + 1.0 / nf + (g0 - mean_g).powi(2) / s_gg).sqrt();
    Some(Estimate { value, ci, n })
}

/// Weighted least-squares regression `y = a + b x` over `(x, y, w)`
/// triples, evaluated at `x0` — the regression Gibbons runs across
/// subcategory means, weighting each by the inverse variance of its run
/// times.
///
/// Falls back to the weighted mean (with infinite interval) when the `x`
/// values do not span (degenerate slope), and returns `None` with fewer
/// than 2 points.
pub fn weighted_linear(
    samples: impl Iterator<Item = (f64, f64, f64)>,
    x0: f64,
) -> Option<Estimate> {
    let mut pts: Vec<(f64, f64, f64)> = samples
        .filter(|&(_, _, w)| w.is_finite() && w > 0.0)
        .collect();
    if pts.is_empty() {
        return None;
    }
    if pts.len() == 1 {
        return Some(Estimate {
            value: pts[0].1,
            ci: f64::INFINITY,
            n: 1,
        });
    }
    // Normalize weights for numeric stability.
    let wsum: f64 = pts.iter().map(|p| p.2).sum();
    for p in &mut pts {
        p.2 /= wsum;
    }
    let xbar: f64 = pts.iter().map(|&(x, _, w)| w * x).sum();
    let ybar: f64 = pts.iter().map(|&(_, y, w)| w * y).sum();
    let sxx: f64 = pts
        .iter()
        .map(|&(x, _, w)| w * (x - xbar) * (x - xbar))
        .sum();
    if sxx < 1e-9 {
        return Some(Estimate {
            value: ybar,
            ci: f64::INFINITY,
            n: pts.len(),
        });
    }
    let sxy: f64 = pts
        .iter()
        .map(|&(x, y, w)| w * (x - xbar) * (y - ybar))
        .sum();
    let b = sxy / sxx;
    let a = ybar - b * xbar;
    let value = a + b * x0;
    // Weighted residual spread as the interval basis.
    let sse: f64 = pts
        .iter()
        .map(|&(x, y, w)| w * (y - a - b * x).powi(2))
        .sum();
    let nf = pts.len() as f64;
    let ci = if pts.len() > 2 {
        Z * (sse * nf / (nf - 2.0)).sqrt() * (1.0 + 1.0 / nf + (x0 - xbar).powi(2) / sxx).sqrt()
    } else {
        f64::INFINITY
    };
    Some(Estimate {
        value,
        ci,
        n: pts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_and_single() {
        assert!(mean(std::iter::empty()).is_none());
        let e = mean([5.0].into_iter()).unwrap();
        assert_eq!(e.value, 5.0);
        assert!(e.ci.is_infinite());
        assert_eq!(e.n, 1);
    }

    #[test]
    fn mean_matches_hand_computation() {
        // xs = 2, 4, 6: mean 4, sample var 4, s 2, se 2/sqrt(3)
        let e = mean([2.0, 4.0, 6.0].into_iter()).unwrap();
        assert!((e.value - 4.0).abs() < 1e-12);
        assert!((e.ci - 1.96 * 2.0 / 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn near_constant_history_never_yields_nan_interval() {
        // Catastrophic cancellation: for huge near-identical values,
        // `sum2 - sum²/n` computed in f64 can come out negative. The
        // variance clamp must turn that into a zero interval, not NaN.
        let vals = [1e8 + 0.1, 1e8 + 0.1, 1e8 + 0.1, 1e8 + 0.1];
        let e = mean(vals.into_iter()).expect("non-empty");
        assert!(e.ci.is_finite(), "ci {}", e.ci);
        assert!(e.ci >= 0.0);
        // The same sums via the moments path.
        let (mut sum, mut sum2) = (0.0, 0.0);
        for v in vals {
            sum += v;
            sum2 += v * v;
        }
        let m = mean_from_moments(vals.len(), sum, sum2).expect("non-empty");
        assert_eq!(e.value.to_bits(), m.value.to_bits());
        assert_eq!(e.ci.to_bits(), m.ci.to_bits());
        // A directly negative variance (as subtract-on-evict residue can
        // produce) clamps to a zero interval.
        let neg = mean_from_moments(2, 2e8, (1e8f64).powi(2) * 2.0 - 1e3).expect("non-empty");
        assert_eq!(neg.ci, 0.0, "negative variance must clamp, got {}", neg.ci);
        assert!(neg.value.is_finite());
    }

    #[test]
    fn near_constant_regression_never_yields_nan_interval() {
        // A perfect fit on huge values: SSE cancels catastrophically.
        let pts: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 1e9 + i as f64)).collect();
        let e = regression(RegressionKind::Linear, pts.iter().copied(), 3.0).expect("fits");
        assert!(e.ci.is_finite() && e.ci >= 0.0, "ci {}", e.ci);
        // Moments with a slightly negative implied SSE must clamp too.
        let (mut n, mut sg, mut sy, mut sgg, mut sgy, mut syy) = (0, 0.0, 0.0, 0.0, 0.0, 0.0);
        for &(x, y) in &pts {
            n += 1;
            sg += x;
            sy += y;
            sgg += x * x;
            sgy += x * y;
            syy += y * y;
        }
        let m =
            regression_from_moments(RegressionKind::Linear, n, sg, sy, sgg, sgy, syy - 1.0, 3.0)
                .expect("fits");
        assert!(m.ci.is_finite() && m.ci >= 0.0, "ci {}", m.ci);
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let small = mean([10.0, 12.0, 14.0].into_iter()).unwrap();
        let big = mean((0..30).map(|i| 10.0 + 4.0 * ((i % 3) as f64))).unwrap();
        assert!(big.ci < small.ci);
    }

    #[test]
    fn linear_regression_recovers_exact_line() {
        // y = 3 + 2x, noiseless
        let pts = [(1.0, 5.0), (2.0, 7.0), (4.0, 11.0), (8.0, 19.0)];
        let e = regression(RegressionKind::Linear, pts.iter().copied(), 16.0).unwrap();
        assert!((e.value - 35.0).abs() < 1e-9);
        assert!(e.ci < 1e-6, "noiseless fit should have ~zero interval");
    }

    #[test]
    fn inverse_regression() {
        // y = 10 + 8/x
        let pts = [(1.0, 18.0), (2.0, 14.0), (4.0, 12.0), (8.0, 11.0)];
        let e = regression(RegressionKind::Inverse, pts.iter().copied(), 16.0).unwrap();
        assert!((e.value - 10.5).abs() < 1e-9);
    }

    #[test]
    fn log_regression() {
        // y = 1 + 2 ln x
        let pts = [
            (1.0, 1.0),
            (std::f64::consts::E, 3.0),
            (std::f64::consts::E.powi(2), 5.0),
        ];
        let e = regression(RegressionKind::Logarithmic, pts.iter().copied(), 1.0).unwrap();
        assert!((e.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_needs_three_points_and_spread() {
        let two = [(1.0, 5.0), (2.0, 7.0)];
        assert!(regression(RegressionKind::Linear, two.iter().copied(), 3.0).is_none());
        let same_x = [(2.0, 5.0), (2.0, 7.0), (2.0, 9.0)];
        assert!(regression(RegressionKind::Linear, same_x.iter().copied(), 3.0).is_none());
    }

    #[test]
    fn regression_interval_grows_with_extrapolation() {
        let pts = [(1.0, 5.1), (2.0, 6.9), (3.0, 9.2), (4.0, 10.8)];
        let near = regression(RegressionKind::Linear, pts.iter().copied(), 2.5).unwrap();
        let far = regression(RegressionKind::Linear, pts.iter().copied(), 50.0).unwrap();
        assert!(far.ci > near.ci);
    }

    #[test]
    fn weighted_linear_prefers_heavy_points() {
        // Heavy points on y = x; one light outlier.
        let pts = [
            (1.0, 1.0, 100.0),
            (2.0, 2.0, 100.0),
            (3.0, 3.0, 100.0),
            (2.0, 10.0, 0.01),
        ];
        let e = weighted_linear(pts.iter().copied(), 4.0).unwrap();
        assert!((e.value - 4.0).abs() < 0.1, "value {}", e.value);
    }

    #[test]
    fn weighted_linear_degenerate_cases() {
        assert!(weighted_linear(std::iter::empty(), 1.0).is_none());
        let one = [(2.0, 7.0, 1.0)];
        let e = weighted_linear(one.iter().copied(), 5.0).unwrap();
        assert_eq!(e.value, 7.0);
        assert!(e.ci.is_infinite());
        // same x -> weighted mean
        let same = [(2.0, 6.0, 1.0), (2.0, 10.0, 3.0)];
        let e = weighted_linear(same.iter().copied(), 5.0).unwrap();
        assert!((e.value - 9.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_linear_ignores_nonpositive_weights() {
        let pts = [
            (1.0, 1.0, 1.0),
            (2.0, 2.0, 1.0),
            (3.0, 3.0, 1.0),
            (9.0, 99.0, 0.0),
            (9.0, 99.0, f64::INFINITY),
        ];
        let e = weighted_linear(pts.iter().copied(), 4.0).unwrap();
        assert!((e.value - 4.0).abs() < 1e-9);
        assert_eq!(e.n, 3);
    }
}
