#![warn(missing_docs)]

//! Shared durable-file codec: checksummed text frames written atomically.
//!
//! Extracted from `search::checkpoint` (PR 2) so the GA checkpoints and
//! the serve WAL/snapshots share one implementation of the three
//! load-bearing mechanisms:
//!
//! * **Checksum framing** — a file body is "sealed" by appending a
//!   trailing `sum <FNV-1a 64 hex>` line covering every byte above it
//!   ([`seal`]); [`check_frame`] verifies the checksum *before* any
//!   field is interpreted and returns the body, so a truncated or
//!   bit-flipped file is rejected with a typed [`FrameError`], never a
//!   panic or silent garbage.
//! * **Atomic replace** — [`write_atomic`] serializes to a sibling
//!   temporary file, fsyncs, then renames into place: a kill at any
//!   instant leaves either the old or the new file intact, never a torn
//!   one.
//! * **Bit-exact floats** — [`f64_hex`]/[`parse_f64_hex`] encode `f64`s
//!   as the hex of their IEEE-754 bit patterns so decode∘encode is the
//!   identity, including for NaN and ±∞.
//!
//! The byte format is unchanged from the original checkpoint codec —
//! search checkpoints written before the extraction still load — and the
//! FNV-1a constants match `qpredict_obs::fnv1a` and the estimation-lock
//! fingerprints.

use std::fmt;
use std::path::Path;

/// FNV-1a 64 offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fold one byte into an FNV-1a 64 hash.
#[inline]
pub fn fnv1a_byte(hash: u64, byte: u8) -> u64 {
    (hash ^ byte as u64).wrapping_mul(FNV_PRIME)
}

/// FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| fnv1a_byte(h, b))
}

/// A filesystem failure with the attempted operation spelled out, e.g.
/// `"rename /dir/x.tmp -> /dir/x"`. The caller wraps it into its own
/// error type; `op` keeps the path and verb out of every call site.
#[derive(Debug)]
pub struct IoOpError {
    /// What was being attempted.
    pub op: String,
    /// The underlying error.
    pub source: std::io::Error,
}

impl fmt::Display for IoOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.op, self.source)
    }
}

impl std::error::Error for IoOpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Why a checksummed frame failed verification.
#[derive(Debug)]
pub enum FrameError {
    /// No trailing `sum ` line at all — the file was truncated before
    /// the seal, or is not a sealed file. `lines` is the 1-based count
    /// of lines actually present (for error messages).
    MissingChecksum {
        /// 1-based line count of the text as read.
        lines: usize,
    },
    /// A `sum ` line exists but its value is not parseable hex.
    UnreadableChecksum {
        /// 1-based line count of the text as read.
        lines: usize,
    },
    /// The recorded checksum does not match the body as read: the file
    /// was truncated or corrupted between the header and the seal.
    Mismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum of the body as read.
        computed: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::MissingChecksum { lines } => {
                write!(f, "missing trailing checksum line after {lines} line(s)")
            }
            FrameError::UnreadableChecksum { lines } => {
                write!(f, "unreadable checksum line at line {lines}")
            }
            FrameError::Mismatch { stored, computed } => write!(
                f,
                "checksum {computed:016X} != recorded {stored:016X} \
                 (truncated or bit-flipped file)"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Append the trailing `sum <hex>` line covering every byte of `body`
/// (which must end with a newline, as line-oriented encoders produce).
pub fn seal(mut body: String) -> String {
    use std::fmt::Write as _;
    let sum = fnv1a(body.as_bytes());
    let _ = writeln!(body, "sum {sum:016X}");
    body
}

/// Verify the trailing checksum of a sealed frame and return the body
/// (checksum line stripped, trailing newline kept — exactly the bytes
/// that were hashed). Nothing in the body is interpreted.
pub fn check_frame(text: &str) -> Result<&str, FrameError> {
    let lines = || text.lines().count().max(1);
    let body_end = match text.rfind("\nsum ") {
        Some(i) => i + 1, // keep the newline in the checksummed body
        None => return Err(FrameError::MissingChecksum { lines: lines() }),
    };
    let (body, sum_line) = text.split_at(body_end);
    let stored = sum_line
        .trim_end()
        .strip_prefix("sum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or(FrameError::UnreadableChecksum { lines: lines() })?;
    let computed = fnv1a(body.as_bytes());
    if stored != computed {
        return Err(FrameError::Mismatch { stored, computed });
    }
    Ok(body)
}

/// Write `text` to `path` atomically: create the parent directory if
/// needed, serialize to a sibling temp file (`path` with its extension
/// replaced by `tmp_extension`), fsync, then rename over `path`.
pub fn write_atomic(path: &Path, text: &str, tmp_extension: &str) -> Result<(), IoOpError> {
    let io_err = |op: String| move |source: std::io::Error| IoOpError { op, source };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(io_err(format!("create {}", dir.display())))?;
        }
    }
    let tmp = path.with_extension(tmp_extension);
    {
        use std::io::Write as _;
        let mut f =
            std::fs::File::create(&tmp).map_err(io_err(format!("create {}", tmp.display())))?;
        f.write_all(text.as_bytes())
            .map_err(io_err(format!("write {}", tmp.display())))?;
        f.sync_all()
            .map_err(io_err(format!("sync {}", tmp.display())))?;
    }
    std::fs::rename(&tmp, path).map_err(io_err(format!(
        "rename {} -> {}",
        tmp.display(),
        path.display()
    )))
}

/// Read `path` to a string, tagging failures with the operation.
pub fn read_to_string(path: &Path) -> Result<String, IoOpError> {
    std::fs::read_to_string(path).map_err(|source| IoOpError {
        op: format!("read {}", path.display()),
        source,
    })
}

/// The hex of an `f64`'s IEEE-754 bit pattern (`{:016X}`), the
/// workspace's bit-exact float encoding.
pub fn f64_hex(x: f64) -> String {
    format!("{:016X}", x.to_bits())
}

/// Parse a [`f64_hex`]-encoded float back, bit-exactly.
pub fn parse_f64_hex(s: &str) -> Result<f64, String> {
    parse_u64_hex(s).map(f64::from_bits)
}

/// Parse a `{:016X}`-style hex `u64`.
pub fn parse_u64_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex {s:?}: {e}"))
}

/// Split a record line of `key=value` words into the values, in the
/// order given by `want`, rejecting missing, extra, or misnamed fields.
pub fn parse_kv<'a>(rest: &'a str, want: &[&str]) -> Result<Vec<&'a str>, String> {
    let mut out = Vec::with_capacity(want.len());
    let words: Vec<&str> = rest.split_whitespace().collect();
    if words.len() != want.len() {
        return Err(format!(
            "expected {} fields, found {}",
            want.len(),
            words.len()
        ));
    }
    for (word, key) in words.iter().zip(want) {
        let value = word
            .strip_prefix(key)
            .and_then(|v| v.strip_prefix('='))
            .ok_or_else(|| format!("expected {key}=..., found {word:?}"))?;
        out.push(value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vector() {
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn seal_then_check_round_trips() {
        let body = "magic v1\nkey value\n".to_string();
        let sealed = seal(body.clone());
        assert!(sealed.starts_with(&body));
        assert!(sealed.ends_with('\n'));
        assert_eq!(check_frame(&sealed).expect("verifies"), body);
    }

    #[test]
    fn truncation_and_flips_are_detected() {
        let sealed = seal("magic v1\na 1\nb 2\nc 3\n".to_string());
        // Every truncation except "only the final newline removed"
        // (which leaves an intact checksum line) must be rejected.
        for cut in 1..sealed.len() - 1 {
            assert!(check_frame(&sealed[..cut]).is_err(), "cut at {cut}");
        }
        // A bit flip anywhere must never yield a *different* body: either
        // the frame is rejected, or only framing whitespace was hit and
        // the body comes back byte-identical.
        let original = check_frame(&sealed).unwrap().to_string();
        for i in 0..sealed.len() {
            let mut bytes = sealed.as_bytes().to_vec();
            bytes[i] ^= 0x01;
            let Ok(mutated) = String::from_utf8(bytes) else {
                continue;
            };
            if let Ok(body) = check_frame(&mutated) {
                assert_eq!(body, original, "flip at byte {i} corrupted the body");
            }
        }
    }

    #[test]
    fn frame_errors_are_typed() {
        assert!(matches!(
            check_frame("no seal here\n"),
            Err(FrameError::MissingChecksum { .. })
        ));
        assert!(matches!(
            check_frame("body\nsum not-hex\n"),
            Err(FrameError::UnreadableChecksum { .. })
        ));
        assert!(matches!(
            check_frame("body\nsum 0000000000000000\n"),
            Err(FrameError::Mismatch { .. })
        ));
    }

    #[test]
    fn write_atomic_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("qpredict_durable_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        write_atomic(&path, "hello\n", "snap.tmp").expect("write");
        assert!(!path.with_extension("snap.tmp").exists());
        assert_eq!(read_to_string(&path).expect("read"), "hello\n");
        write_atomic(&path, "world\n", "snap.tmp").expect("overwrite");
        assert_eq!(read_to_string(&path).expect("reread"), "world\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_missing_file_tags_the_operation() {
        let err = read_to_string(Path::new("/nonexistent/qpredict/x.snap")).unwrap_err();
        assert!(err.op.contains("read"), "{err}");
        assert!(err.to_string().contains("x.snap"));
    }

    #[test]
    fn f64_hex_is_bitwise_including_non_finite() {
        for x in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let back = parse_f64_hex(&f64_hex(x)).expect("parses");
            assert_eq!(x.to_bits(), back.to_bits());
        }
        assert!(parse_f64_hex("zz").is_err());
    }

    #[test]
    fn parse_kv_enforces_names_and_arity() {
        assert_eq!(
            parse_kv("a=1 b=two", &["a", "b"]).expect("parses"),
            vec!["1", "two"]
        );
        assert!(parse_kv("a=1", &["a", "b"]).is_err());
        assert!(parse_kv("a=1 c=2", &["a", "b"]).is_err());
        assert!(parse_kv("a=1 b=2 extra=3", &["a", "b"]).is_err());
    }
}
