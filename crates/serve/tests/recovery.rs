//! Integration tests for the online predictor service: kill-anywhere
//! recovery, corrupted-snapshot and torn-WAL tolerance, reorder
//! equivalence under permutation, and bounded memory on long streams.

use std::fs;
use std::path::{Path, PathBuf};

use qpredict_serve::{FsyncPolicy, ServeConfig, Service};
use qpredict_workload::{synthesize_events, Rng64};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpredict-serve-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg() -> ServeConfig {
    ServeConfig {
        horizon: 8,
        snapshot_every: 7,
        // Same-process aborts never lose page-cache writes, so the tests
        // skip fsync; the ci.sh SIGKILL smoke covers the real thing.
        fsync: FsyncPolicy::Never,
        ..ServeConfig::default()
    }
}

/// A realistic event stream from the toy synthetic workload, plus a few
/// hand-written anomalies (duplicates, a malformed line, an orphan) so
/// recovery is also exercised across counter-bearing paths.
fn event_lines(jobs: usize) -> Vec<String> {
    let wl = qpredict_workload::synthetic::toy(jobs, 64, 7);
    let mut lines: Vec<String> = synthesize_events(&wl, 6)
        .iter()
        .map(|e| e.encode())
        .collect();
    let mid = lines.len() / 2;
    lines.insert(mid, lines[mid - 1].clone()); // duplicate
    lines.insert(mid, "start 999999 1".into()); // orphan
    lines.insert(mid, "submit pancakes".into()); // malformed
    lines
}

/// Run the full stream uninterrupted; returns (state fingerprint, output
/// log bytes).
fn reference_run(root: &Path, lines: &[String]) -> (u64, String) {
    let out = root.join("ref.out");
    let mut svc = Service::open(cfg(), Some(&root.join("ref-state")), Some(&out), false).unwrap();
    for l in lines {
        svc.feed_line(l).unwrap();
    }
    svc.finish().unwrap();
    (svc.state().fingerprint(), fs::read_to_string(&out).unwrap())
}

/// Feed `lines[..k]` into a fresh durable service and abandon it without
/// `finish()` — the in-process equivalent of a kill.
fn abandoned_prefix(state_dir: &Path, out: &Path, lines: &[String], k: usize) {
    let mut svc = Service::open(cfg(), Some(state_dir), Some(out), false).unwrap();
    for l in &lines[..k] {
        svc.feed_line(l).unwrap();
    }
    drop(svc);
}

/// Resume from `state_dir`, re-feed everything, and return the recovered
/// service after `finish()`.
fn resumed_full_run(state_dir: &Path, out: &Path, lines: &[String]) -> Service {
    let mut svc = Service::open(cfg(), Some(state_dir), Some(out), true).unwrap();
    assert!(svc.recovery.resumed);
    for l in lines {
        svc.feed_line(l).unwrap();
    }
    svc.finish().unwrap();
    svc
}

/// The acceptance bar: killing after ANY input line and restarting must
/// yield bit-identical state and output to an uninterrupted run.
#[test]
fn kill_at_every_index_recovers_bit_identically() {
    let root = tmp_dir("killpoints");
    let lines = event_lines(18);
    let (want_fp, want_out) = reference_run(&root, &lines);

    for k in 0..=lines.len() {
        let state_dir = root.join(format!("k{k}"));
        let out = root.join(format!("k{k}.out"));
        abandoned_prefix(&state_dir, &out, &lines, k);
        let svc = resumed_full_run(&state_dir, &out, &lines);
        assert_eq!(
            svc.state().fingerprint(),
            want_fp,
            "state diverged after kill at line {k}"
        );
        assert_eq!(
            fs::read_to_string(&out).unwrap(),
            want_out,
            "output log diverged after kill at line {k}"
        );
        let _ = fs::remove_dir_all(&state_dir);
        let _ = fs::remove_file(&out);
    }
    let _ = fs::remove_dir_all(&root);
}

/// A bit-flipped latest snapshot must fail its checksum, fall back to the
/// previous snapshot, and still recover to an identical result.
#[test]
fn corrupted_latest_snapshot_falls_back_to_previous() {
    let root = tmp_dir("snapflip");
    let lines = event_lines(18);
    let (want_fp, want_out) = reference_run(&root, &lines);

    let state_dir = root.join("state");
    let out = root.join("events.out");
    abandoned_prefix(&state_dir, &out, &lines, lines.len());

    // Flip one byte in the middle of the newest snapshot.
    let mut snaps: Vec<PathBuf> = fs::read_dir(&state_dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "snap")).then_some(p)
        })
        .collect();
    snaps.sort();
    assert!(snaps.len() >= 2, "need two snapshots for fallback");
    let newest = snaps.last().unwrap();
    let mut bytes = fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(newest, bytes).unwrap();

    let svc = resumed_full_run(&state_dir, &out, &lines);
    assert!(svc.recovery.snapshot_fallbacks >= 1, "{:?}", svc.recovery);
    assert_eq!(svc.state().fingerprint(), want_fp);
    assert_eq!(fs::read_to_string(&out).unwrap(), want_out);
    let _ = fs::remove_dir_all(&root);
}

/// Garbage appended to the WAL (a torn write) must be detected, truncated,
/// and must not perturb recovery.
#[test]
fn torn_wal_tail_is_truncated_and_harmless() {
    let root = tmp_dir("torntail");
    let lines = event_lines(18);
    let (want_fp, want_out) = reference_run(&root, &lines);

    let state_dir = root.join("state");
    let out = root.join("events.out");
    let k = lines.len() - 3; // kill with work still pending
    abandoned_prefix(&state_dir, &out, &lines, k);

    // Simulate a torn write: a half-record plus raw garbage (including
    // invalid UTF-8) at the tail of the log.
    let wal = state_dir.join("events.wal");
    let mut bytes = fs::read(&wal).unwrap();
    bytes.extend_from_slice(b"deadbeef 99 submit 7 70 no");
    bytes.extend_from_slice(&[0xFF, 0xFE, 0x00, 0x9f]);
    fs::write(&wal, bytes).unwrap();

    let svc = resumed_full_run(&state_dir, &out, &lines);
    assert!(svc.recovery.wal_torn_bytes > 0, "{:?}", svc.recovery);
    assert_eq!(svc.state().fingerprint(), want_fp);
    assert_eq!(fs::read_to_string(&out).unwrap(), want_out);
    let _ = fs::remove_dir_all(&root);
}

/// Deterministic Fisher–Yates shuffle of disjoint fixed-size blocks: no
/// event moves further than `block - 1` positions from its sorted slot.
fn block_shuffle(lines: &mut [String], block: usize, seed: u64) {
    let mut rng = Rng64::seed_from_u64(seed);
    for chunk in lines.chunks_mut(block) {
        for i in (1..chunk.len()).rev() {
            chunk.swap(i, rng.gen_index(i + 1));
        }
    }
}

/// Satellite: any permutation confined to the reorder horizon converges to
/// the same aggregates, and a probe job submitted afterwards gets a
/// bit-identical prediction.
#[test]
fn permutations_within_horizon_converge() {
    let lines = event_lines(24);
    // In-order probes appended after the shuffled region; their responses
    // reflect the final predictor state.
    let probes = [
        "submit 900001 90000000 nodes=4 limit=3600 u=u1".to_string(),
        "query 900001 90000001".to_string(),
        "submit 900002 90000002 nodes=8 limit=7200 u=u2".to_string(),
        "query 900002 90000003".to_string(),
    ];

    let run = |stream: &[String]| -> (u64, Vec<String>) {
        let mut svc = Service::open(cfg(), None, None, false).unwrap();
        let mut responses = Vec::new();
        for l in stream {
            responses.extend(svc.feed_line(l).unwrap());
        }
        for l in &probes {
            responses.extend(svc.feed_line(l).unwrap());
        }
        responses.extend(svc.finish().unwrap());
        let probe_lines = responses
            .iter()
            .rev()
            .take(2)
            .map(|r| r.line.clone())
            .collect();
        (svc.state().core_fingerprint(), probe_lines)
    };

    let (want_fp, want_probes) = run(&lines);
    let horizon = cfg().horizon;
    for seed in 1..=6u64 {
        let mut shuffled = lines.clone();
        block_shuffle(&mut shuffled, horizon, seed);
        let (fp, probe_lines) = run(&shuffled);
        assert_eq!(fp, want_fp, "aggregates diverged for shuffle seed {seed}");
        assert_eq!(
            probe_lines, want_probes,
            "probe predictions diverged for shuffle seed {seed}"
        );
    }
}

/// Satellite: a long stream with tight caps keeps predictor history, live
/// jobs, and the done-dedupe table bounded, with eviction observable.
#[test]
fn long_stream_memory_stays_bounded() {
    let cfg = ServeConfig {
        max_history: 32,
        max_jobs: 64,
        max_done: 128,
        horizon: 4,
        snapshot_every: 100_000,
        ..ServeConfig::default()
    };
    // One user/queue/executable and a fixed node count, so each of the six
    // serve templates holds exactly one category: resident history is then
    // capped at 6 * max_history points.
    let n = 2000u64;
    let mut svc = Service::open(cfg.clone(), None, None, false).unwrap();
    let mut max_resident = 0usize;
    for i in 1..=n {
        let t = 100 + i as i64 * 10;
        let sub = format!("submit {i} {t} nodes=4 limit=3600 u=alice q=batch e=prog");
        svc.feed_line(&sub).unwrap();
        svc.feed_line(&format!("start {i} {}", t + 2)).unwrap();
        svc.feed_line(&format!("finish {i} {}", t + 240)).unwrap();
        max_resident = max_resident.max(svc.state().predictor_resident_points());
        assert!(svc.state().live_jobs() <= cfg.max_jobs);
    }
    // Overload phase: submits with no finishes must shed, not grow.
    for i in n + 1..=n + 500 {
        let t = 100_000 + i as i64;
        svc.feed_line(&format!("submit {i} {t} nodes=4 u=alice q=batch e=prog"))
            .unwrap();
        assert!(svc.state().live_jobs() <= cfg.max_jobs);
    }
    svc.finish().unwrap();

    let cap = 6 * cfg.max_history as usize;
    assert!(
        max_resident <= cap,
        "resident history {max_resident} exceeded cap {cap}"
    );
    let c = svc.state().counters();
    assert!(c.completions >= n - 10, "completions: {}", c.completions);
    assert!(c.evicted > 0, "done-table eviction never triggered");
    assert!(c.shed > 0, "overload shedding never triggered");
    assert!(svc.state().live_jobs() <= cfg.max_jobs);
}
