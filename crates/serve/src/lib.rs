#![warn(missing_docs)]

//! Crash-safe online predictor service.
//!
//! The batch pipeline (ingest a trace, simulate, report) answers "how
//! well would the paper's predictor have done?". This crate answers the
//! operational question: run the predictor *as a service* against a live
//! stream of job events — submissions, starts, completions,
//! cancellations — and wait-time queries, and survive being killed at
//! any instant without losing or corrupting what it has learned.
//!
//! Three layers:
//!
//! * [`ServiceState`] — the deterministic core: per-job lifecycle state
//!   machine, bounded reorder buffer with a watermark for disordered
//!   input, late-completion backfill, bounded-memory job tables and
//!   predictor history, and wait-time query answering (free-node profile
//!   plus FCFS reservations, as in the paper's scheduling section).
//! * [`wal`] — checksummed write-ahead log of raw input lines; torn or
//!   bit-flipped tails bound the damage to the unacknowledged suffix.
//! * [`Service`] — ties them together with atomic, checksummed
//!   snapshots (newest two kept) and kill-anywhere recovery: newest
//!   intact snapshot + WAL suffix + output-log reconciliation replays to
//!   a state *bit-identical* to the uninterrupted run, down to every
//!   floating-point aggregate in the predictor.
//!
//! Event-log syntax lives in [`qpredict_workload::event`]; durability
//! primitives (FNV-1a framing, atomic writes) in [`qpredict_durable`].

pub mod config;
pub mod service;
pub mod state;
pub mod wal;

pub use config::{FsyncPolicy, PredictorKind, ServeConfig};
pub use service::{RecoveryReport, ServeError, Service};
pub use state::{Counters, Response, ServiceState};
