//! Service configuration: which predictor to run, how much memory it may
//! keep, and how aggressively to make state durable.

use qpredict_predict::{Template, TemplateSet};
use qpredict_workload::Characteristic;

/// Which run-time predictor the service hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// The paper's template-based predictor (default).
    Smith,
    /// Gibbons' fixed template hierarchy.
    Gibbons,
    /// Downey's log-uniform model, conditional-average estimator.
    DowneyAvg,
    /// Downey's log-uniform model, conditional-median estimator.
    DowneyMed,
}

impl PredictorKind {
    /// Parse a CLI spelling (`smith`, `gibbons`, `downey-avg`,
    /// `downey-med`).
    pub fn parse(s: &str) -> Option<PredictorKind> {
        match s {
            "smith" => Some(PredictorKind::Smith),
            "gibbons" => Some(PredictorKind::Gibbons),
            "downey-avg" => Some(PredictorKind::DowneyAvg),
            "downey-med" => Some(PredictorKind::DowneyMed),
            _ => None,
        }
    }

    /// Canonical spelling, the inverse of [`PredictorKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Smith => "smith",
            PredictorKind::Gibbons => "gibbons",
            PredictorKind::DowneyAvg => "downey-avg",
            PredictorKind::DowneyMed => "downey-med",
        }
    }
}

/// When the write-ahead log is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: no acknowledged event is ever
    /// lost, at the cost of one disk round-trip per event.
    Always,
    /// `fsync` every N records (and at snapshots / shutdown). A crash can
    /// lose up to N−1 tail events; re-feeding the input recovers them.
    Batch(u32),
    /// Never `fsync` explicitly; durability is whatever the OS provides.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI spelling: `always`, `never`, `batch` or `batch=N`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "batch" => Ok(FsyncPolicy::Batch(64)),
            other => match other.strip_prefix("batch=") {
                Some(n) => {
                    let n: u32 = n.parse().map_err(|e| format!("bad batch size: {e}"))?;
                    if n == 0 {
                        return Err("batch size must be at least 1".into());
                    }
                    Ok(FsyncPolicy::Batch(n))
                }
                None => Err(format!(
                    "unknown fsync policy {other:?} (want always|batch[=N]|never)"
                )),
            },
        }
    }
}

/// Full service configuration.
///
/// The fields above the durability knobs shape how state *evolves* and are
/// folded into [`ServeConfig::fingerprint`]; a snapshot or WAL recorded
/// under one fingerprint refuses to load under another. `snapshot_every`
/// and `fsync` only control how often state reaches disk and may be
/// changed freely between runs of the same service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Hosted predictor.
    pub predictor: PredictorKind,
    /// Machine size assumed when answering wait-time queries.
    pub machine_nodes: u32,
    /// Reorder-buffer capacity, in events. Events are held until
    /// `horizon` newer events have arrived, then applied in canonical
    /// [`qpredict_workload::JobEvent::sort_key`] order; any permutation
    /// that displaces events by less than the horizon converges to the
    /// same state.
    pub horizon: usize,
    /// Per-category history cap for the Smith predictor: each template
    /// keeps at most this many completed jobs, evicting oldest-first.
    /// Bounds resident memory under unbounded streams.
    pub max_history: u32,
    /// Cap on jobs simultaneously queued or running. Beyond it the
    /// *oldest* live job is shed (dropped, counted) — bounded-queue
    /// admission control for overload.
    pub max_jobs: usize,
    /// Cap on retained finished-job records (kept only to recognise
    /// duplicate lifecycle events). Evicted FIFO beyond the cap.
    pub max_done: usize,
    /// Write a snapshot every this many input lines.
    pub snapshot_every: u64,
    /// WAL flush policy.
    pub fsync: FsyncPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            predictor: PredictorKind::Smith,
            machine_nodes: 64,
            horizon: 64,
            max_history: 512,
            max_jobs: 4096,
            max_done: 16_384,
            snapshot_every: 256,
            fsync: FsyncPolicy::Batch(64),
        }
    }
}

impl ServeConfig {
    /// The Smith template set the service uses: broad characteristic
    /// combinations that degrade gracefully when a stream omits fields
    /// (a template only applies to jobs that record all its
    /// characteristics), every one bounded by [`ServeConfig::max_history`].
    pub fn template_set(&self) -> TemplateSet {
        let h = self.max_history.max(1);
        TemplateSet::new(vec![
            Template::mean_over(&[]).with_max_history(h),
            Template::mean_over(&[Characteristic::User]).with_max_history(h),
            Template::mean_over(&[Characteristic::Queue]).with_max_history(h),
            Template::mean_over(&[Characteristic::Executable]).with_max_history(h),
            Template::mean_over(&[Characteristic::User, Characteristic::Queue]).with_max_history(h),
            Template::mean_over(&[Characteristic::User, Characteristic::Executable])
                .with_node_range(2)
                .with_max_history(h),
        ])
    }

    /// Canonical one-line rendering of the state-shaping fields.
    pub fn canon(&self) -> String {
        format!(
            "serve-config v1 predictor={} nodes={} horizon={} max_history={} \
             max_jobs={} max_done={}",
            self.predictor.name(),
            self.machine_nodes,
            self.horizon,
            self.max_history,
            self.max_jobs,
            self.max_done,
        )
    }

    /// FNV-1a fingerprint of [`ServeConfig::canon`], stamped into WAL
    /// headers and snapshots so state is never resumed under a different
    /// configuration.
    pub fn fingerprint(&self) -> u64 {
        qpredict_durable::fnv1a(self.canon().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_kind_round_trips() {
        for k in [
            PredictorKind::Smith,
            PredictorKind::Gibbons,
            PredictorKind::DowneyAvg,
            PredictorKind::DowneyMed,
        ] {
            assert_eq!(PredictorKind::parse(k.name()), Some(k));
        }
        assert_eq!(PredictorKind::parse("oracle"), None);
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("batch"), Ok(FsyncPolicy::Batch(64)));
        assert_eq!(FsyncPolicy::parse("batch=7"), Ok(FsyncPolicy::Batch(7)));
        assert!(FsyncPolicy::parse("batch=0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn fingerprint_tracks_state_shaping_fields_only() {
        let a = ServeConfig::default();
        let mut b = a.clone();
        b.snapshot_every = 1;
        b.fsync = FsyncPolicy::Never;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.max_history = 8;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.predictor = PredictorKind::Gibbons;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
