//! The durable service: [`ServiceState`] plus WAL, snapshots, an output
//! log, and kill-anywhere recovery.
//!
//! # Durability protocol
//!
//! Every input line is appended to the WAL *before* it touches state
//! (write-ahead), then ingested, then any responses are appended to the
//! output log. Every `snapshot_every` lines the full state is sealed
//! (checksummed) and written atomically to `snap-<seq>.snap`; the two
//! newest snapshots are kept so a corrupted latest snapshot falls back to
//! its predecessor.
//!
//! # Recovery
//!
//! [`Service::open`] with `resume` walks backwards through the snapshots
//! until one passes its checksum and decodes, replays the WAL records
//! with greater sequence numbers (stopping at the first torn record and
//! truncating the tail), and reconciles the output log by dropping its
//! torn last line and re-emitting only responses whose ordinal exceeds
//! the last durable one. Because the state core is deterministic, this
//! reproduces the uninterrupted run bit for bit; the caller then re-feeds
//! the original input and the service skips every line it has already
//! ingested.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use qpredict_durable::{check_frame, seal, IoOpError};
use qpredict_obs::counter_add;

use crate::config::{FsyncPolicy, ServeConfig};
use crate::state::{Response, ServiceState};
use crate::wal;

/// Errors from the durable layer. The deterministic core never errors —
/// anomalies there are counters — so everything here is about disk or
/// configuration.
#[derive(Debug)]
pub enum ServeError {
    /// A filesystem operation failed.
    Io(IoOpError),
    /// The on-disk state belongs to a different configuration, or the
    /// caller asked for something contradictory.
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<IoOpError> for ServeError {
    fn from(e: IoOpError) -> ServeError {
        ServeError::Io(e)
    }
}

fn io_op(op: impl Into<String>, source: std::io::Error) -> ServeError {
    ServeError::Io(IoOpError {
        op: op.into(),
        source,
    })
}

/// What recovery found and did; surfaced in reports and logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// True when the service resumed existing on-disk state.
    pub resumed: bool,
    /// Sequence number of the snapshot that loaded (0 = none, started
    /// from the WAL alone).
    pub snapshot_seq: u64,
    /// Snapshots that failed their checksum or decode and were skipped.
    pub snapshot_fallbacks: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_replayed: u64,
    /// Bytes of torn WAL tail truncated.
    pub wal_torn_bytes: u64,
    /// Responses re-emitted because the output log had lost them.
    pub responses_reemitted: u64,
}

#[derive(Debug)]
struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    since_sync: u32,
}

impl WalWriter {
    fn append(&mut self, seq: u64, raw: &str) -> Result<(), ServeError> {
        let rec = wal::record(seq, raw);
        self.file
            .write_all(rec.as_bytes())
            .map_err(|e| io_op(format!("append {}", self.path.display()), e))?;
        counter_add("serve.wal_records", 1);
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch(n) => {
                self.since_sync += 1;
                if self.since_sync >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), ServeError> {
        self.since_sync = 0;
        self.file
            .sync_all()
            .map_err(|e| io_op(format!("sync {}", self.path.display()), e))
    }
}

/// Append-only response log with ordinal-keyed dedupe across restarts.
#[derive(Debug)]
struct OutLog {
    file: File,
    path: PathBuf,
}

/// A crash-safe online predictor service.
#[derive(Debug)]
pub struct Service {
    state: ServiceState,
    cfg: ServeConfig,
    state_dir: Option<PathBuf>,
    wal: Option<WalWriter>,
    out: Option<OutLog>,
    /// Ordinal of the last response durably in the output log (or
    /// emitted to the caller, in ephemeral mode).
    last_out_ordinal: u64,
    /// Next input line number the caller will feed (1-based counter).
    input_seq: u64,
    last_snapshot_seq: u64,
    snapshots_written: u64,
    /// What recovery found when the service opened.
    pub recovery: RecoveryReport,
}

impl Service {
    /// Open a service.
    ///
    /// * `state_dir = None` — ephemeral: no WAL, no snapshots.
    /// * `state_dir = Some(dir)`, `resume = false` — a fresh durable
    ///   service; refuses to clobber a dir that already holds a WAL.
    /// * `resume = true` — recover from `dir` (which may be empty: a
    ///   first run under a supervisor that always passes `--resume`).
    ///
    /// `out_path` is the response log; with `resume` its intact prefix
    /// is kept and duplicated responses are suppressed.
    pub fn open(
        cfg: ServeConfig,
        state_dir: Option<&Path>,
        out_path: Option<&Path>,
        resume: bool,
    ) -> Result<Service, ServeError> {
        if resume && state_dir.is_none() {
            return Err(ServeError::Config(
                "resume requires a state directory".into(),
            ));
        }
        let mut svc = Service {
            state: ServiceState::new(cfg.clone()),
            cfg,
            state_dir: state_dir.map(Path::to_path_buf),
            wal: None,
            out: None,
            last_out_ordinal: 0,
            input_seq: 0,
            last_snapshot_seq: 0,
            snapshots_written: 0,
            recovery: RecoveryReport::default(),
        };
        // The output log's durable ordinal must be known before WAL
        // replay, so replayed responses dedupe correctly.
        if let Some(path) = out_path {
            svc.last_out_ordinal = if resume { recover_out_log(path)? } else { 0 };
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .truncate(false)
                .open(path)
                .map_err(|e| io_op(format!("open {}", path.display()), e))?;
            if !resume {
                file.set_len(0)
                    .map_err(|e| io_op(format!("truncate {}", path.display()), e))?;
            }
            svc.out = Some(OutLog {
                file,
                path: path.to_path_buf(),
            });
        }
        if let Some(dir) = state_dir {
            fs::create_dir_all(dir).map_err(|e| io_op(format!("create {}", dir.display()), e))?;
            let wal_path = dir.join("events.wal");
            if resume {
                svc.recover(dir, &wal_path)?;
            } else if wal_path.exists() {
                return Err(ServeError::Config(format!(
                    "state dir {} already holds a WAL; pass resume to continue it",
                    dir.display()
                )));
            }
            let fresh = !wal_path.exists();
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .truncate(false)
                .open(&wal_path)
                .map_err(|e| io_op(format!("open {}", wal_path.display()), e))?;
            let mut writer = WalWriter {
                file,
                path: wal_path,
                policy: svc.cfg.fsync,
                since_sync: 0,
            };
            if fresh {
                let hdr = wal::header(svc.cfg.fingerprint());
                writer
                    .file
                    .write_all(hdr.as_bytes())
                    .map_err(|e| io_op(format!("write {}", writer.path.display()), e))?;
                writer.sync()?;
            }
            svc.wal = Some(writer);
        }
        // Resumed work continues from the recovered cursor; the caller
        // re-feeds the input from the top and already-ingested lines are
        // skipped by sequence number.
        Ok(svc)
    }

    /// The deterministic core (counters, cursors, fingerprints).
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// The configured predictor/memory/durability settings.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Snapshots written by this process.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// Feed the next raw input line (without trailing newline). Returns
    /// the responses that became visible — already-recovered lines are
    /// skipped and return nothing.
    pub fn feed_line(&mut self, raw: &str) -> Result<Vec<Response>, ServeError> {
        self.input_seq += 1;
        let seq = self.input_seq;
        if seq <= self.state.applied_seq() {
            return Ok(Vec::new());
        }
        if let Some(w) = &mut self.wal {
            w.append(seq, raw)?;
        }
        let mut out = Vec::new();
        self.state.ingest_line(seq, raw, &mut out);
        let fresh = self.emit(out)?;
        if self.cfg.snapshot_every > 0
            && seq.is_multiple_of(self.cfg.snapshot_every)
            && seq > self.last_snapshot_seq
        {
            self.snapshot_now()?;
        }
        Ok(fresh)
    }

    /// End of stream: drain the reorder buffer, flush the output log,
    /// and (when durable) write a final snapshot.
    pub fn finish(&mut self) -> Result<Vec<Response>, ServeError> {
        let mut out = Vec::new();
        self.state.drain(&mut out);
        let fresh = self.emit(out)?;
        if self.state_dir.is_some() {
            self.snapshot_now()?;
        }
        if let Some(o) = &mut self.out {
            o.file
                .sync_all()
                .map_err(|e| io_op(format!("sync {}", o.path.display()), e))?;
        }
        Ok(fresh)
    }

    /// Force a snapshot now (also syncs the WAL first so the snapshot
    /// never claims more than the log can prove).
    pub fn snapshot_now(&mut self) -> Result<(), ServeError> {
        let Some(dir) = self.state_dir.clone() else {
            return Ok(());
        };
        if let Some(w) = &mut self.wal {
            w.sync()?;
        }
        if let Some(o) = &mut self.out {
            o.file
                .flush()
                .map_err(|e| io_op(format!("flush {}", o.path.display()), e))?;
        }
        let sealed = seal(self.state.encode());
        let seq = self.state.applied_seq();
        let path = dir.join(format!("snap-{seq:012}.snap"));
        qpredict_durable::write_atomic(&path, &sealed, "snap.tmp")?;
        self.last_snapshot_seq = seq;
        self.snapshots_written += 1;
        counter_add("serve.snapshots", 1);
        prune_snapshots(&dir, 2)?;
        Ok(())
    }

    fn emit(&mut self, responses: Vec<Response>) -> Result<Vec<Response>, ServeError> {
        let mut fresh = Vec::new();
        for r in responses {
            if r.ordinal <= self.last_out_ordinal {
                continue;
            }
            self.last_out_ordinal = r.ordinal;
            if let Some(o) = &mut self.out {
                let line = format!("resp {} {}\n", r.ordinal, r.line);
                o.file
                    .write_all(line.as_bytes())
                    .map_err(|e| io_op(format!("append {}", o.path.display()), e))?;
            }
            fresh.push(r);
        }
        Ok(fresh)
    }

    /// Rebuild state from `dir`: newest intact snapshot, then the WAL
    /// suffix, then reconcile the output log.
    fn recover(&mut self, dir: &Path, wal_path: &Path) -> Result<(), ServeError> {
        self.recovery.resumed = true;
        counter_add("serve.recoveries", 1);
        // 1. Newest snapshot that passes checksum + decode.
        for (seq, path) in list_snapshots(dir)?.into_iter().rev() {
            match load_snapshot(&self.cfg, &path) {
                Ok(state) => {
                    self.state = state;
                    self.recovery.snapshot_seq = seq;
                    break;
                }
                Err(reason) => {
                    // A torn or bit-flipped snapshot is exactly what the
                    // previous one is for; fatal only if *config* differs.
                    if reason.contains("different configuration") {
                        return Err(ServeError::Config(format!(
                            "snapshot {}: {reason}",
                            path.display()
                        )));
                    }
                    self.recovery.snapshot_fallbacks += 1;
                    counter_add("serve.snapshot_fallback", 1);
                }
            }
        }
        // 2. WAL suffix.
        if wal_path.exists() {
            let text = read_file(wal_path)?;
            match wal::scan(&text) {
                Err(reason) => {
                    return Err(ServeError::Config(format!(
                        "{}: {reason}",
                        wal_path.display()
                    )));
                }
                Ok(scan) => {
                    if scan.fp != self.cfg.fingerprint() {
                        return Err(ServeError::Config(format!(
                            "{} was written under a different configuration",
                            wal_path.display()
                        )));
                    }
                    let mut replayed = Vec::new();
                    for (seq, raw) in &scan.records {
                        if *seq <= self.state.applied_seq() {
                            continue;
                        }
                        self.state.ingest_line(*seq, raw, &mut replayed);
                        self.recovery.wal_replayed += 1;
                    }
                    let before = self.last_out_ordinal;
                    self.emit(replayed)?;
                    self.recovery.responses_reemitted =
                        self.last_out_ordinal.saturating_sub(before);
                    if scan.torn_bytes > 0 {
                        self.recovery.wal_torn_bytes = scan.torn_bytes;
                        counter_add("serve.wal_torn_tail", 1);
                        let f = OpenOptions::new()
                            .write(true)
                            .open(wal_path)
                            .map_err(|e| io_op(format!("open {}", wal_path.display()), e))?;
                        f.set_len(scan.valid_len)
                            .map_err(|e| io_op(format!("truncate {}", wal_path.display()), e))?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Read the output log, drop a torn (newline-less or unparsable) tail by
/// truncating the file, and return the last durable ordinal.
fn recover_out_log(path: &Path) -> Result<u64, ServeError> {
    if !path.exists() {
        return Ok(0);
    }
    let text = read_file(path)?;
    let mut last = 0u64;
    let mut valid_len = 0usize;
    let mut offset = 0usize;
    while offset < text.len() {
        let Some(nl) = text[offset..].find('\n').map(|i| offset + i) else {
            break;
        };
        let line = &text[offset..nl];
        let ordinal = line
            .strip_prefix("resp ")
            .and_then(|r| r.split(' ').next())
            .and_then(|n| n.parse::<u64>().ok());
        match ordinal {
            Some(n) if n > last => last = n,
            _ => break, // unparsable or non-increasing: torn from here on
        }
        offset = nl + 1;
        valid_len = offset;
    }
    if valid_len < text.len() {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_op(format!("open {}", path.display()), e))?;
        f.set_len(valid_len as u64)
            .map_err(|e| io_op(format!("truncate {}", path.display()), e))?;
    }
    Ok(last)
}

fn read_file(path: &Path) -> Result<String, ServeError> {
    let mut f = File::open(path).map_err(|e| io_op(format!("open {}", path.display()), e))?;
    // WAL tails can hold non-UTF-8 garbage after a crash; read bytes and
    // keep the longest valid prefix rather than failing the whole file.
    let mut bytes = Vec::new();
    f.seek(SeekFrom::Start(0))
        .and_then(|_| f.read_to_end(&mut bytes))
        .map_err(|e| io_op(format!("read {}", path.display()), e))?;
    Ok(match String::from_utf8(bytes) {
        Ok(s) => s,
        Err(e) => {
            let valid = e.utf8_error().valid_up_to();
            let mut bytes = e.into_bytes();
            bytes.truncate(valid);
            String::from_utf8(bytes).expect("prefix is valid utf-8")
        }
    })
}

/// Snapshot files in `dir`, sorted by sequence number ascending.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServeError> {
    let mut snaps = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_op(format!("read dir {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_op(format!("read dir {}", dir.display()), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(".snap"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            snaps.push((seq, entry.path()));
        }
    }
    snaps.sort();
    Ok(snaps)
}

fn load_snapshot(cfg: &ServeConfig, path: &Path) -> Result<ServiceState, String> {
    let text = qpredict_durable::read_to_string(path).map_err(|e| e.to_string())?;
    let body = check_frame(&text).map_err(|e| e.to_string())?;
    ServiceState::decode(cfg.clone(), body)
}

fn prune_snapshots(dir: &Path, keep: usize) -> Result<(), ServeError> {
    let snaps = list_snapshots(dir)?;
    if snaps.len() > keep {
        for (_, path) in &snaps[..snaps.len() - keep] {
            fs::remove_file(path).map_err(|e| io_op(format!("remove {}", path.display()), e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qpredict-serve-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            snapshot_every: 4,
            horizon: 4,
            ..ServeConfig::default()
        }
    }

    fn lines() -> Vec<String> {
        let mut v = Vec::new();
        for i in 1..=10u64 {
            let t = 100 + i as i64 * 20;
            v.push(format!("submit {i} {t} nodes=4 limit=3600 u=u{}", i % 3));
            v.push(format!("query {i} {}", t + 1));
            v.push(format!("start {i} {}", t + 5));
            v.push(format!("finish {i} {}", t + 305));
        }
        v
    }

    #[test]
    fn ephemeral_service_answers_without_disk() {
        let mut s = Service::open(cfg(), None, None, false).unwrap();
        let mut responses = Vec::new();
        for l in lines() {
            responses.extend(s.feed_line(&l).unwrap());
        }
        responses.extend(s.finish().unwrap());
        assert_eq!(responses.len(), 10);
        assert!(s.state().counters().completions > 0);
    }

    #[test]
    fn durable_run_recovers_identically_after_abandonment() {
        let root = tmp_dir("recover");
        let all = lines();

        // Uninterrupted reference run.
        let ref_out = root.join("ref.out");
        let mut r =
            Service::open(cfg(), Some(&root.join("ref-state")), Some(&ref_out), false).unwrap();
        for l in &all {
            r.feed_line(l).unwrap();
        }
        r.finish().unwrap();
        let want_fp = r.state().fingerprint();
        let want_out = fs::read_to_string(&ref_out).unwrap();

        // Interrupted run: stop after 17 lines, drop the Service without
        // finish() — the moral equivalent of a kill.
        let state_dir = root.join("state");
        let out = root.join("events.out");
        let mut a = Service::open(cfg(), Some(&state_dir), Some(&out), false).unwrap();
        for l in &all[..17] {
            a.feed_line(l).unwrap();
        }
        drop(a);

        // Recover and re-feed everything from the top.
        let mut b = Service::open(cfg(), Some(&state_dir), Some(&out), true).unwrap();
        assert!(b.recovery.resumed);
        assert!(b.recovery.snapshot_seq > 0 || b.recovery.wal_replayed > 0);
        for l in &all {
            b.feed_line(l).unwrap();
        }
        b.finish().unwrap();
        assert_eq!(b.state().fingerprint(), want_fp, "state must match");
        assert_eq!(
            fs::read_to_string(&out).unwrap(),
            want_out,
            "output log must match"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fresh_open_refuses_existing_wal_and_resume_needs_a_dir() {
        let root = tmp_dir("refuse");
        let state_dir = root.join("state");
        let mut s = Service::open(cfg(), Some(&state_dir), None, false).unwrap();
        s.feed_line("submit 1 100 nodes=4").unwrap();
        drop(s);
        let err = Service::open(cfg(), Some(&state_dir), None, false).unwrap_err();
        assert!(err.to_string().contains("resume"), "{err}");
        let err = Service::open(cfg(), None, None, true).unwrap_err();
        assert!(err.to_string().contains("state directory"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wal_config_mismatch_is_fatal() {
        let root = tmp_dir("mismatch");
        let state_dir = root.join("state");
        let mut s = Service::open(cfg(), Some(&state_dir), None, false).unwrap();
        s.feed_line("submit 1 100 nodes=4").unwrap();
        drop(s);
        let mut other = cfg();
        other.machine_nodes = 17;
        let err = Service::open(other, Some(&state_dir), None, true).unwrap_err();
        assert!(err.to_string().contains("different configuration"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }
}
