//! The write-ahead log: every raw input line, checksummed, in order.
//!
//! The WAL is the service's source of truth between snapshots. Each
//! record carries the raw input line (not the parsed event — malformed
//! lines are evidence too) tagged with its input sequence number and an
//! FNV-1a checksum:
//!
//! ```text
//! qpredict-wal v1 fp=<config fingerprint>
//! <checksum> <seq> <raw line>
//! ```
//!
//! Reading is prefix-tolerant: a scan accepts the longest valid prefix
//! and reports how many bytes of torn/corrupt tail follow, which recovery
//! truncates before appending again. A record whose checksum fails, whose
//! sequence number does not increase, or whose final newline is missing
//! ends the valid prefix — everything before it is trusted, nothing after.

use qpredict_durable::fnv1a;

/// First line of every WAL file (before the `fp=` field).
pub const WAL_MAGIC: &str = "qpredict-wal v1";

/// Render the header line for a service with config fingerprint `fp`.
pub fn header(fp: u64) -> String {
    format!("{WAL_MAGIC} fp={fp:016X}\n")
}

/// Render one record (with trailing newline).
pub fn record(seq: u64, raw: &str) -> String {
    let body = format!("{seq} {raw}");
    format!("{:016X} {body}\n", fnv1a(body.as_bytes()))
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Config fingerprint from the header.
    pub fp: u64,
    /// Valid records, in order: `(seq, raw line)`.
    pub records: Vec<(u64, String)>,
    /// Byte length of the valid prefix (header + intact records).
    /// Truncating the file to this length removes the torn tail.
    pub valid_len: u64,
    /// Bytes of unreadable tail following the valid prefix.
    pub torn_bytes: u64,
}

/// Scan WAL `text`, accepting the longest valid prefix.
///
/// Only an unreadable *header* is an error — that file was never a WAL
/// of ours. Anything wrong after the header is a torn tail, reported,
/// not fatal.
pub fn scan(text: &str) -> Result<WalScan, String> {
    let header_end = text.find('\n').ok_or("missing WAL header")?;
    let header = &text[..header_end];
    let fp_field = header
        .strip_prefix(WAL_MAGIC)
        .and_then(|r| r.strip_prefix(" fp="))
        .ok_or_else(|| format!("not a WAL header: {header:?}"))?;
    let fp = u64::from_str_radix(fp_field, 16).map_err(|e| format!("bad WAL fingerprint: {e}"))?;

    let mut records = Vec::new();
    let mut valid_len = (header_end + 1) as u64;
    let mut offset = header_end + 1;
    let mut last_seq = 0u64;
    let bytes = text.as_bytes();
    while offset < bytes.len() {
        let Some(nl) = text[offset..].find('\n').map(|i| offset + i) else {
            break; // no final newline: torn
        };
        let line = &text[offset..nl];
        let Some(rec) = parse_record(line, last_seq) else {
            break;
        };
        last_seq = rec.0;
        records.push(rec);
        offset = nl + 1;
        valid_len = offset as u64;
    }
    Ok(WalScan {
        fp,
        records,
        valid_len,
        torn_bytes: (bytes.len() as u64).saturating_sub(valid_len),
    })
}

fn parse_record(line: &str, last_seq: u64) -> Option<(u64, String)> {
    let (sum, body) = line.split_once(' ')?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    if fnv1a(body.as_bytes()) != sum {
        return None;
    }
    let (seq, raw) = match body.split_once(' ') {
        Some((s, r)) => (s, r),
        None => (body, ""),
    };
    let seq: u64 = seq.parse().ok()?;
    if seq <= last_seq {
        return None; // sequence must increase; a repeat is corruption
    }
    Some((seq, raw.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut s = header(0xABCD);
        s.push_str(&record(1, "submit 1 100 nodes=4"));
        s.push_str(&record(2, "query 1 101"));
        s.push_str(&record(5, "# gap in seq is fine, decrease is not"));
        s
    }

    #[test]
    fn round_trips() {
        let scan = scan(&sample()).unwrap();
        assert_eq!(scan.fp, 0xABCD);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0], (1, "submit 1 100 nodes=4".to_string()));
        assert_eq!(scan.records[2].0, 5);
        assert_eq!(scan.valid_len, sample().len() as u64);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn empty_raw_lines_survive() {
        let mut s = header(1);
        s.push_str(&record(1, ""));
        s.push_str(&record(2, "x"));
        let scan = scan(&s).unwrap();
        assert_eq!(scan.records, vec![(1, String::new()), (2, "x".to_string())]);
    }

    #[test]
    fn torn_tail_is_bounded_not_fatal() {
        let good = sample();
        // Truncate mid-record: everything before the cut record survives.
        for cut in good.len() - 10..good.len() - 1 {
            let scan = scan(&good[..cut]).unwrap();
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert!(scan.torn_bytes > 0);
            assert!(scan.valid_len < cut as u64 + 1);
        }
    }

    #[test]
    fn bit_flips_end_the_valid_prefix() {
        let good = sample();
        let header_len = header(0xABCD).len();
        for i in header_len..good.len() {
            let mut bytes = good.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(mutated) = String::from_utf8(bytes) else {
                continue;
            };
            if let Ok(s) = scan(&mutated) {
                // Whatever survives must be an exact prefix of the truth.
                for (got, want) in s.records.iter().zip([
                    (1u64, "submit 1 100 nodes=4"),
                    (2, "query 1 101"),
                    (5, "# gap in seq is fine, decrease is not"),
                ]) {
                    if got.0 == want.0 && got.1 == want.1 {
                        continue;
                    }
                    // A flip inside a *newline* can merge records; the
                    // checksum then fails and the scan stops — so any
                    // surviving record must match exactly.
                    panic!("flip at {i} forged record {got:?}");
                }
            }
        }
    }

    #[test]
    fn non_increasing_seq_stops_the_scan() {
        let mut s = header(1);
        s.push_str(&record(3, "a"));
        s.push_str(&record(3, "b"));
        let scan = scan(&s).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn bad_header_is_an_error() {
        assert!(scan("").is_err());
        assert!(scan("some other file\n").is_err());
        assert!(scan("qpredict-wal v1 fp=zz\n").is_err());
    }
}
