//! The deterministic core of the service: pure state, no I/O.
//!
//! [`ServiceState`] consumes raw input lines (each tagged with its 1-based
//! input sequence number) and produces numbered responses. Everything it
//! does is a deterministic function of the line sequence, which is what
//! makes the crash-recovery story work: replaying the same lines — from
//! the write-ahead log or from the original input — reproduces the state
//! and the responses bit for bit, including every floating-point
//! aggregate inside the predictor.
//!
//! Disordered input is handled in three layers:
//!
//! * a bounded **reorder buffer** holds each event until `horizon` newer
//!   events have arrived, then applies the pending minimum in canonical
//!   [`JobEvent::sort_key`] order, so any permutation within the horizon
//!   converges to one apply order;
//! * a per-job **monotone state machine** (queued → running → done)
//!   absorbs duplicates and impossible transitions as counted anomalies
//!   rather than state corruption;
//! * events older than the **watermark** (the newest applied timestamp)
//!   are applied immediately as late backfill — a late completion still
//!   reaches the predictor, whose generation bump precisely invalidates
//!   the estimate cache.
//!
//! Memory is bounded everywhere: per-category predictor history by
//! `max_history`, live jobs by `max_jobs` (drop-oldest load shedding),
//! finished-job dedupe records by `max_done` (FIFO eviction), and the
//! reorder buffer by `horizon`.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use qpredict_obs::counter_add;
use qpredict_predict::{
    CachingPredictor, DowneyPredictor, DowneyVariant, GibbonsPredictor, Prediction,
    RunTimePredictor, SmithPredictor,
};
use qpredict_sim::profile::Profile;
use qpredict_workload::{
    Characteristic, Dur, EventKind, Job, JobBuilder, JobEvent, JobId, Sym, SymbolTable, Time,
    CHARACTERISTICS,
};

use crate::config::{PredictorKind, ServeConfig};

/// One answer produced by the service, numbered in emission order.
///
/// Ordinals are assigned in apply order, which is deterministic, so they
/// serve as stable identities across crash and replay: recovery re-emits
/// only responses whose ordinal exceeds the last one durably written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// 1-based emission number.
    pub ordinal: u64,
    /// The answer payload (everything after `resp <ordinal> `).
    pub line: String,
}

/// Anomaly and throughput counters. All deterministic, all persisted in
/// snapshots, and mirrored into [`qpredict_obs`] counters (`serve.*`) for
/// `--report-out`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Events parsed successfully.
    pub events: u64,
    /// Input lines that failed to parse (counted, never fatal).
    pub malformed: u64,
    /// Duplicate lifecycle events (second submit of a known id, start of
    /// a running job, finish of a done job, …).
    pub duplicate: u64,
    /// Events that arrived out of canonical order but inside the reorder
    /// horizon, plus impossible-order transitions reconciled by the state
    /// machine (finish before any start).
    pub out_of_order: u64,
    /// Events older than the watermark, applied as immediate backfill.
    pub late: u64,
    /// Lifecycle events for jobs the service has never seen (or already
    /// evicted).
    pub orphan: u64,
    /// Live jobs dropped by overload shedding (`max_jobs`).
    pub shed: u64,
    /// Finished-job dedupe records evicted by the `max_done` FIFO.
    pub evicted: u64,
    /// Jobs whose completion reached the predictor.
    pub completions: u64,
    /// Jobs cancelled without a usable run time.
    pub cancelled: u64,
    /// Responses emitted (equals the last assigned ordinal).
    pub responses: u64,
}

impl Counters {
    fn encode(&self) -> String {
        format!(
            "counters ev={} mal={} dup={} ooo={} late={} orph={} shed={} \
             evict={} done={} canc={} resp={}",
            self.events,
            self.malformed,
            self.duplicate,
            self.out_of_order,
            self.late,
            self.orphan,
            self.shed,
            self.evicted,
            self.completions,
            self.cancelled,
            self.responses,
        )
    }

    fn decode(rest: &str) -> Result<Counters, String> {
        let fields = qpredict_durable::parse_kv(
            rest,
            &[
                "ev", "mal", "dup", "ooo", "late", "orph", "shed", "evict", "done", "canc", "resp",
            ],
        )?;
        let num = |i: usize| -> Result<u64, String> {
            fields[i]
                .parse::<u64>()
                .map_err(|e| format!("bad counter: {e}"))
        };
        Ok(Counters {
            events: num(0)?,
            malformed: num(1)?,
            duplicate: num(2)?,
            out_of_order: num(3)?,
            late: num(4)?,
            orphan: num(5)?,
            shed: num(6)?,
            evicted: num(7)?,
            completions: num(8)?,
            cancelled: num(9)?,
            responses: num(10)?,
        })
    }
}

/// Lifecycle phase of a tracked job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running { started: Time },
    Done,
}

/// Everything the service remembers about one job. `Copy` on purpose:
/// records are small and fixed-size, which is what keeps the job table's
/// memory proportional to its entry caps.
#[derive(Debug, Clone, Copy)]
struct JobRecord {
    internal: u32,
    nodes: u32,
    limit: Option<Dur>,
    chars: [Option<Sym>; 8],
    submit: Time,
    phase: Phase,
}

impl JobRecord {
    /// Materialise a [`Job`] for the predictor. `runtime` is the actual
    /// run time for completions and a placeholder for predictions (no
    /// predictor reads it on the predict path).
    fn job(&self, runtime: Dur) -> Job {
        let mut b = JobBuilder::new()
            .nodes(self.nodes)
            .submit(self.submit)
            .runtime(runtime);
        if let Some(l) = self.limit {
            b = b.max_runtime(l);
        }
        for (i, s) in self.chars.iter().enumerate() {
            b = b.with_opt(CHARACTERISTICS[i], *s);
        }
        b.build(JobId(self.internal))
    }
}

/// The hosted predictor, behind one dispatch enum so the service can
/// snapshot and restore whichever kind it runs.
#[derive(Debug)]
enum ServePredictor {
    Smith(SmithPredictor),
    Gibbons(GibbonsPredictor),
    Downey(DowneyPredictor),
}

impl ServePredictor {
    fn build(cfg: &ServeConfig) -> ServePredictor {
        match cfg.predictor {
            PredictorKind::Smith => ServePredictor::Smith(SmithPredictor::new(cfg.template_set())),
            PredictorKind::Gibbons => ServePredictor::Gibbons(GibbonsPredictor::new()),
            PredictorKind::DowneyAvg => ServePredictor::Downey(DowneyPredictor::new(
                DowneyVariant::ConditionalAverage,
                Some(Characteristic::User),
            )),
            PredictorKind::DowneyMed => ServePredictor::Downey(DowneyPredictor::new(
                DowneyVariant::ConditionalMedian,
                Some(Characteristic::User),
            )),
        }
    }

    fn encode_state(&self) -> String {
        match self {
            ServePredictor::Smith(p) => p.encode_state(),
            ServePredictor::Gibbons(p) => p.encode_state(),
            ServePredictor::Downey(p) => p.encode_state(),
        }
    }

    fn decode_state(
        cfg: &ServeConfig,
        syms: &SymbolTable,
        text: &str,
    ) -> Result<ServePredictor, String> {
        Ok(match cfg.predictor {
            PredictorKind::Smith => {
                ServePredictor::Smith(SmithPredictor::decode_state(cfg.template_set(), text)?)
            }
            PredictorKind::Gibbons => {
                ServePredictor::Gibbons(GibbonsPredictor::decode_state(syms, text)?)
            }
            PredictorKind::DowneyAvg | PredictorKind::DowneyMed => {
                ServePredictor::Downey(DowneyPredictor::decode_state(syms, text)?)
            }
        })
    }

    /// Completed data points held, for memory-bound checks. Smith reports
    /// its category store; the baselines report their history vectors'
    /// total length.
    fn resident_points(&self) -> usize {
        match self {
            ServePredictor::Smith(p) => p.resident_points(),
            // The baselines keep per-category runtime vectors; their
            // encoded state is proportional to the resident points, which
            // is good enough for diagnostics.
            ServePredictor::Gibbons(_) | ServePredictor::Downey(_) => 0,
        }
    }
}

impl RunTimePredictor for ServePredictor {
    fn name(&self) -> &'static str {
        match self {
            ServePredictor::Smith(p) => p.name(),
            ServePredictor::Gibbons(p) => p.name(),
            ServePredictor::Downey(p) => p.name(),
        }
    }

    fn predict(&mut self, job: &Job, elapsed: Dur) -> Prediction {
        match self {
            ServePredictor::Smith(p) => p.predict(job, elapsed),
            ServePredictor::Gibbons(p) => p.predict(job, elapsed),
            ServePredictor::Downey(p) => p.predict(job, elapsed),
        }
    }

    fn on_complete(&mut self, job: &Job) {
        match self {
            ServePredictor::Smith(p) => p.on_complete(job),
            ServePredictor::Gibbons(p) => p.on_complete(job),
            ServePredictor::Downey(p) => p.on_complete(job),
        }
    }

    fn reset(&mut self) {
        match self {
            ServePredictor::Smith(p) => p.reset(),
            ServePredictor::Gibbons(p) => p.reset(),
            ServePredictor::Downey(p) => p.reset(),
        }
    }

    fn generation(&self) -> Option<u64> {
        match self {
            ServePredictor::Smith(p) => p.generation(),
            ServePredictor::Gibbons(p) => p.generation(),
            ServePredictor::Downey(p) => p.generation(),
        }
    }
}

/// Magic first line of an encoded state body.
pub const STATE_MAGIC: &str = "qpredict-serve-state v1";

/// The in-memory service state. See the module docs for the model.
#[derive(Debug)]
pub struct ServiceState {
    cfg: ServeConfig,
    syms: SymbolTable,
    predictor: CachingPredictor<ServePredictor>,
    jobs: HashMap<u64, JobRecord>,
    done_fifo: VecDeque<u64>,
    /// Pending events, kept sorted by `(sort_key, seq)`.
    buffer: Vec<(JobEvent, u64)>,
    watermark: Option<Time>,
    live: usize,
    next_internal: u32,
    applied_seq: u64,
    counters: Counters,
}

impl ServiceState {
    /// An empty service.
    pub fn new(cfg: ServeConfig) -> ServiceState {
        ServiceState {
            predictor: CachingPredictor::new(ServePredictor::build(&cfg)),
            cfg,
            syms: SymbolTable::new(),
            jobs: HashMap::new(),
            done_fifo: VecDeque::new(),
            buffer: Vec::new(),
            watermark: None,
            live: 0,
            next_internal: 0,
            applied_seq: 0,
            counters: Counters::default(),
        }
    }

    /// Sequence number of the last ingested input line.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// The anomaly/throughput counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Jobs currently queued or running.
    pub fn live_jobs(&self) -> usize {
        self.live
    }

    /// Completed data points resident in the predictor's history (Smith
    /// only; baselines report 0). Bounded by
    /// `max_history × template count`.
    pub fn predictor_resident_points(&self) -> usize {
        self.predictor.inner().resident_points()
    }

    /// Events waiting in the reorder buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Estimate-cache statistics of the hosted predictor.
    pub fn cache_stats(&self) -> qpredict_predict::CacheStats {
        self.predictor.stats()
    }

    /// Ingest one raw input line. `seq` must exceed every previously
    /// ingested sequence number; responses (with globally unique
    /// ordinals) are appended to `out`. Never panics on malformed input.
    pub fn ingest_line(&mut self, seq: u64, raw: &str, out: &mut Vec<Response>) {
        debug_assert!(seq > self.applied_seq, "non-monotone input seq {seq}");
        self.applied_seq = seq;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return;
        }
        match JobEvent::parse(line) {
            Err(_) => {
                self.counters.malformed += 1;
                counter_add("serve.malformed", 1);
            }
            Ok(ev) => self.admit(ev, seq, out),
        }
    }

    /// Drain the reorder buffer (end of stream): apply every pending
    /// event in canonical order.
    pub fn drain(&mut self, out: &mut Vec<Response>) {
        while !self.buffer.is_empty() {
            let (ev, _) = self.buffer.remove(0);
            self.apply(ev, out);
        }
    }

    fn admit(&mut self, ev: JobEvent, seq: u64, out: &mut Vec<Response>) {
        self.counters.events += 1;
        counter_add("serve.events", 1);
        if let Some(w) = self.watermark {
            if ev.time < w {
                // Behind the watermark: the canonical position has
                // already been applied past. Backfill immediately — a
                // late finish still teaches the predictor, and the
                // generation bump invalidates stale cached estimates.
                self.counters.late += 1;
                counter_add("serve.late", 1);
                self.apply(ev, out);
                return;
            }
        }
        let key = (ev.sort_key(), seq);
        let pos = self
            .buffer
            .partition_point(|(e, s)| (e.sort_key(), *s) <= key);
        if pos < self.buffer.len() {
            // Something already buffered sorts after this event: the
            // arrival order was not canonical.
            self.counters.out_of_order += 1;
            counter_add("serve.out_of_order", 1);
        }
        self.buffer.insert(pos, (ev, seq));
        while self.buffer.len() > self.cfg.horizon.max(1) {
            let (ev, _) = self.buffer.remove(0);
            self.apply(ev, out);
        }
    }

    fn apply(&mut self, ev: JobEvent, out: &mut Vec<Response>) {
        self.watermark = Some(match self.watermark {
            Some(w) => w.max(ev.time),
            None => ev.time,
        });
        match ev.kind {
            EventKind::Submit(spec) => {
                if self.jobs.contains_key(&ev.id) {
                    self.duplicate();
                    return;
                }
                let internal = self.next_internal;
                self.next_internal += 1;
                let mut chars = [None; 8];
                for (c, v) in &spec.chars {
                    chars[c.index()] = Some(self.syms.intern(v));
                }
                self.jobs.insert(
                    ev.id,
                    JobRecord {
                        internal,
                        nodes: spec.nodes.max(1),
                        limit: spec.limit,
                        chars,
                        submit: ev.time,
                        phase: Phase::Queued,
                    },
                );
                self.live += 1;
                self.shed_overload();
            }
            EventKind::Start => match self.jobs.get_mut(&ev.id) {
                None => self.orphan(),
                Some(r) => match r.phase {
                    Phase::Queued => r.phase = Phase::Running { started: ev.time },
                    Phase::Running { .. } | Phase::Done => self.duplicate(),
                },
            },
            EventKind::Finish { runtime } => match self.jobs.get(&ev.id).copied() {
                None => self.orphan(),
                Some(r) => match r.phase {
                    Phase::Running { started } => {
                        let rt = runtime.unwrap_or_else(|| ev.time.since(started));
                        self.complete(ev.id, r, rt);
                    }
                    Phase::Queued => {
                        // Finish observed before any start: reconcile
                        // with what we have rather than losing the
                        // completion.
                        self.counters.out_of_order += 1;
                        counter_add("serve.out_of_order", 1);
                        let rt = runtime.unwrap_or_else(|| ev.time.since(r.submit));
                        self.complete(ev.id, r, rt);
                    }
                    Phase::Done => self.duplicate(),
                },
            },
            EventKind::Cancel => match self.jobs.get_mut(&ev.id) {
                None => self.orphan(),
                Some(r) => match r.phase {
                    Phase::Queued | Phase::Running { .. } => {
                        r.phase = Phase::Done;
                        self.live -= 1;
                        self.counters.cancelled += 1;
                        counter_add("serve.cancelled", 1);
                        self.retire(ev.id);
                    }
                    Phase::Done => self.duplicate(),
                },
            },
            EventKind::Query => {
                let line = self.answer(ev.id, ev.time);
                self.counters.responses += 1;
                counter_add("serve.responses", 1);
                out.push(Response {
                    ordinal: self.counters.responses,
                    line,
                });
            }
        }
    }

    fn duplicate(&mut self) {
        self.counters.duplicate += 1;
        counter_add("serve.duplicate", 1);
    }

    fn orphan(&mut self) {
        self.counters.orphan += 1;
        counter_add("serve.orphan", 1);
    }

    /// Feed a completion to the predictor and retire the record.
    fn complete(&mut self, id: u64, r: JobRecord, runtime: Dur) {
        let job = r.job(runtime.max(Dur::SECOND));
        self.predictor.on_complete(&job);
        if let Some(rec) = self.jobs.get_mut(&id) {
            rec.phase = Phase::Done;
        }
        self.live -= 1;
        self.counters.completions += 1;
        counter_add("serve.completions", 1);
        self.retire(id);
    }

    /// Move a job into the bounded done-FIFO, evicting beyond `max_done`.
    fn retire(&mut self, id: u64) {
        self.done_fifo.push_back(id);
        while self.done_fifo.len() > self.cfg.max_done.max(1) {
            let old = self.done_fifo.pop_front().expect("non-empty fifo");
            self.jobs.remove(&old);
            self.counters.evicted += 1;
            counter_add("serve.evicted", 1);
        }
    }

    /// Drop-oldest load shedding: while more than `max_jobs` jobs are
    /// live, remove the one with the smallest internal id (the oldest
    /// admission). Subsequent events for a shed job count as orphans.
    fn shed_overload(&mut self) {
        while self.live > self.cfg.max_jobs.max(1) {
            let oldest = self
                .jobs
                .iter()
                .filter(|(_, r)| r.phase != Phase::Done)
                .min_by_key(|(_, r)| r.internal)
                .map(|(id, _)| *id)
                .expect("live > 0 implies a live job exists");
            self.jobs.remove(&oldest);
            self.live -= 1;
            self.counters.shed += 1;
            counter_add("serve.shed", 1);
        }
    }

    /// Answer a wait-time query about `id` at time `now`.
    ///
    /// For a queued job the answer is the paper's estimated queue wait:
    /// build the free-node profile from the predicted completion times of
    /// the running jobs, reserve (FCFS) every job queued ahead at its
    /// earliest fit using its predicted run time, then place the queried
    /// job — its earliest fit minus `now` is the wait.
    fn answer(&mut self, id: u64, now: Time) -> String {
        let Some(r) = self.jobs.get(&id).copied() else {
            return format!("t={} id={id} unknown", now.0);
        };
        match r.phase {
            Phase::Done => format!("t={} id={id} done", now.0),
            Phase::Running { started } => {
                let elapsed = now.since(started).max(Dur::ZERO);
                let p = self
                    .predictor
                    .predict(&r.job(Dur::SECOND), elapsed)
                    .clamped(elapsed);
                let rem = p.estimate - elapsed;
                format!(
                    "t={} id={id} running rem={} ci={:016X} fallback={}",
                    now.0,
                    rem.0,
                    p.ci_halfwidth.to_bits(),
                    u8::from(p.fallback),
                )
            }
            Phase::Queued => {
                let machine = self.cfg.machine_nodes.max(1);
                // Predicted completion times of running jobs, in internal
                // (admission) order for determinism.
                let mut running: Vec<(u32, JobRecord, Time)> = self
                    .jobs
                    .values()
                    .filter_map(|rec| match rec.phase {
                        Phase::Running { started } => Some((rec.internal, *rec, started)),
                        _ => None,
                    })
                    .collect();
                running.sort_by_key(|(internal, _, _)| *internal);
                let mut profile_in: Vec<(u32, Time)> = Vec::with_capacity(running.len());
                for (_, rec, started) in &running {
                    let elapsed = now.since(*started).max(Dur::ZERO);
                    let p = self
                        .predictor
                        .predict(&rec.job(Dur::SECOND), elapsed)
                        .clamped(elapsed);
                    profile_in.push((rec.nodes.min(machine), *started + p.estimate));
                }
                // Disordered streams can legitimately claim more running
                // nodes than the machine has; observe, don't assert.
                let mut violations = Vec::new();
                let mut profile =
                    Profile::new_reporting(machine, now, &profile_in, Some(&mut violations));
                if !violations.is_empty() {
                    counter_add("serve.oversubscribed", 1);
                }
                // FCFS: reserve everything queued ahead of the target.
                let mut queued: Vec<(u32, JobRecord)> = self
                    .jobs
                    .values()
                    .filter_map(|rec| match rec.phase {
                        Phase::Queued if rec.internal < r.internal => Some((rec.internal, *rec)),
                        _ => None,
                    })
                    .collect();
                queued.sort_by_key(|(internal, _)| *internal);
                for (_, rec) in &queued {
                    let p = self
                        .predictor
                        .predict(&rec.job(Dur::SECOND), Dur::ZERO)
                        .clamped(Dur::ZERO);
                    let nodes = rec.nodes.min(machine);
                    let at = profile.earliest_fit(nodes, p.estimate);
                    profile.reserve(at, p.estimate, nodes);
                }
                let p = self
                    .predictor
                    .predict(&r.job(Dur::SECOND), Dur::ZERO)
                    .clamped(Dur::ZERO);
                let start = profile.earliest_fit(r.nodes.min(machine), p.estimate);
                let wait = start.since(now).max(Dur::ZERO);
                format!(
                    "t={} id={id} wait={} runtime={} ci={:016X} fallback={}",
                    now.0,
                    wait.0,
                    p.estimate.0,
                    p.ci_halfwidth.to_bits(),
                    u8::from(p.fallback),
                )
            }
        }
    }

    // ----- snapshot codec ------------------------------------------------

    /// Serialize the full state to a text body (no checksum framing; the
    /// durability layer seals it). Deterministic: equal states encode to
    /// equal bytes, and every floating-point aggregate inside the
    /// predictor is carried bitwise, so decode → encode is the identity.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{STATE_MAGIC}");
        let _ = writeln!(s, "config fp={:016X}", self.cfg.fingerprint());
        let _ = writeln!(
            s,
            "cursor seq={} next={} watermark={}",
            self.applied_seq,
            self.next_internal,
            match self.watermark {
                Some(t) => t.0.to_string(),
                None => "-".to_string(),
            }
        );
        let _ = writeln!(s, "{}", self.counters.encode());
        for (_, name) in self.syms.iter() {
            let _ = writeln!(s, "sym {name}");
        }
        let mut jobs: Vec<(&u64, &JobRecord)> = self.jobs.iter().collect();
        jobs.sort_by_key(|(_, r)| r.internal);
        for (ext, r) in jobs {
            let phase = match r.phase {
                Phase::Queued => "q".to_string(),
                Phase::Running { started } => format!("r:{}", started.0),
                Phase::Done => "d".to_string(),
            };
            let chars: Vec<String> = r
                .chars
                .iter()
                .map(|c| match c {
                    Some(sym) => sym.index().to_string(),
                    None => "-".to_string(),
                })
                .collect();
            let _ = writeln!(
                s,
                "job {ext} {} {} {} {} {} {}",
                r.internal,
                r.nodes,
                match r.limit {
                    Some(l) => l.0.to_string(),
                    None => "-".to_string(),
                },
                r.submit.0,
                phase,
                chars.join(","),
            );
        }
        let fifo: Vec<String> = self.done_fifo.iter().map(|id| id.to_string()).collect();
        let _ = writeln!(
            s,
            "donefifo {}",
            if fifo.is_empty() {
                "-".to_string()
            } else {
                fifo.join(",")
            }
        );
        for (ev, seq) in &self.buffer {
            let _ = writeln!(s, "rb {seq} {}", ev.encode());
        }
        let _ = writeln!(s, "pred {}", self.cfg.predictor.name());
        for line in self.predictor.inner().encode_state().lines() {
            let _ = writeln!(s, "| {line}");
        }
        s
    }

    /// Rebuild a state from [`ServiceState::encode`] output. `cfg` must
    /// fingerprint-match the one the state was recorded under.
    pub fn decode(cfg: ServeConfig, text: &str) -> Result<ServiceState, String> {
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty state")?;
        if magic != STATE_MAGIC {
            return Err(format!("not a serve state: {magic:?}"));
        }
        let mut state = ServiceState::new(cfg);
        let mut pred_lines = String::new();
        let mut pred_named = false;
        let mut seen_fifo = false;
        for line in lines {
            let (word, rest) = line.split_once(' ').unwrap_or((line, ""));
            match word {
                "config" => {
                    let fp = rest
                        .strip_prefix("fp=")
                        .ok_or("bad config line")
                        .and_then(|h| {
                            u64::from_str_radix(h, 16).map_err(|_| "bad config fingerprint")
                        })?;
                    if fp != state.cfg.fingerprint() {
                        return Err(format!(
                            "state recorded under a different configuration \
                             (fp {fp:016X}, ours {:016X})",
                            state.cfg.fingerprint()
                        ));
                    }
                }
                "cursor" => {
                    let f = qpredict_durable::parse_kv(rest, &["seq", "next", "watermark"])?;
                    state.applied_seq = f[0].parse().map_err(|e| format!("bad cursor seq: {e}"))?;
                    state.next_internal =
                        f[1].parse().map_err(|e| format!("bad cursor next: {e}"))?;
                    state.watermark = match f[2] {
                        "-" => None,
                        t => Some(Time(t.parse().map_err(|e| format!("bad watermark: {e}"))?)),
                    };
                }
                "counters" => state.counters = Counters::decode(rest)?,
                "sym" => {
                    state.syms.intern(rest);
                }
                "job" => {
                    let w: Vec<&str> = rest.split(' ').collect();
                    if w.len() != 7 {
                        return Err(format!("bad job record: {rest:?}"));
                    }
                    let ext: u64 = w[0].parse().map_err(|e| format!("bad job id: {e}"))?;
                    let internal: u32 =
                        w[1].parse().map_err(|e| format!("bad internal id: {e}"))?;
                    let nodes: u32 = w[2].parse().map_err(|e| format!("bad nodes: {e}"))?;
                    let limit = match w[3] {
                        "-" => None,
                        l => Some(Dur(l.parse().map_err(|e| format!("bad limit: {e}"))?)),
                    };
                    let submit = Time(w[4].parse().map_err(|e| format!("bad submit: {e}"))?);
                    let phase = match w[5] {
                        "q" => Phase::Queued,
                        "d" => Phase::Done,
                        p => match p.strip_prefix("r:") {
                            Some(t) => Phase::Running {
                                started: Time(
                                    t.parse().map_err(|e| format!("bad start time: {e}"))?,
                                ),
                            },
                            None => return Err(format!("bad phase {p:?}")),
                        },
                    };
                    let mut chars = [None; 8];
                    let parts: Vec<&str> = w[6].split(',').collect();
                    if parts.len() != 8 {
                        return Err(format!("bad characteristics {:?}", w[6]));
                    }
                    for (i, part) in parts.iter().enumerate() {
                        if *part != "-" {
                            let idx: usize =
                                part.parse().map_err(|e| format!("bad sym index: {e}"))?;
                            chars[i] = Some(
                                state
                                    .syms
                                    .sym_at(idx)
                                    .ok_or_else(|| format!("sym index {idx} beyond table"))?,
                            );
                        }
                    }
                    if state
                        .jobs
                        .insert(
                            ext,
                            JobRecord {
                                internal,
                                nodes,
                                limit,
                                chars,
                                submit,
                                phase,
                            },
                        )
                        .is_some()
                    {
                        return Err(format!("duplicate job record for id {ext}"));
                    }
                    if phase != Phase::Done {
                        state.live += 1;
                    }
                }
                "donefifo" => {
                    seen_fifo = true;
                    if rest != "-" {
                        for part in rest.split(',') {
                            state
                                .done_fifo
                                .push_back(part.parse().map_err(|e| format!("bad done id: {e}"))?);
                        }
                    }
                }
                "rb" => {
                    let (seq, ev) = rest.split_once(' ').ok_or("bad rb record")?;
                    let seq: u64 = seq.parse().map_err(|e| format!("bad rb seq: {e}"))?;
                    let ev = JobEvent::parse(ev).map_err(|e| format!("bad rb event: {e}"))?;
                    state.buffer.push((ev, seq));
                }
                "pred" => {
                    if rest != state.cfg.predictor.name() {
                        return Err(format!(
                            "state hosts predictor {rest:?}, config wants {:?}",
                            state.cfg.predictor.name()
                        ));
                    }
                    pred_named = true;
                }
                "|" => {
                    pred_lines.push_str(rest);
                    pred_lines.push('\n');
                }
                other => return Err(format!("unknown state record {other:?}")),
            }
        }
        if !pred_named {
            return Err("state missing predictor section".into());
        }
        if !seen_fifo {
            return Err("state missing donefifo record".into());
        }
        let inner = ServePredictor::decode_state(&state.cfg, &state.syms, &pred_lines)?;
        state.predictor = CachingPredictor::new(inner);
        // The buffer must come back in its sorted order; verify rather
        // than trust.
        let sorted = state
            .buffer
            .windows(2)
            .all(|w| (w[0].0.sort_key(), w[0].1) <= (w[1].0.sort_key(), w[1].1));
        if !sorted {
            return Err("reorder buffer not in canonical order".into());
        }
        Ok(state)
    }

    /// FNV-1a fingerprint of the encoded state — the bit-identity probe
    /// used by the chaos tests.
    pub fn fingerprint(&self) -> u64 {
        qpredict_durable::fnv1a(self.encode().as_bytes())
    }

    /// Like [`ServiceState::fingerprint`], but ignoring the anomaly
    /// counters. Equivalence tests use this: two arrival orders of the
    /// same events legitimately observe different `out_of_order`/`late`
    /// tallies yet must converge to the same learned state, job table,
    /// and pending buffer.
    pub fn core_fingerprint(&self) -> u64 {
        let full = self.encode();
        let body: Vec<&str> = full
            .lines()
            .filter(|l| !l.starts_with("counters "))
            .collect();
        qpredict_durable::fnv1a(body.join("\n").as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(state: &mut ServiceState, lines: &[&str]) -> Vec<Response> {
        let mut out = Vec::new();
        let base = state.applied_seq();
        for (i, line) in lines.iter().enumerate() {
            state.ingest_line(base + 1 + i as u64, line, &mut out);
        }
        out
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            horizon: 4,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn lifecycle_and_query_produce_deterministic_responses() {
        let mut s = ServiceState::new(small_cfg());
        let mut out = feed(
            &mut s,
            &[
                "submit 1 100 nodes=8 limit=3600 u=alice",
                "start 1 110",
                "finish 1 710",
                "submit 2 800 nodes=8 limit=3600 u=alice",
                "query 2 801",
            ],
        );
        let mut drained = Vec::new();
        s.drain(&mut drained);
        out.extend(drained);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ordinal, 1);
        assert!(out[0].line.contains("id=2"), "{}", out[0].line);
        assert!(out[0].line.contains("wait="), "{}", out[0].line);
        assert_eq!(s.counters().completions, 1);
        assert_eq!(s.counters().responses, 1);
    }

    #[test]
    fn anomalies_are_counted_not_fatal() {
        let mut s = ServiceState::new(ServeConfig {
            horizon: 1,
            ..ServeConfig::default()
        });
        let responses = feed(
            &mut s,
            &[
                "submit 1 100 nodes=4",
                "submit 1 100 nodes=4", // duplicate submit
                "start 9 120",          // orphan
                "finish 1 200",         // finish before start: reconciled
                "finish 1 201",         // duplicate finish
                "not an event line",    // malformed
                "submit 2 300 nodes=4",
                "query 1 150", // behind watermark: late backfill
            ],
        );
        let mut out = Vec::new();
        s.drain(&mut out);
        let c = *s.counters();
        assert_eq!(c.duplicate, 2);
        assert_eq!(c.orphan, 1);
        assert!(c.out_of_order >= 1, "finish-before-start must count");
        assert_eq!(c.malformed, 1);
        assert!(c.late >= 1, "late counter: {c:?}");
        assert_eq!(c.completions, 1);
        assert_eq!(responses.len(), 1, "late query must still answer");
        assert!(responses[0].line.contains("done"), "{}", responses[0].line);
    }

    #[test]
    fn reorder_within_horizon_converges_to_canonical_order() {
        let lines = [
            "submit 1 100 nodes=4 u=a",
            "start 1 110",
            "finish 1 400",
            "submit 2 450 nodes=4 u=a",
            "query 2 451",
        ];
        let mut in_order = ServiceState::new(small_cfg());
        let mut a = feed(&mut in_order, &lines);
        let mut t = Vec::new();
        in_order.drain(&mut t);
        a.extend(t);

        // Swap adjacent events (displacement 1 < horizon 4).
        let shuffled = [lines[1], lines[0], lines[3], lines[2], lines[4]];
        let mut disordered = ServiceState::new(small_cfg());
        let mut b = feed(&mut disordered, &shuffled);
        let mut t = Vec::new();
        disordered.drain(&mut t);
        b.extend(t);

        assert_eq!(
            a.iter().map(|r| &r.line).collect::<Vec<_>>(),
            b.iter().map(|r| &r.line).collect::<Vec<_>>()
        );
        assert_eq!(in_order.core_fingerprint(), disordered.core_fingerprint());
        assert!(disordered.counters().out_of_order >= 1);
    }

    #[test]
    fn state_round_trips_bit_identically() {
        let cfg = small_cfg();
        let mut s = ServiceState::new(cfg.clone());
        feed(
            &mut s,
            &[
                "submit 1 100 nodes=8 limit=3600 u=alice e=lmp",
                "start 1 110",
                "finish 1 710",
                "submit 2 800 nodes=16 u=bob",
                "start 2 805",
                "submit 3 900 nodes=4 u=alice",
                "query 3 901",
                "cancel 9 950", // orphan — counters must survive too
            ],
        );
        let body = s.encode();
        let back = ServiceState::decode(cfg, &body).expect("decode");
        assert_eq!(back.encode(), body, "decode→encode must be the identity");
        assert_eq!(back.fingerprint(), s.fingerprint());
        // And the two must continue in lockstep.
        let mut s2 = back;
        let mut orig = s;
        let lines = ["query 3 960", "finish 2 1400", "query 3 1500"];
        let mut ra = feed(&mut orig, &lines);
        let mut rb = feed(&mut s2, &lines);
        let mut t = Vec::new();
        orig.drain(&mut t);
        ra.extend(t);
        let mut t = Vec::new();
        s2.drain(&mut t);
        rb.extend(t);
        assert_eq!(ra, rb);
        assert_eq!(orig.fingerprint(), s2.fingerprint());
    }

    #[test]
    fn decode_rejects_garbage_and_wrong_config() {
        let cfg = small_cfg();
        let s = ServiceState::new(cfg.clone());
        let body = s.encode();
        assert!(ServiceState::decode(cfg.clone(), "").is_err());
        assert!(ServiceState::decode(cfg.clone(), "serve nonsense\n").is_err());
        let mut other = cfg.clone();
        other.max_history = 7;
        assert!(ServiceState::decode(other, &body)
            .unwrap_err()
            .contains("different configuration"),);
        // Truncating the predictor section must fail, not half-load.
        let cut = body
            .lines()
            .filter(|l| !l.starts_with("pred"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(ServiceState::decode(cfg, &cut).is_err());
    }

    #[test]
    fn load_shedding_and_done_eviction_bound_the_job_table() {
        let cfg = ServeConfig {
            max_jobs: 8,
            max_done: 8,
            horizon: 1,
            ..ServeConfig::default()
        };
        let mut s = ServiceState::new(cfg);
        let mut out = Vec::new();
        // Each round admits two jobs and completes one, so the live set
        // grows without bound unless shedding holds the line, and the
        // done set grows without bound unless the FIFO evicts.
        for i in 0..40i64 {
            let t = 100 + i * 10;
            let a = 2 * i as u64 + 1;
            let b = a + 1;
            for line in [
                format!("submit {a} {t} nodes=4 u=u{}", i % 5),
                format!("submit {b} {t} nodes=4 u=u{}", i % 5),
                format!("start {a} {}", t + 1),
                format!("finish {a} {}", t + 5),
            ] {
                s.ingest_line(s.applied_seq() + 1, &line, &mut out);
            }
        }
        s.drain(&mut out);
        assert!(s.live_jobs() <= 8, "live {}", s.live_jobs());
        assert!(s.jobs.len() <= 8 + 8, "table {}", s.jobs.len());
        assert!(s.counters().shed > 0, "{:?}", s.counters());
        assert!(s.counters().evicted > 0, "{:?}", s.counters());
    }
}
