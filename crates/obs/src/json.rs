//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds offline with no crates beyond std, so the run
//! report carries its own (deliberately small) JSON implementation:
//! enough to emit a report deterministically and to parse one back for
//! schema validation. Object member order is preserved (a `Vec`, not a
//! map), which keeps reports byte-stable for a given run.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members
                .iter()
                .find(|(k, _)| k.as_str() == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a.as_slice()),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m.as_slice()),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (trailing whitespace allowed, nothing
    /// else). Errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: combine when a low
                            // surrogate follows, else substitute.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("q\"uote\\slash\n".into())),
            ("n".into(), Json::Num(42.0)),
            ("pi".into(), Json::Num(3.25)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Obj(vec![])]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 1234567.0);
        assert_eq!(s, "1234567");
        let mut s = String::new();
        write_num(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aébA 😀 \t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aébA 😀 \t");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse(r#"{"a": {"b": [1, "x"]}, "c": -2.5}"#).unwrap();
        assert_eq!(
            v.get("a")
                .and_then(|a| a.get("b"))
                .and_then(|b| b.as_arr())
                .map(|a| a.len()),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(|c| c.as_f64()), Some(-2.5));
        assert!(v.get("missing").is_none());
        assert!(v.get("a").unwrap().as_str().is_none());
    }
}
