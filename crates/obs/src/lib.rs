#![warn(missing_docs)]

//! Structured observability for the qpredict workspace.
//!
//! Three facilities, all std-only and deliberately boring:
//!
//! * **Scoped span timers** — [`span()`] returns a guard that, while
//!   recording is enabled, measures the wall-clock time between its
//!   creation and its drop and folds it into a per-label aggregate
//!   ([`SpanStats`]: call count, total, max, and a log2-bucketed latency
//!   histogram). Spans nest: a thread-local label stack turns a span
//!   opened inside another into the path `outer/inner`, so the report
//!   distinguishes a predictor fit inside a nested forecast from one in
//!   the outer engine.
//! * **Named counters** — [`counter_add`] accumulates monotonic event
//!   counts (cache hits, degradations, injected faults, …) under one
//!   registry so every report carries every tally, instead of only the
//!   ones a particular call path remembered to plumb through.
//! * **A run report** — [`report::RunReport`] serializes the spans,
//!   counters, per-command metrics, and a config fingerprint into one
//!   JSON object ([`json::Json`]), written atomically (tmp + rename).
//!
//! # Recording is off by default and never perturbs behaviour
//!
//! The global toggle ([`set_recording`]) gates every span and counter:
//! when off, the only cost is one relaxed atomic load per call site
//! (benchmarked under 2% of an estimate's cost in the estimation bench).
//! Timing data is *never* fed back into any scheduling or prediction
//! decision — `tests/estimation_lock.rs` locks bit-identical outputs
//! with recording on and off.
//!
//! # Threading model
//!
//! The registry is **thread-local**: each thread aggregates its own
//! spans and counters, and [`snapshot`] reads the calling thread's view.
//! This keeps the hot path free of cross-thread synchronization and
//! keeps parallel test binaries from polluting each other's tallies.
//! Worker threads (e.g. the GA evaluation pool) do not publish directly;
//! their health deltas are absorbed on the coordinating thread, which
//! mirrors them into its registry.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

pub mod json;
pub mod report;

/// Number of log2 latency buckets: bucket `i` counts spans whose
/// duration in nanoseconds `d` satisfies `floor(log2(d)) == i` (bucket 0
/// also holds `d == 0`; the last bucket holds everything ≥ 2^31 ns).
pub const HIST_BUCKETS: usize = 32;

static RECORDING: AtomicBool = AtomicBool::new(false);

/// Is recording currently enabled?
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turn recording on or off, process-wide. Off is the default; the off
/// path costs one relaxed atomic load per span/counter call site.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Aggregate timing statistics for one span label (or nested path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans recorded under this label.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Log2-bucketed latency histogram; see [`HIST_BUCKETS`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for SpanStats {
    fn default() -> SpanStats {
        SpanStats {
            count: 0,
            total_ns: 0,
            max_ns: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        let idx = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Mean span duration in nanoseconds (0 when no spans recorded).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    /// Labels of the spans currently open on this thread, outermost
    /// first; a span's aggregate key is the `/`-joined stack.
    stack: Vec<&'static str>,
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<&'static str, u64>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

/// A scoped span guard: created by [`span()`], records on drop.
///
/// Guards must be dropped in the reverse order of creation (let them go
/// out of scope normally) — the nesting path comes from a stack.
#[must_use = "a span guard measures until it is dropped; binding it to _ drops it immediately"]
pub struct SpanGuard {
    /// `None` when recording was off at creation: the drop is free and
    /// nothing was pushed on the label stack.
    start: Option<Instant>,
}

/// Open a span under `label`. While recording is enabled the returned
/// guard measures until drop and aggregates into the thread's registry;
/// while disabled it costs one atomic load and does nothing.
#[inline]
pub fn span(label: &'static str) -> SpanGuard {
    if !recording() {
        return SpanGuard { start: None };
    }
    REGISTRY.with(|r| r.borrow_mut().stack.push(label));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

/// `span!("label")` — macro alias of [`span()`], for symmetry with other
/// instrumentation macros. Bind the result: `let _s = span!("fit");`.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::span($label)
    };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        REGISTRY.with(|r| {
            let mut reg = r.borrow_mut();
            let path = reg.stack.join("/");
            reg.stack.pop();
            reg.spans.entry(path).or_default().record(ns);
        });
    }
}

/// Add `delta` to the named monotonic counter (no-op while recording is
/// disabled).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !recording() {
        return;
    }
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        *reg.counters.entry(name).or_insert(0) += delta;
    });
}

/// A point-in-time copy of the calling thread's registry, in
/// deterministic (sorted-by-name) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsSnapshot {
    /// `(span path, stats)` pairs, sorted by path.
    pub spans: Vec<(String, SpanStats)>,
    /// `(counter name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl ObsSnapshot {
    /// Look up one span's stats by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStats> {
        self.spans
            .iter()
            .find(|(p, _)| p.as_str() == path)
            .map(|(_, s)| s)
    }

    /// Look up one counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// Copy the calling thread's aggregates.
pub fn snapshot() -> ObsSnapshot {
    REGISTRY.with(|r| {
        let reg = r.borrow();
        ObsSnapshot {
            spans: reg
                .spans
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            counters: reg
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        }
    })
}

/// Clear the calling thread's aggregates (open-span nesting state is
/// preserved so a reset inside a span cannot corrupt the label stack).
pub fn reset() {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.spans.clear();
        reg.counters.clear();
    });
}

/// FNV-1a over a byte stream — the workspace's standard cheap
/// fingerprint (same constants as the checkpoint checksum and the
/// estimation-lock fingerprints).
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that toggle the global recording flag must not interleave.
    static FLAG: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        FLAG.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _g = locked();
        set_recording(false);
        reset();
        {
            let _s = span("never");
            counter_add("never", 3);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn spans_nest_into_paths_and_aggregate() {
        let _g = locked();
        set_recording(true);
        reset();
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _lone = span("inner");
        }
        set_recording(false);
        let snap = snapshot();
        let outer = snap.span("outer").expect("outer recorded");
        assert_eq!(outer.count, 3);
        assert_eq!(outer.buckets.iter().sum::<u64>(), 3);
        assert_eq!(snap.span("outer/inner").expect("nested path").count, 3);
        assert_eq!(snap.span("inner").expect("top-level inner").count, 1);
        assert!(outer.max_ns >= snap.span("outer/inner").unwrap().max_ns / 2);
        reset();
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let _g = locked();
        set_recording(true);
        reset();
        counter_add("a.hits", 2);
        counter_add("a.hits", 5);
        counter_add("b.misses", 1);
        set_recording(false);
        let snap = snapshot();
        assert_eq!(snap.counter("a.hits"), 7);
        assert_eq!(snap.counter("b.misses"), 1);
        assert_eq!(snap.counter("absent"), 0);
        reset();
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = SpanStats::default();
        s.record(0);
        s.record(1);
        s.record(2);
        s.record(3);
        s.record(1024);
        s.record(u64::MAX);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[1], 2); // 2 and 3
        assert_eq!(s.buckets[10], 1); // 1024
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 1); // clamped tail
        assert_eq!(s.count, 6);
        assert_eq!(s.max_ns, u64::MAX);
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(*b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a([]), 0xcbf29ce484222325);
    }
}
