//! The machine-readable run report.
//!
//! One JSON object per run: schema version, the command and its
//! arguments (with an FNV-1a config fingerprint so reports from
//! identical invocations are trivially groupable), per-command metrics,
//! and the thread's span/counter aggregates. Written atomically — tmp
//! file then rename, the same pattern as `qpredict-search`'s checkpoint
//! writer — so a reader never observes a torn report.
//!
//! ## Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "command": "simulate",
//!   "config": { "fingerprint": "9e3779b97f4a7c15", "args": ["…"] },
//!   "metrics": { "n_jobs": 150, "mean_wait_min": 4.2 },
//!   "spans": [ { "label": "sim.run", "count": 1, "total_ns": 1,
//!                "max_ns": 1, "mean_ns": 1.0, "buckets": [0, …] } ],
//!   "counters": [ { "name": "cache.hits", "value": 12 } ]
//! }
//! ```

use std::io;
use std::path::Path;

use crate::json::Json;
use crate::{fnv1a, ObsSnapshot};

/// Version stamped into (and required of) every report.
pub const SCHEMA_VERSION: u64 = 1;

/// Builder for one run's report.
#[derive(Debug, Clone)]
pub struct RunReport {
    command: String,
    args: Vec<String>,
    metrics: Vec<(String, Json)>,
}

impl RunReport {
    /// Start a report for `command` invoked with `args` (the full
    /// argument vector, command included, as the user typed it).
    pub fn new(command: &str, args: &[String]) -> RunReport {
        RunReport {
            command: command.to_string(),
            args: args.to_vec(),
            metrics: Vec::new(),
        }
    }

    /// Attach one per-command metric (appended in call order).
    pub fn metric(&mut self, key: &str, value: Json) {
        self.metrics.push((key.to_string(), value));
    }

    /// The config fingerprint: FNV-1a over the NUL-joined argument
    /// vector, as a 16-digit hex string.
    pub fn fingerprint(&self) -> String {
        let bytes = self
            .args
            .iter()
            .flat_map(|a| a.bytes().chain(std::iter::once(0u8)));
        format!("{:016x}", fnv1a(bytes))
    }

    /// Assemble the report around a registry snapshot (usually
    /// [`crate::snapshot`] taken at the end of the run).
    pub fn to_json(&self, obs: &ObsSnapshot) -> Json {
        let spans = obs
            .spans
            .iter()
            .map(|(label, s)| {
                Json::Obj(vec![
                    ("label".into(), Json::Str(label.clone())),
                    ("count".into(), Json::Num(s.count as f64)),
                    ("total_ns".into(), Json::Num(s.total_ns as f64)),
                    ("max_ns".into(), Json::Num(s.max_ns as f64)),
                    ("mean_ns".into(), Json::Num(s.mean_ns())),
                    (
                        "buckets".into(),
                        Json::Arr(s.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
                    ),
                ])
            })
            .collect();
        let counters = obs
            .counters
            .iter()
            .map(|(name, v)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.clone())),
                    ("value".into(), Json::Num(*v as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            ("command".into(), Json::Str(self.command.clone())),
            (
                "config".into(),
                Json::Obj(vec![
                    ("fingerprint".into(), Json::Str(self.fingerprint())),
                    (
                        "args".into(),
                        Json::Arr(self.args.iter().map(|a| Json::Str(a.clone())).collect()),
                    ),
                ]),
            ),
            ("metrics".into(), Json::Obj(self.metrics.clone())),
            ("spans".into(), Json::Arr(spans)),
            ("counters".into(), Json::Arr(counters)),
        ])
    }
}

/// Check that `report` is a well-formed version-1 run report. With
/// `require_activity`, additionally require at least one span and one
/// counter (a report from an instrumented run cannot be empty — an
/// empty one means recording never reached the run).
pub fn validate(report: &Json, require_activity: bool) -> Result<(), String> {
    let version = report
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing numeric \"schema_version\"")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
        ));
    }
    let command = report
        .get("command")
        .and_then(Json::as_str)
        .ok_or("missing string \"command\"")?;
    if command.is_empty() {
        return Err("\"command\" is empty".into());
    }
    let config = report.get("config").ok_or("missing \"config\"")?;
    let fp = config
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or("missing string \"config.fingerprint\"")?;
    if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("malformed fingerprint {fp:?}"));
    }
    let args = config
        .get("args")
        .and_then(Json::as_arr)
        .ok_or("missing array \"config.args\"")?;
    if args.iter().any(|a| a.as_str().is_none()) {
        return Err("\"config.args\" must contain only strings".into());
    }
    report
        .get("metrics")
        .and_then(Json::as_obj)
        .ok_or("missing object \"metrics\"")?;
    let spans = report
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("missing array \"spans\"")?;
    for (i, s) in spans.iter().enumerate() {
        let label = s
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("span[{i}] missing string \"label\""))?;
        for key in ["count", "total_ns", "max_ns", "mean_ns"] {
            s.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("span {label:?} missing numeric {key:?}"))?;
        }
        let buckets = s
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("span {label:?} missing array \"buckets\""))?;
        if buckets.len() != crate::HIST_BUCKETS {
            return Err(format!(
                "span {label:?} has {} buckets (expected {})",
                buckets.len(),
                crate::HIST_BUCKETS
            ));
        }
    }
    let counters = report
        .get("counters")
        .and_then(Json::as_arr)
        .ok_or("missing array \"counters\"")?;
    for (i, c) in counters.iter().enumerate() {
        c.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("counter[{i}] missing string \"name\""))?;
        c.get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("counter[{i}] missing numeric \"value\""))?;
    }
    if require_activity {
        if spans.is_empty() {
            return Err("report has no spans (was recording enabled?)".into());
        }
        if counters.is_empty() {
            return Err("report has no counters (was recording enabled?)".into());
        }
    }
    Ok(())
}

/// Write `text` to `path` atomically: write and sync a sibling temp
/// file, then rename over the destination. Parent directories are
/// created as needed.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("report.tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ObsSnapshot {
        let mut buckets = [0u64; crate::HIST_BUCKETS];
        buckets[7] = 2;
        let stats = crate::SpanStats {
            count: 2,
            total_ns: 300,
            max_ns: 200,
            buckets,
        };
        ObsSnapshot {
            spans: vec![("sim.run".into(), stats)],
            counters: vec![("cache.hits".into(), 5)],
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let mut r = RunReport::new("simulate", &["simulate".into(), "toy".into()]);
        r.metric("n_jobs", Json::Num(150.0));
        let j = r.to_json(&sample_snapshot());
        let text = j.to_pretty();
        let back = Json::parse(&text).expect("report parses");
        assert_eq!(back, j);
        validate(&back, true).expect("schema-valid");
        assert_eq!(back.get("command").unwrap().as_str(), Some("simulate"));
    }

    #[test]
    fn fingerprint_depends_on_args_only() {
        let a = RunReport::new("simulate", &["simulate".into(), "toy".into()]);
        let b = RunReport::new("simulate", &["simulate".into(), "toy".into()]);
        let c = RunReport::new("simulate", &["simulate".into(), "ANL".into()]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
    }

    #[test]
    fn validate_rejects_missing_and_empty() {
        let r = RunReport::new("x", &[]);
        let empty = r.to_json(&ObsSnapshot::default());
        validate(&empty, false).expect("structurally fine");
        assert!(validate(&empty, true).is_err(), "no activity must fail");
        let not_report = Json::Obj(vec![("schema_version".into(), Json::Num(1.0))]);
        assert!(validate(&not_report, false).is_err());
        let wrong_version = Json::parse(
            &r.to_json(&sample_snapshot())
                .to_pretty()
                .replace("\"schema_version\": 1", "\"schema_version\": 99"),
        )
        .unwrap();
        assert!(validate(&wrong_version, false).is_err());
    }

    #[test]
    fn atomic_write_lands_complete() {
        let dir = std::env::temp_dir().join("qpredict-obs-test");
        let path = dir.join("nested/report.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_atomic(&path, "{\"ok\": true}\n").expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "{\"ok\": true}\n");
        assert!(
            !path.with_extension("report.tmp").exists(),
            "temp file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
