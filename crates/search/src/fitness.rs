//! Fitness evaluation: how well a template set predicts run times over a
//! recorded prediction workload.
//!
//! Every replay routes through a [`CachingPredictor`]: prediction
//! workloads recorded from wait-time forecasts re-request the same
//! `(job, elapsed)` estimates many times between `Insert` events, and
//! within such a span the predictor's generation — hence every estimate
//! — is frozen, so the repeats are cache hits. The recorded error stream
//! is identical to an uncached replay; only the work changes.

use qpredict_predict::{
    CacheStats, CachingPredictor, ErrorStats, RunTimePredictor, SmithPredictor, TemplateSet,
};
use qpredict_sim::SimError;
use qpredict_workload::Workload;

use crate::workloads::{PredEvent, PredictionWorkload};

/// Replay `pw` through a fresh [`SmithPredictor`] built on `set` and
/// return the prediction-error statistics. Lower mean absolute error is
/// better; this is the raw error `E` the GA's fitness scaling consumes.
pub fn evaluate(set: &TemplateSet, wl: &Workload, pw: &PredictionWorkload) -> ErrorStats {
    evaluate_with_cache(set, wl, pw).0
}

/// Like [`evaluate`], also returning the estimate-cache counters of the
/// replay (folded into `SearchHealth` by the supervisor).
pub fn evaluate_with_cache(
    set: &TemplateSet,
    wl: &Workload,
    pw: &PredictionWorkload,
) -> (ErrorStats, CacheStats) {
    let mut predictor = CachingPredictor::new(SmithPredictor::new(set.clone()));
    let mut stats = ErrorStats::new();
    for ev in &pw.events {
        match *ev {
            PredEvent::Predict { job, elapsed } => {
                let j = wl.job(job);
                let pred = predictor.predict(j, elapsed);
                stats.record(pred.estimate, j.runtime);
            }
            PredEvent::Insert { job } => predictor.on_complete(wl.job(job)),
        }
    }
    (stats, predictor.stats())
}

/// The step budget [`evaluate_guarded`] derives when the caller passes
/// none: every evaluation replays exactly `pw.events.len()` events, so
/// any legitimate run finishes well inside this.
pub fn derived_eval_budget(pw: &PredictionWorkload) -> u64 {
    pw.events.len() as u64 + 1_000
}

/// Like [`evaluate`], but under a step budget: each replayed event costs
/// one step, and exceeding `max_steps` aborts with
/// [`SimError::BudgetExhausted`] — the same watchdog contract
/// `Simulation::run_guarded` gives the scheduler, applied to the GA's
/// fitness loop so a hung evaluation cannot wedge a search worker.
pub fn evaluate_guarded(
    set: &TemplateSet,
    wl: &Workload,
    pw: &PredictionWorkload,
    max_steps: u64,
) -> Result<ErrorStats, SimError> {
    evaluate_guarded_with_cache(set, wl, pw, max_steps).map(|(stats, _)| stats)
}

/// Like [`evaluate_guarded`], also returning the estimate-cache counters
/// of the replay so the supervisor can fold them into `SearchHealth`.
pub fn evaluate_guarded_with_cache(
    set: &TemplateSet,
    wl: &Workload,
    pw: &PredictionWorkload,
    max_steps: u64,
) -> Result<(ErrorStats, CacheStats), SimError> {
    let mut predictor = CachingPredictor::new(SmithPredictor::new(set.clone()));
    let mut stats = ErrorStats::new();
    let mut steps = 0u64;
    for ev in &pw.events {
        steps += 1;
        if steps > max_steps {
            return Err(SimError::BudgetExhausted { steps: max_steps });
        }
        match *ev {
            PredEvent::Predict { job, elapsed } => {
                let j = wl.job(job);
                let pred = predictor.predict(j, elapsed);
                stats.record(pred.estimate, j.runtime);
            }
            PredEvent::Insert { job } => predictor.on_complete(wl.job(job)),
        }
    }
    Ok((stats, predictor.stats()))
}

/// Evaluate many template sets in parallel over the same workload,
/// returning errors in input order. Uses scoped threads with a shared
/// work queue (the sets differ wildly in cost, so static partitioning
/// would straggle).
pub fn evaluate_many(
    sets: &[TemplateSet],
    wl: &Workload,
    pw: &PredictionWorkload,
    threads: usize,
) -> Vec<ErrorStats> {
    let threads = threads.max(1).min(sets.len().max(1));
    if threads <= 1 || sets.len() <= 1 {
        return sets.iter().map(|s| evaluate(s, wl, pw)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<ErrorStats>>> = (0..sets.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= sets.len() {
                    break;
                }
                let stats = evaluate(&sets[i], wl, pw);
                *results[i].lock().expect("result slot poisoned") = Some(stats);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Target;
    use qpredict_predict::Template;
    use qpredict_sim::Algorithm;
    use qpredict_workload::synthetic::toy;
    use qpredict_workload::Characteristic;

    fn setup() -> (Workload, PredictionWorkload) {
        let wl = toy(250, 32, 11);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 3);
        (wl, pw)
    }

    #[test]
    fn informative_templates_beat_uninformative() {
        let (wl, pw) = setup();
        let informative = TemplateSet::new(vec![
            Template::mean_over(&[
                Characteristic::User,
                Characteristic::Executable,
                Characteristic::Arguments,
            ]),
            Template::mean_over(&[Characteristic::User, Characteristic::Executable]),
            Template::mean_over(&[Characteristic::User]),
        ]);
        let uninformative = TemplateSet::new(vec![Template::mean_over(&[])]);
        let ei = evaluate(&informative, &wl, &pw);
        let eu = evaluate(&uninformative, &wl, &pw);
        assert!(
            ei.mean_abs_error_min() < eu.mean_abs_error_min(),
            "informative {:.2} vs global {:.2}",
            ei.mean_abs_error_min(),
            eu.mean_abs_error_min()
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (wl, pw) = setup();
        let set = TemplateSet::new(vec![Template::mean_over(&[Characteristic::User])]);
        assert_eq!(evaluate(&set, &wl, &pw), evaluate(&set, &wl, &pw));
    }

    #[test]
    fn parallel_matches_serial() {
        let (wl, pw) = setup();
        let sets: Vec<TemplateSet> = vec![
            TemplateSet::new(vec![Template::mean_over(&[])]),
            TemplateSet::new(vec![Template::mean_over(&[Characteristic::User])]),
            TemplateSet::new(vec![
                Template::mean_over(&[Characteristic::User]).with_node_range(2)
            ]),
            TemplateSet::new(vec![Template::mean_over(&[Characteristic::Executable])]),
        ];
        let serial: Vec<_> = sets.iter().map(|s| evaluate(s, &wl, &pw)).collect();
        let parallel = evaluate_many(&sets, &wl, &pw, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn guarded_matches_unguarded_within_budget() {
        let (wl, pw) = setup();
        let set = TemplateSet::new(vec![Template::mean_over(&[Characteristic::User])]);
        let plain = evaluate(&set, &wl, &pw);
        let guarded =
            evaluate_guarded(&set, &wl, &pw, derived_eval_budget(&pw)).expect("budget is generous");
        assert_eq!(plain, guarded);
    }

    #[test]
    fn guarded_reports_budget_exhaustion() {
        let (wl, pw) = setup();
        let set = TemplateSet::new(vec![Template::mean_over(&[])]);
        let err = evaluate_guarded(&set, &wl, &pw, 3).unwrap_err();
        assert_eq!(err, SimError::BudgetExhausted { steps: 3 });
    }

    #[test]
    fn every_prediction_counted() {
        let (wl, pw) = setup();
        let set = TemplateSet::new(vec![Template::mean_over(&[])]);
        let stats = evaluate(&set, &wl, &pw);
        assert_eq!(stats.count(), pw.n_predictions as u64);
    }

    #[test]
    fn cached_replay_is_invisible_to_the_error_stream() {
        let (wl, pw) = setup();
        let set = TemplateSet::new(vec![Template::mean_over(&[Characteristic::User])]);
        let (stats, cache) = evaluate_with_cache(&set, &wl, &pw);
        assert_eq!(stats, evaluate(&set, &wl, &pw));
        // Every Predict event was scored, hit or miss.
        assert_eq!(cache.total(), pw.n_predictions as u64);
        let (guarded, gcache) =
            evaluate_guarded_with_cache(&set, &wl, &pw, derived_eval_budget(&pw))
                .expect("budget is generous");
        assert_eq!(guarded, stats);
        assert_eq!(gcache, cache);
    }
}
