//! Greedy template-set search — the baseline the paper's earlier work
//! compared the GA against (and found inferior). Included for the
//! search-strategy ablation bench.
//!
//! Strategy: starting from an empty set, repeatedly add the candidate
//! template (from a finite pool derived from the workload's recorded
//! characteristics) that most reduces the mean prediction error; stop
//! when no candidate improves or the 10-template cap is reached.

use qpredict_predict::{Template, TemplateSet};
use qpredict_workload::{Characteristic, Workload, CHARACTERISTICS};

use crate::fitness::evaluate_many;
use crate::workloads::PredictionWorkload;

/// Tunables for [`greedy_search`].
#[derive(Debug, Clone)]
pub struct GreedyConfig {
    /// Maximum templates in the result.
    pub max_templates: usize,
    /// Worker threads for candidate evaluation.
    pub threads: usize,
}

impl Default for GreedyConfig {
    fn default() -> GreedyConfig {
        GreedyConfig {
            max_templates: 10,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// The candidate pool: single characteristics and identity pairs, with a
/// few node-range and relative variants each, all using the mean
/// estimator (the paper's best single predictor).
pub fn candidate_pool(wl: &Workload) -> Vec<Template> {
    let recorded: Vec<Characteristic> = CHARACTERISTICS
        .into_iter()
        .filter(|&c| wl.records(c))
        .collect();
    let has_limits = wl.records_max_runtime();
    let mut pool = Vec::new();
    let push_variants = |chars: &[Characteristic], pool: &mut Vec<Template>| {
        let base = Template::mean_over(chars);
        pool.push(base);
        pool.push(base.with_node_range(0));
        pool.push(base.with_node_range(2));
        pool.push(base.with_node_range(4));
        if has_limits {
            pool.push(base.relative());
        }
        pool.push(base.with_rtime());
    };
    push_variants(&[], &mut pool);
    for &c in &recorded {
        push_variants(&[c], &mut pool);
    }
    // Identity pairs around User, the strongest similarity anchor.
    if recorded.contains(&Characteristic::User) {
        for &c in &recorded {
            if c != Characteristic::User {
                push_variants(&[Characteristic::User, c], &mut pool);
            }
        }
    }
    pool
}

/// Run the greedy search. Returns the chosen set and its error
/// trajectory (error after each accepted template).
pub fn greedy_search(
    wl: &Workload,
    pw: &PredictionWorkload,
    cfg: &GreedyConfig,
) -> (TemplateSet, Vec<f64>) {
    let pool = candidate_pool(wl);
    let mut chosen: Vec<Template> = Vec::new();
    let mut trajectory = Vec::new();
    let mut best_err = f64::INFINITY;

    while chosen.len() < cfg.max_templates.min(10) {
        // Evaluate every remaining candidate appended to the current set.
        let candidates: Vec<(usize, TemplateSet)> = pool
            .iter()
            .enumerate()
            .filter(|(_, t)| !chosen.contains(t))
            .map(|(i, t)| {
                let mut ts = chosen.clone();
                ts.push(*t);
                (i, TemplateSet::new(ts))
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let sets: Vec<TemplateSet> = candidates.iter().map(|(_, s)| s.clone()).collect();
        let errors = evaluate_many(&sets, wl, pw, cfg.threads);
        let (best_i, err) = errors
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.mean_abs_error_min()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty candidates");
        if err + 1e-9 >= best_err {
            break; // no improvement
        }
        best_err = err;
        chosen.push(pool[candidates[best_i].0]);
        trajectory.push(err);
    }
    if chosen.is_empty() {
        chosen.push(Template::mean_over(&[]));
        trajectory.push(best_err);
    }
    (TemplateSet::new(chosen), trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Target;
    use qpredict_sim::Algorithm;
    use qpredict_workload::synthetic::toy;

    #[test]
    fn pool_adapts_to_workload() {
        let wl = toy(50, 16, 1);
        let pool = candidate_pool(&wl);
        // toy records user/executable/arguments + limits
        assert!(pool.iter().any(|t| t.relative));
        assert!(pool.iter().any(|t| t.chars.contains(Characteristic::User)
            && t.chars.contains(Characteristic::Executable)));
        assert!(!pool.iter().any(|t| t.chars.contains(Characteristic::Queue)));
    }

    #[test]
    fn greedy_improves_monotonically() {
        let wl = toy(200, 32, 14);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GreedyConfig {
            max_templates: 3,
            threads: 2,
        };
        let (set, traj) = greedy_search(&wl, &pw, &cfg);
        assert!(!traj.is_empty());
        for w in traj.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "greedy must not regress");
        }
        assert!(set.len() <= 3);
    }

    #[test]
    fn greedy_is_deterministic() {
        let wl = toy(150, 32, 15);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GreedyConfig {
            max_templates: 2,
            threads: 2,
        };
        let (a, _) = greedy_search(&wl, &pw, &cfg);
        let (b, _) = greedy_search(&wl, &pw, &cfg);
        assert_eq!(a, b);
    }
}
