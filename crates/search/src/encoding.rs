//! Binary chromosome encoding of template sets (Section 2.1, "Template
//! Definition and Search").
//!
//! Each template is a fixed-width field of [`BITS_PER_TEMPLATE`] bits; a
//! chromosome is 1 to 10 such fields. The encoded facets follow the
//! paper's list:
//!
//! 1. mean or one of the three regressions (2 bits),
//! 2. absolute or relative run times (1 bit),
//! 3. one enable bit per workload characteristic (8 bits),
//! 4. node information: enable bit + range-size exponent, `2^0..2^9`
//!    (1 + 4 bits),
//! 5. history limit: enable bit + exponent, `2^1..2^16` (1 + 4 bits),
//!
//! plus one bit for conditioning on elapsed running time, which the paper
//! defines per template alongside the other facets.

use qpredict_predict::{CharSet, EstimatorKind, Template, TemplateSet};
use qpredict_workload::CHARACTERISTICS;

/// Bits encoding one template.
pub const BITS_PER_TEMPLATE: usize = 2 + 1 + 1 + 8 + (1 + 4) + (1 + 4);

/// A template-set genome: a bit vector of `k x BITS_PER_TEMPLATE` bits,
/// `1 <= k <= 10`.
pub type Chromosome = Vec<bool>;

/// Encode a template as its bit field.
fn encode_template(t: &Template) -> [bool; BITS_PER_TEMPLATE] {
    let mut b = [false; BITS_PER_TEMPLATE];
    let est = EstimatorKind::ALL
        .iter()
        .position(|e| *e == t.estimator)
        .expect("estimator is one of ALL") as u8;
    b[0] = est & 1 != 0;
    b[1] = est & 2 != 0;
    b[2] = t.relative;
    b[3] = t.use_rtime;
    for (k, c) in CHARACTERISTICS.iter().enumerate() {
        b[4 + k] = t.chars.contains(*c);
    }
    if let Some(k) = t.node_range_log2 {
        b[12] = true;
        for bit in 0..4 {
            b[13 + bit] = (k >> bit) & 1 != 0;
        }
    }
    if let Some(h) = t.max_history {
        b[17] = true;
        // h = 2^(e+1), e in 0..16
        let e = (h.max(2).ilog2() - 1).min(15) as u8;
        for bit in 0..4 {
            b[18 + bit] = (e >> bit) & 1 != 0;
        }
    }
    b
}

fn decode_template(b: &[bool]) -> Template {
    debug_assert_eq!(b.len(), BITS_PER_TEMPLATE);
    let est_idx = (b[0] as usize) | ((b[1] as usize) << 1);
    let mut chars = CharSet::EMPTY;
    for (k, c) in CHARACTERISTICS.iter().enumerate() {
        if b[4 + k] {
            chars.insert(*c);
        }
    }
    let node_range_log2 = if b[12] {
        let mut e = 0u8;
        for bit in 0..4 {
            e |= (b[13 + bit] as u8) << bit;
        }
        Some(e % 10) // paper's range sizes stop at 512 = 2^9
    } else {
        None
    };
    let max_history = if b[17] {
        let mut e = 0u32;
        for bit in 0..4 {
            e |= (b[18 + bit] as u32) << bit;
        }
        Some(1u32 << (e + 1)) // 2 .. 65536
    } else {
        None
    };
    Template {
        chars,
        node_range_log2,
        max_history,
        relative: b[2],
        use_rtime: b[3],
        estimator: EstimatorKind::ALL[est_idx],
    }
}

/// Encode a template set as a chromosome.
pub fn encode(set: &TemplateSet) -> Chromosome {
    let mut bits = Vec::with_capacity(set.len() * BITS_PER_TEMPLATE);
    for t in set.templates() {
        bits.extend_from_slice(&encode_template(t));
    }
    bits
}

/// Decode a chromosome into a template set.
///
/// # Panics
/// Panics if the bit length is not a positive multiple of
/// [`BITS_PER_TEMPLATE`] or exceeds 10 templates.
pub fn decode(bits: &[bool]) -> TemplateSet {
    assert!(
        !bits.is_empty() && bits.len().is_multiple_of(BITS_PER_TEMPLATE),
        "chromosome length {} is not a multiple of {BITS_PER_TEMPLATE}",
        bits.len()
    );
    let templates: Vec<Template> = bits
        .chunks_exact(BITS_PER_TEMPLATE)
        .map(decode_template)
        .collect();
    TemplateSet::new(templates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpredict_workload::Characteristic;

    fn sample_templates() -> Vec<Template> {
        vec![
            Template::mean_over(&[Characteristic::User, Characteristic::Executable])
                .with_node_range(3)
                .with_max_history(64)
                .relative()
                .with_rtime(),
            Template::mean_over(&[Characteristic::Queue])
                .with_estimator(EstimatorKind::LogRegression),
            Template::mean_over(&[]),
        ]
    }

    #[test]
    fn round_trip_preserves_templates() {
        let set = TemplateSet::new(sample_templates());
        let bits = encode(&set);
        assert_eq!(bits.len(), 3 * BITS_PER_TEMPLATE);
        let back = decode(&bits);
        assert_eq!(&set, &back);
    }

    #[test]
    fn every_bit_pattern_decodes() {
        // Exhaustively check a sliding pattern: any 22-bit field is a
        // valid template (closure of the search space).
        for i in 0..(1u32 << 22) {
            if i % 7919 != 0 {
                continue; // sample the space
            }
            let bits: Vec<bool> = (0..BITS_PER_TEMPLATE).map(|b| (i >> b) & 1 != 0).collect();
            let t = decode_template(&bits);
            // Node range exponent within the paper's bounds.
            if let Some(k) = t.node_range_log2 {
                assert!(k <= 9);
            }
            if let Some(h) = t.max_history {
                assert!((2..=65536).contains(&h));
                assert!(h.is_power_of_two());
            }
        }
    }

    #[test]
    fn history_exponent_bounds() {
        let t = Template::mean_over(&[]).with_max_history(2);
        let b = encode_template(&t);
        assert_eq!(decode_template(&b).max_history, Some(2));
        let t = Template::mean_over(&[]).with_max_history(65536);
        let b = encode_template(&t);
        assert_eq!(decode_template(&b).max_history, Some(65536));
        // Non-power-of-two histories round down to the nearest encodable.
        let t = Template::mean_over(&[]).with_max_history(100);
        let b = encode_template(&t);
        assert_eq!(decode_template(&b).max_history, Some(64));
    }

    #[test]
    fn estimator_kinds_round_trip() {
        for e in EstimatorKind::ALL {
            let t = Template::mean_over(&[]).with_estimator(e);
            let b = encode_template(&t);
            assert_eq!(decode_template(&b).estimator, e);
        }
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_ragged_chromosomes() {
        decode(&[true; BITS_PER_TEMPLATE + 1]);
    }
}
