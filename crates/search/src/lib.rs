#![warn(missing_docs)]

//! Search for good template sets.
//!
//! The novelty the paper claims over Gibbons and Downey is that the
//! similarity templates are not fixed but *searched for* per workload.
//! This crate implements that search:
//!
//! * [`encoding`] — the paper's binary chromosome for template sets
//!   (estimator, absolute/relative, per-characteristic bits, node-range
//!   size as a power of two 1..512, history limit as a power of two
//!   2..65536);
//! * [`workloads`] — *prediction workloads*: the recorded streams of
//!   predict/insert events a given scheduler generates over a trace
//!   (Section 2.1, "Run-Time Prediction Experiments"), used as the
//!   fitness inputs;
//! * [`fitness`] — replaying a prediction workload through a
//!   [`qpredict_predict::SmithPredictor`] to score a template set by its
//!   mean absolute run-time prediction error;
//! * [`ga`] — the genetic algorithm (fitness scaling with
//!   `F_max = 4 F_min`, stochastic sampling with replacement,
//!   variable-length template/bit crossover, mutation at 0.01 per bit,
//!   two-individual elitism);
//! * [`greedy`] — the greedy search baseline the paper's earlier work
//!   compared against (used here for the ablation bench);
//! * [`supervisor`] — panic-isolated, budgeted, retrying fitness
//!   evaluation with per-cause failure accounting ([`SearchHealth`]);
//! * [`checkpoint`] — the versioned, checksummed on-disk snapshot format
//!   that makes a killed search resumable bit-identically. The generic
//!   codec (checksum framing, atomic replace, bit-exact floats) lives in
//!   the shared [`durable`] crate, re-exported here.

/// The shared checksummed-atomic-write codec (see [`qpredict_durable`]),
/// re-exported so search callers keep one import root.
pub use qpredict_durable as durable;

pub mod checkpoint;
pub mod encoding;
pub mod fitness;
pub mod ga;
pub mod greedy;
pub mod supervisor;
pub mod workloads;

pub use checkpoint::{Checkpoint, CheckpointError, ConfigFingerprint};
pub use encoding::{decode, encode, Chromosome, BITS_PER_TEMPLATE};
pub use fitness::{
    evaluate, evaluate_guarded, evaluate_guarded_with_cache, evaluate_many, evaluate_with_cache,
};
pub use ga::{
    resume_supervised, search, search_supervised, CheckpointPolicy, GaConfig, GaResult, GaRunner,
    SearchError, SupervisedResult,
};
pub use greedy::{greedy_search, GreedyConfig};
pub use supervisor::{EvalOutcome, FailureCause, InjectedPanic, SearchHealth, SupervisorConfig};
pub use workloads::{PredEvent, PredictionWorkload, Target};
