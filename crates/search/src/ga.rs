//! The genetic algorithm over template sets (Section 2.1).
//!
//! Faithful to the paper's description:
//!
//! * individuals are template sets of 1–10 templates, encoded as bit
//!   strings ([`crate::encoding`]);
//! * fitness scaling: `F = F_min + (E_max - E)/(E_max - E_min) x
//!   (F_max - F_min)` with `F_max = 4 F_min`, keeping selection pressure
//!   bounded whatever the error spread;
//! * parents are chosen by *stochastic sampling with replacement*
//!   (roulette wheel);
//! * crossover splices at a random bit position inside a random template
//!   of each parent, subject to the 10-template cap;
//! * every child bit mutates with probability 0.01;
//! * the best two individuals survive to the next generation unmutated
//!   (elitism).

use qpredict_predict::TemplateSet;
use qpredict_workload::{Rng64, Workload};

use crate::encoding::{decode, encode, Chromosome, BITS_PER_TEMPLATE};
use crate::fitness::evaluate_many;
use crate::workloads::PredictionWorkload;

/// Tunables for [`search`].
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to run (the paper's stopping condition is a fixed
    /// generation count).
    pub generations: usize,
    /// Per-bit mutation probability.
    pub mutation_rate: f64,
    /// Minimum scaled fitness; the maximum is `4 x` this, per the paper.
    pub f_min: f64,
    /// Individuals preserved unmutated each generation.
    pub elitism: usize,
    /// Worker threads for fitness evaluation.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Template sets injected into the initial population (warm start),
    /// e.g. [`TemplateSet::default_for`]. The rest is random.
    pub seeds: Vec<TemplateSet>,
}

impl Default for GaConfig {
    fn default() -> GaConfig {
        GaConfig {
            population: 32,
            generations: 25,
            mutation_rate: 0.01,
            f_min: 1.0,
            elitism: 2,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0xCA15_7EAD,
            seeds: Vec::new(),
        }
    }
}

impl GaConfig {
    /// A tiny configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> GaConfig {
        GaConfig {
            population: 10,
            generations: 4,
            seed,
            ..GaConfig::default()
        }
    }
}

/// Outcome of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult {
    /// Best template set found across all generations.
    pub best: TemplateSet,
    /// Its mean absolute run-time prediction error, minutes.
    pub best_error_min: f64,
    /// Best error per generation (for convergence plots/ablation).
    pub error_history: Vec<f64>,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
}

/// Run the genetic search for a good template set over `pw`.
pub fn search(wl: &Workload, pw: &PredictionWorkload, cfg: &GaConfig) -> GaResult {
    assert!(cfg.population >= 4, "population too small");
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let mut population: Vec<Chromosome> = cfg.seeds.iter().map(encode).collect();
    population.truncate(cfg.population);
    while population.len() < cfg.population {
        population.push(random_chromosome(&mut rng));
    }

    let mut best: Option<(f64, Chromosome)> = None;
    let mut error_history = Vec::with_capacity(cfg.generations);
    let mut evaluations = 0;

    for _gen in 0..cfg.generations {
        let sets: Vec<TemplateSet> = population.iter().map(|c| decode(c)).collect();
        let errors: Vec<f64> = evaluate_many(&sets, wl, pw, cfg.threads)
            .iter()
            .map(|s| s.mean_abs_error_min())
            .collect();
        evaluations += sets.len();

        // Track the all-time best.
        for (c, &e) in population.iter().zip(&errors) {
            if best.as_ref().is_none_or(|(be, _)| e < *be) {
                best = Some((e, c.clone()));
            }
        }
        error_history.push(best.as_ref().expect("non-empty population").0);

        // Fitness scaling (paper formula).
        let e_min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
        let e_max = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let f_max = 4.0 * cfg.f_min;
        let fitness: Vec<f64> = errors
            .iter()
            .map(|&e| {
                if (e_max - e_min).abs() < 1e-12 {
                    cfg.f_min
                } else {
                    cfg.f_min + (e_max - e) / (e_max - e_min) * (f_max - cfg.f_min)
                }
            })
            .collect();

        // Elites: the best `elitism` individuals of this generation.
        let mut ranked: Vec<usize> = (0..population.len()).collect();
        ranked.sort_by(|&a, &b| errors[a].partial_cmp(&errors[b]).expect("finite"));
        let elites: Vec<Chromosome> = ranked
            .iter()
            .take(cfg.elitism.min(population.len()))
            .map(|&i| population[i].clone())
            .collect();

        // Offspring by roulette selection + crossover + mutation.
        let mut next: Vec<Chromosome> = Vec::with_capacity(cfg.population);
        while next.len() + elites.len() < cfg.population {
            let p1 = &population[roulette(&fitness, &mut rng)];
            let p2 = &population[roulette(&fitness, &mut rng)];
            let (mut c1, mut c2) = crossover(p1, p2, &mut rng);
            mutate(&mut c1, cfg.mutation_rate, &mut rng);
            mutate(&mut c2, cfg.mutation_rate, &mut rng);
            next.push(c1);
            if next.len() + elites.len() < cfg.population {
                next.push(c2);
            }
        }
        next.extend(elites);
        population = next;
    }

    let (best_error_min, best_bits) = best.expect("at least one generation ran");
    GaResult {
        best: decode(&best_bits),
        best_error_min,
        error_history,
        evaluations,
    }
}

/// A random chromosome of 1–4 templates with characteristic bits set
/// sparsely (dense masks rarely match anything and make the initial
/// population uniformly useless).
fn random_chromosome(rng: &mut Rng64) -> Chromosome {
    let k = 1 + rng.gen_index(4);
    let mut bits = Vec::with_capacity(k * BITS_PER_TEMPLATE);
    for _ in 0..k {
        for pos in 0..BITS_PER_TEMPLATE {
            let p = match pos {
                0 | 1 => 0.15, // estimator bits: mostly mean
                2 => 0.3,      // relative
                3 => 0.2,      // rtime
                4..=11 => 0.3, // characteristic enables
                12 => 0.5,     // node enable
                17 => 0.3,     // history enable
                _ => 0.5,      // exponent bits
            };
            bits.push(rng.gen_f64() < p);
        }
    }
    bits
}

/// Roulette-wheel selection: pick index `i` with probability
/// `F_i / sum(F)`.
fn roulette(fitness: &[f64], rng: &mut Rng64) -> usize {
    let total: f64 = fitness.iter().sum();
    let mut x = rng.gen_f64() * total;
    for (i, &f) in fitness.iter().enumerate() {
        x -= f;
        if x <= 0.0 {
            return i;
        }
    }
    fitness.len() - 1
}

/// The paper's variable-length crossover: pick template `i` and bit
/// position `p` in the first parent and template `j` in the second, so
/// that the spliced children stay within 10 templates.
fn crossover(p1: &Chromosome, p2: &Chromosome, rng: &mut Rng64) -> (Chromosome, Chromosome) {
    let n = p1.len() / BITS_PER_TEMPLATE;
    let m = p2.len() / BITS_PER_TEMPLATE;
    // child1 = t1[..i] + splice + t2[j+1..], len = i + (m - j)
    // child2 = t2[..j] + splice + t1[i+1..], len = j + (n - i)
    for _ in 0..64 {
        let i = rng.gen_index(n);
        let j = rng.gen_index(m);
        if i + (m - j) > 10 || j + (n - i) > 10 {
            continue;
        }
        let p = rng.gen_index(BITS_PER_TEMPLATE);
        let t1 = &p1[i * BITS_PER_TEMPLATE..(i + 1) * BITS_PER_TEMPLATE];
        let t2 = &p2[j * BITS_PER_TEMPLATE..(j + 1) * BITS_PER_TEMPLATE];
        let mut s1: Vec<bool> = t1[..p].to_vec();
        s1.extend_from_slice(&t2[p..]);
        let mut s2: Vec<bool> = t2[..p].to_vec();
        s2.extend_from_slice(&t1[p..]);
        let mut c1: Chromosome = p1[..i * BITS_PER_TEMPLATE].to_vec();
        c1.extend_from_slice(&s1);
        c1.extend_from_slice(&p2[(j + 1) * BITS_PER_TEMPLATE..]);
        let mut c2: Chromosome = p2[..j * BITS_PER_TEMPLATE].to_vec();
        c2.extend_from_slice(&s2);
        c2.extend_from_slice(&p1[(i + 1) * BITS_PER_TEMPLATE..]);
        debug_assert!(c1.len().is_multiple_of(BITS_PER_TEMPLATE) && !c1.is_empty());
        debug_assert!(c2.len().is_multiple_of(BITS_PER_TEMPLATE) && !c2.is_empty());
        return (c1, c2);
    }
    // Pathological sizes: fall back to cloning the parents.
    (p1.clone(), p2.clone())
}

fn mutate(c: &mut Chromosome, rate: f64, rng: &mut Rng64) {
    for b in c.iter_mut() {
        if rng.gen_f64() < rate {
            *b = !*b;
        }
    }
}

/// Encode a seed template set into an initial population member (used by
/// callers that want to warm-start the search from
/// [`TemplateSet::default_for`]).
pub fn seeded_population(seeds: &[TemplateSet], size: usize, rng_seed: u64) -> Vec<Chromosome> {
    let mut rng = Rng64::seed_from_u64(rng_seed);
    let mut pop: Vec<Chromosome> = seeds.iter().map(encode).collect();
    while pop.len() < size {
        pop.push(random_chromosome(&mut rng));
    }
    pop.truncate(size);
    pop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Target;
    use qpredict_sim::Algorithm;
    use qpredict_workload::synthetic::toy;

    #[test]
    fn crossover_respects_template_cap() {
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..200 {
            let n = 1 + rng.gen_index(10);
            let m = 1 + rng.gen_index(10);
            let p1: Chromosome = (0..n * BITS_PER_TEMPLATE)
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let p2: Chromosome = (0..m * BITS_PER_TEMPLATE)
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let (c1, c2) = crossover(&p1, &p2, &mut rng);
            assert!(c1.len() / BITS_PER_TEMPLATE >= 1);
            assert!(c1.len() / BITS_PER_TEMPLATE <= 10);
            assert!(c2.len() / BITS_PER_TEMPLATE >= 1);
            assert!(c2.len() / BITS_PER_TEMPLATE <= 10);
        }
    }

    #[test]
    fn roulette_prefers_fitter() {
        let mut rng = Rng64::seed_from_u64(2);
        let fitness = [1.0, 4.0];
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[roulette(&fitness, &mut rng)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 4.0).abs() < 0.8, "ratio {ratio}");
    }

    #[test]
    fn mutation_rate_zero_is_identity() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut c: Chromosome = (0..44).map(|_| rng.gen_bool(0.5)).collect();
        let before = c.clone();
        mutate(&mut c, 0.0, &mut rng);
        assert_eq!(c, before);
    }

    #[test]
    fn ga_improves_over_random_start() {
        let wl = toy(250, 32, 12);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GaConfig {
            population: 12,
            generations: 6,
            threads: 2,
            seed: 99,
            ..GaConfig::default()
        };
        let result = search(&wl, &pw, &cfg);
        assert_eq!(result.error_history.len(), 6);
        // The running best is monotone non-increasing.
        for w in result.error_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(result.evaluations >= 72);
        assert!(result.best_error_min.is_finite());
        assert!(!result.best.is_empty() && result.best.len() <= 10);
    }

    #[test]
    fn ga_is_deterministic_given_seed() {
        let wl = toy(150, 32, 13);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GaConfig::quick(7);
        let a = search(&wl, &pw, &cfg);
        let b = search(&wl, &pw, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.error_history, b.error_history);
    }

    #[test]
    fn seeded_population_contains_seeds() {
        let seed_set = qpredict_predict::TemplateSet::default_for(
            &[qpredict_workload::Characteristic::User],
            false,
        );
        let pop = seeded_population(std::slice::from_ref(&seed_set), 8, 1);
        assert_eq!(pop.len(), 8);
        assert_eq!(decode(&pop[0]), seed_set);
    }
}
