//! The genetic algorithm over template sets (Section 2.1).
//!
//! Faithful to the paper's description:
//!
//! * individuals are template sets of 1–10 templates, encoded as bit
//!   strings ([`crate::encoding`]);
//! * fitness scaling: `F = F_min + (E_max - E)/(E_max - E_min) x
//!   (F_max - F_min)` with `F_max = 4 F_min`, keeping selection pressure
//!   bounded whatever the error spread;
//! * parents are chosen by *stochastic sampling with replacement*
//!   (roulette wheel);
//! * crossover splices at a random bit position inside a random template
//!   of each parent, subject to the 10-template cap;
//! * every child bit mutates with probability 0.01;
//! * the best two individuals survive to the next generation unmutated
//!   (elitism).
//!
//! The search is the longest-running computation in this reproduction,
//! so it runs under supervision: [`GaRunner`] advances one generation at
//! a time through the panic-isolated, retrying evaluator of
//! [`crate::supervisor`], snapshots its complete state into
//! [`Checkpoint`]s, and [`resume_supervised`] continues a killed run
//! **bit-identically** — same best template set, same fitness trace —
//! because every random decision flows from the checkpointed [`Rng64`]
//! state or from per-`(generation, individual, attempt)` derived
//! streams.

use std::path::PathBuf;

use qpredict_predict::TemplateSet;
use qpredict_workload::{Rng64, Workload};

use crate::checkpoint::{Checkpoint, CheckpointError, ConfigFingerprint};
use crate::encoding::{decode, encode, Chromosome, BITS_PER_TEMPLATE};
use crate::supervisor::{evaluate_generation, EvalOutcome, SearchHealth, SupervisorConfig};
use crate::workloads::PredictionWorkload;

/// Tunables for [`search`].
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to run (the paper's stopping condition is a fixed
    /// generation count).
    pub generations: usize,
    /// Per-bit mutation probability.
    pub mutation_rate: f64,
    /// Minimum scaled fitness; the maximum is `4 x` this, per the paper.
    pub f_min: f64,
    /// Individuals preserved unmutated each generation.
    pub elitism: usize,
    /// Worker threads for fitness evaluation.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Template sets injected into the initial population (warm start),
    /// e.g. [`TemplateSet::default_for`]. The rest is random.
    pub seeds: Vec<TemplateSet>,
}

impl Default for GaConfig {
    fn default() -> GaConfig {
        GaConfig {
            population: 32,
            generations: 25,
            mutation_rate: 0.01,
            f_min: 1.0,
            elitism: 2,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0xCA15_7EAD,
            seeds: Vec::new(),
        }
    }
}

impl GaConfig {
    /// A tiny configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> GaConfig {
        GaConfig {
            population: 10,
            generations: 4,
            seed,
            ..GaConfig::default()
        }
    }
}

/// Outcome of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult {
    /// Best template set found across all generations.
    pub best: TemplateSet,
    /// Its mean absolute run-time prediction error, minutes.
    pub best_error_min: f64,
    /// Best error per generation (for convergence plots/ablation).
    pub error_history: Vec<f64>,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
}

/// Outcome of a supervised (and possibly resumed) GA run.
#[derive(Debug, Clone)]
pub struct SupervisedResult {
    /// The search result proper.
    pub result: GaResult,
    /// Supervision accounting: retries, quarantines, resumes.
    pub health: SearchHealth,
    /// Generation the run was resumed from, if it was.
    pub resumed_from: Option<usize>,
}

/// Why a supervised search could not produce a result.
#[derive(Debug)]
pub enum SearchError {
    /// Loading or saving a checkpoint failed.
    Checkpoint(CheckpointError),
    /// Every individual of a generation was quarantined; there is no
    /// fitness signal left to select on.
    GenerationLost {
        /// The generation that produced no successful evaluation.
        generation: usize,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Checkpoint(e) => write!(f, "{e}"),
            SearchError::GenerationLost { generation } => write!(
                f,
                "generation {generation} lost: every fitness evaluation failed \
                 after retries (raise --max-retries or lower the fault rate)"
            ),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Checkpoint(e) => Some(e),
            SearchError::GenerationLost { .. } => None,
        }
    }
}

impl From<CheckpointError> for SearchError {
    fn from(e: CheckpointError) -> SearchError {
        SearchError::Checkpoint(e)
    }
}

/// Where and how often to checkpoint a supervised search.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory holding the checkpoint file
    /// ([`Checkpoint::path_in`]).
    pub dir: PathBuf,
    /// Snapshot every `every` generations (the final generation is
    /// always snapshotted). Clamped to at least 1.
    pub every: usize,
}

impl CheckpointPolicy {
    /// Checkpoint into `dir` after every generation.
    pub fn every_generation(dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every: 1,
        }
    }

    /// The checkpoint file this policy reads and writes.
    pub fn file(&self) -> PathBuf {
        Checkpoint::path_in(&self.dir)
    }
}

/// A resumable GA search, advanced one generation at a time.
///
/// All state lives here: construct with [`GaRunner::new`], advance with
/// [`GaRunner::step`], snapshot with [`GaRunner::checkpoint`], and
/// rebuild bit-identically with [`GaRunner::from_checkpoint`]. The
/// convenience drivers [`search`], [`search_supervised`], and
/// [`resume_supervised`] wrap this loop.
#[derive(Debug, Clone)]
pub struct GaRunner {
    cfg: GaConfig,
    rng: Rng64,
    population: Vec<Chromosome>,
    generation: usize,
    best: Option<(f64, Chromosome)>,
    error_history: Vec<f64>,
    evaluations: usize,
    health: SearchHealth,
    resumed_from: Option<usize>,
}

impl GaRunner {
    /// A fresh search: seed chromosomes first, the rest random.
    ///
    /// # Panics
    /// Panics if `cfg.population < 4` (the GA needs parents and elites).
    pub fn new(cfg: &GaConfig) -> GaRunner {
        assert!(cfg.population >= 4, "population too small");
        let mut rng = Rng64::seed_from_u64(cfg.seed);
        let mut population: Vec<Chromosome> = cfg.seeds.iter().map(encode).collect();
        population.truncate(cfg.population);
        while population.len() < cfg.population {
            population.push(random_chromosome(&mut rng));
        }
        GaRunner {
            cfg: cfg.clone(),
            rng,
            population,
            generation: 0,
            best: None,
            error_history: Vec::with_capacity(cfg.generations),
            evaluations: 0,
            health: SearchHealth::default(),
            resumed_from: None,
        }
    }

    /// Rebuild a runner from a checkpoint. The checkpoint's
    /// configuration fingerprint must match `cfg`
    /// ([`ConfigFingerprint::mismatch`]); the resumed run then replays
    /// exactly the stream an uninterrupted run would have produced.
    pub fn from_checkpoint(cfg: &GaConfig, ckpt: Checkpoint) -> Result<GaRunner, CheckpointError> {
        let current = ConfigFingerprint::of(cfg);
        if let Some((field, stored, now)) = ckpt.config.mismatch(&current) {
            return Err(CheckpointError::ConfigMismatch {
                field,
                stored,
                current: now,
            });
        }
        let mut health = ckpt.health;
        health.resumes += 1;
        Ok(GaRunner {
            cfg: cfg.clone(),
            rng: ckpt.rng(),
            population: ckpt.population,
            generation: ckpt.generation,
            best: Some((ckpt.best_error, ckpt.best)),
            error_history: ckpt.error_history,
            evaluations: ckpt.evaluations,
            health,
            resumed_from: Some(ckpt.generation),
        })
    }

    /// Generations completed so far.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// True once `cfg.generations` generations have run.
    pub fn is_done(&self) -> bool {
        self.generation >= self.cfg.generations
    }

    /// Supervision accounting so far.
    pub fn health(&self) -> &SearchHealth {
        &self.health
    }

    /// Run one generation: supervised evaluation, fitness scaling,
    /// elitism, selection, crossover, mutation.
    ///
    /// Quarantined individuals (every attempt failed) take part in
    /// selection with the worst fitness of their generation (`f_min`)
    /// and are excluded from best-tracking and fitness scaling —
    /// graceful degradation instead of a lost run. A generation with
    /// *no* surviving evaluation is unrecoverable and reported as
    /// [`SearchError::GenerationLost`].
    pub fn step(
        &mut self,
        wl: &Workload,
        pw: &PredictionWorkload,
        sup: &SupervisorConfig,
    ) -> Result<(), SearchError> {
        let _span = qpredict_obs::span("ga.generation");
        qpredict_obs::counter_add("ga.generations", 1);
        let sets: Vec<TemplateSet> = self.population.iter().map(|c| decode(c)).collect();
        let report = evaluate_generation(self.generation as u64, &sets, wl, pw, sup);
        self.health.absorb(&report.health);
        self.evaluations += sets.len();

        // Quarantined individuals carry +inf error: never the best,
        // ranked last for elitism, excluded from the scaling bounds.
        let errors: Vec<f64> = report
            .outcomes
            .iter()
            .map(|o| match o {
                EvalOutcome::Ok(stats) => stats.mean_abs_error_min(),
                EvalOutcome::Quarantined(_) => f64::INFINITY,
            })
            .collect();
        if errors.iter().all(|e| !e.is_finite()) {
            return Err(SearchError::GenerationLost {
                generation: self.generation,
            });
        }

        // Track the all-time best.
        for (c, &e) in self.population.iter().zip(&errors) {
            if e.is_finite() && self.best.as_ref().is_none_or(|(be, _)| e < *be) {
                self.best = Some((e, c.clone()));
            }
        }
        self.error_history
            .push(self.best.as_ref().expect("some evaluation survived").0);

        // Fitness scaling (paper formula) over the surviving errors.
        let finite = errors.iter().cloned().filter(|e| e.is_finite());
        let e_min = finite.clone().fold(f64::INFINITY, f64::min);
        let e_max = finite.fold(f64::NEG_INFINITY, f64::max);
        let f_max = 4.0 * self.cfg.f_min;
        let fitness: Vec<f64> = errors
            .iter()
            .map(|&e| {
                if !e.is_finite() || (e_max - e_min).abs() < 1e-12 {
                    self.cfg.f_min
                } else {
                    self.cfg.f_min + (e_max - e) / (e_max - e_min) * (f_max - self.cfg.f_min)
                }
            })
            .collect();

        // Elites: the best `elitism` individuals of this generation.
        let mut ranked: Vec<usize> = (0..self.population.len()).collect();
        ranked.sort_by(|&a, &b| errors[a].partial_cmp(&errors[b]).expect("no NaN errors"));
        let elites: Vec<Chromosome> = ranked
            .iter()
            .take(self.cfg.elitism.min(self.population.len()))
            .map(|&i| self.population[i].clone())
            .collect();

        // Offspring by roulette selection + crossover + mutation.
        let mut next: Vec<Chromosome> = Vec::with_capacity(self.cfg.population);
        while next.len() + elites.len() < self.cfg.population {
            let p1 = &self.population[roulette(&fitness, &mut self.rng)];
            let p2 = &self.population[roulette(&fitness, &mut self.rng)];
            let (mut c1, mut c2) = crossover(p1, p2, &mut self.rng);
            mutate(&mut c1, self.cfg.mutation_rate, &mut self.rng);
            mutate(&mut c2, self.cfg.mutation_rate, &mut self.rng);
            next.push(c1);
            if next.len() + elites.len() < self.cfg.population {
                next.push(c2);
            }
        }
        next.extend(elites);
        self.population = next;
        self.generation += 1;
        Ok(())
    }

    /// Snapshot the complete state at the current generation boundary.
    ///
    /// # Panics
    /// Panics before the first [`GaRunner::step`] (there is no best
    /// individual to record yet).
    pub fn checkpoint(&self) -> Checkpoint {
        let (best_error, best) = self
            .best
            .clone()
            .expect("checkpoint requires at least one completed generation");
        Checkpoint {
            config: ConfigFingerprint::of(&self.cfg),
            generation: self.generation,
            evaluations: self.evaluations,
            rng_state: self.rng.state(),
            best_error,
            best,
            error_history: self.error_history.clone(),
            health: self.health,
            population: self.population.clone(),
        }
    }

    /// Finish: decode the best individual into the result.
    ///
    /// # Panics
    /// Panics before the first [`GaRunner::step`].
    pub fn into_result(self) -> SupervisedResult {
        let (best_error_min, best_bits) = self.best.expect("at least one generation ran");
        SupervisedResult {
            result: GaResult {
                best: decode(&best_bits),
                best_error_min,
                error_history: self.error_history,
                evaluations: self.evaluations,
            },
            health: self.health,
            resumed_from: self.resumed_from,
        }
    }
}

/// Drive `runner` to `cfg.generations`, checkpointing per `policy`.
fn drive(
    mut runner: GaRunner,
    wl: &Workload,
    pw: &PredictionWorkload,
    sup: &SupervisorConfig,
    policy: Option<&CheckpointPolicy>,
) -> Result<SupervisedResult, SearchError> {
    let total = runner.cfg.generations;
    while runner.generation() < total {
        runner.step(wl, pw, sup)?;
        if let Some(p) = policy {
            let every = p.every.max(1);
            let gen = runner.generation();
            if gen.is_multiple_of(every) || gen == total {
                runner.checkpoint().save_atomic(&p.file())?;
            }
        }
    }
    Ok(runner.into_result())
}

/// Run the genetic search for a good template set over `pw`.
///
/// This is the plain entry point: supervised evaluation with default
/// retry policy and no fault injection or checkpointing. See
/// [`search_supervised`] for the full supervision surface.
pub fn search(wl: &Workload, pw: &PredictionWorkload, cfg: &GaConfig) -> GaResult {
    let sup = SupervisorConfig {
        threads: cfg.threads,
        ..SupervisorConfig::default()
    };
    search_supervised(wl, pw, cfg, &sup, None)
        .expect("search without faults or checkpoints cannot fail")
        .result
}

/// Run the genetic search under full supervision: panic-isolated,
/// retrying fitness evaluation (`sup`), optional fault injection
/// (`sup.faults`), and optional periodic checkpointing (`policy`).
pub fn search_supervised(
    wl: &Workload,
    pw: &PredictionWorkload,
    cfg: &GaConfig,
    sup: &SupervisorConfig,
    policy: Option<&CheckpointPolicy>,
) -> Result<SupervisedResult, SearchError> {
    drive(GaRunner::new(cfg), wl, pw, sup, policy)
}

/// Resume a killed search from `policy`'s checkpoint and run it to
/// completion. The combined interrupted-plus-resumed run produces a
/// best template set and fitness trace *byte*-identical to an
/// uninterrupted [`search_supervised`] with the same configuration.
pub fn resume_supervised(
    wl: &Workload,
    pw: &PredictionWorkload,
    cfg: &GaConfig,
    sup: &SupervisorConfig,
    policy: &CheckpointPolicy,
) -> Result<SupervisedResult, SearchError> {
    let ckpt = Checkpoint::load(&policy.file())?;
    let runner = GaRunner::from_checkpoint(cfg, ckpt)?;
    drive(runner, wl, pw, sup, Some(policy))
}

/// A random chromosome of 1–4 templates with characteristic bits set
/// sparsely (dense masks rarely match anything and make the initial
/// population uniformly useless).
fn random_chromosome(rng: &mut Rng64) -> Chromosome {
    let k = 1 + rng.gen_index(4);
    let mut bits = Vec::with_capacity(k * BITS_PER_TEMPLATE);
    for _ in 0..k {
        for pos in 0..BITS_PER_TEMPLATE {
            let p = match pos {
                0 | 1 => 0.15, // estimator bits: mostly mean
                2 => 0.3,      // relative
                3 => 0.2,      // rtime
                4..=11 => 0.3, // characteristic enables
                12 => 0.5,     // node enable
                17 => 0.3,     // history enable
                _ => 0.5,      // exponent bits
            };
            bits.push(rng.gen_f64() < p);
        }
    }
    bits
}

/// Roulette-wheel selection: pick index `i` with probability
/// `F_i / sum(F)`.
fn roulette(fitness: &[f64], rng: &mut Rng64) -> usize {
    let total: f64 = fitness.iter().sum();
    let mut x = rng.gen_f64() * total;
    for (i, &f) in fitness.iter().enumerate() {
        x -= f;
        if x <= 0.0 {
            return i;
        }
    }
    fitness.len() - 1
}

/// The paper's variable-length crossover: pick template `i` and bit
/// position `p` in the first parent and template `j` in the second, so
/// that the spliced children stay within 10 templates.
fn crossover(p1: &Chromosome, p2: &Chromosome, rng: &mut Rng64) -> (Chromosome, Chromosome) {
    let n = p1.len() / BITS_PER_TEMPLATE;
    let m = p2.len() / BITS_PER_TEMPLATE;
    // child1 = t1[..i] + splice + t2[j+1..], len = i + (m - j)
    // child2 = t2[..j] + splice + t1[i+1..], len = j + (n - i)
    for _ in 0..64 {
        let i = rng.gen_index(n);
        let j = rng.gen_index(m);
        if i + (m - j) > 10 || j + (n - i) > 10 {
            continue;
        }
        let p = rng.gen_index(BITS_PER_TEMPLATE);
        let t1 = &p1[i * BITS_PER_TEMPLATE..(i + 1) * BITS_PER_TEMPLATE];
        let t2 = &p2[j * BITS_PER_TEMPLATE..(j + 1) * BITS_PER_TEMPLATE];
        let mut s1: Vec<bool> = t1[..p].to_vec();
        s1.extend_from_slice(&t2[p..]);
        let mut s2: Vec<bool> = t2[..p].to_vec();
        s2.extend_from_slice(&t1[p..]);
        let mut c1: Chromosome = p1[..i * BITS_PER_TEMPLATE].to_vec();
        c1.extend_from_slice(&s1);
        c1.extend_from_slice(&p2[(j + 1) * BITS_PER_TEMPLATE..]);
        let mut c2: Chromosome = p2[..j * BITS_PER_TEMPLATE].to_vec();
        c2.extend_from_slice(&s2);
        c2.extend_from_slice(&p1[(i + 1) * BITS_PER_TEMPLATE..]);
        debug_assert!(c1.len().is_multiple_of(BITS_PER_TEMPLATE) && !c1.is_empty());
        debug_assert!(c2.len().is_multiple_of(BITS_PER_TEMPLATE) && !c2.is_empty());
        return (c1, c2);
    }
    // Pathological sizes: fall back to cloning the parents.
    (p1.clone(), p2.clone())
}

fn mutate(c: &mut Chromosome, rate: f64, rng: &mut Rng64) {
    for b in c.iter_mut() {
        if rng.gen_f64() < rate {
            *b = !*b;
        }
    }
}

/// Encode a seed template set into an initial population member (used by
/// callers that want to warm-start the search from
/// [`TemplateSet::default_for`]).
pub fn seeded_population(seeds: &[TemplateSet], size: usize, rng_seed: u64) -> Vec<Chromosome> {
    let mut rng = Rng64::seed_from_u64(rng_seed);
    let mut pop: Vec<Chromosome> = seeds.iter().map(encode).collect();
    while pop.len() < size {
        pop.push(random_chromosome(&mut rng));
    }
    pop.truncate(size);
    pop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Target;
    use qpredict_sim::{Algorithm, FaultPlan};
    use qpredict_workload::synthetic::toy;

    #[test]
    fn crossover_respects_template_cap() {
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..200 {
            let n = 1 + rng.gen_index(10);
            let m = 1 + rng.gen_index(10);
            let p1: Chromosome = (0..n * BITS_PER_TEMPLATE)
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let p2: Chromosome = (0..m * BITS_PER_TEMPLATE)
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let (c1, c2) = crossover(&p1, &p2, &mut rng);
            assert!(c1.len() / BITS_PER_TEMPLATE >= 1);
            assert!(c1.len() / BITS_PER_TEMPLATE <= 10);
            assert!(c2.len() / BITS_PER_TEMPLATE >= 1);
            assert!(c2.len() / BITS_PER_TEMPLATE <= 10);
        }
    }

    #[test]
    fn roulette_prefers_fitter() {
        let mut rng = Rng64::seed_from_u64(2);
        let fitness = [1.0, 4.0];
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[roulette(&fitness, &mut rng)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 4.0).abs() < 0.8, "ratio {ratio}");
    }

    #[test]
    fn mutation_rate_zero_is_identity() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut c: Chromosome = (0..44).map(|_| rng.gen_bool(0.5)).collect();
        let before = c.clone();
        mutate(&mut c, 0.0, &mut rng);
        assert_eq!(c, before);
    }

    #[test]
    fn ga_improves_over_random_start() {
        let wl = toy(250, 32, 12);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GaConfig {
            population: 12,
            generations: 6,
            threads: 2,
            seed: 99,
            ..GaConfig::default()
        };
        let result = search(&wl, &pw, &cfg);
        assert_eq!(result.error_history.len(), 6);
        // The running best is monotone non-increasing.
        for w in result.error_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(result.evaluations >= 72);
        assert!(result.best_error_min.is_finite());
        assert!(!result.best.is_empty() && result.best.len() <= 10);
    }

    #[test]
    fn ga_is_deterministic_given_seed() {
        let wl = toy(150, 32, 13);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GaConfig::quick(7);
        let a = search(&wl, &pw, &cfg);
        let b = search(&wl, &pw, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.error_history, b.error_history);
    }

    #[test]
    fn seeded_population_contains_seeds() {
        let seed_set = qpredict_predict::TemplateSet::default_for(
            &[qpredict_workload::Characteristic::User],
            false,
        );
        let pop = seeded_population(std::slice::from_ref(&seed_set), 8, 1);
        assert_eq!(pop.len(), 8);
        assert_eq!(decode(&pop[0]), seed_set);
    }

    #[test]
    fn runner_steps_match_search() {
        let wl = toy(150, 32, 14);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GaConfig::quick(11);
        let sup = SupervisorConfig {
            threads: cfg.threads,
            ..SupervisorConfig::default()
        };
        let mut runner = GaRunner::new(&cfg);
        while !runner.is_done() {
            runner.step(&wl, &pw, &sup).expect("clean run");
        }
        let stepped = runner.into_result();
        let direct = search(&wl, &pw, &cfg);
        assert_eq!(stepped.result.best, direct.best);
        assert_eq!(stepped.result.error_history, direct.error_history);
        assert_eq!(stepped.health.failures(), 0);
        assert!(stepped.resumed_from.is_none());
    }

    #[test]
    fn checkpoint_round_trip_resumes_runner_state() {
        let wl = toy(120, 32, 15);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GaConfig::quick(23);
        let sup = SupervisorConfig {
            threads: 1,
            ..SupervisorConfig::default()
        };
        let mut a = GaRunner::new(&cfg);
        a.step(&wl, &pw, &sup).unwrap();
        a.step(&wl, &pw, &sup).unwrap();
        let ckpt = a.checkpoint();
        let decoded = Checkpoint::decode(&ckpt.encode()).expect("codec identity");
        let mut b = GaRunner::from_checkpoint(&cfg, decoded).expect("fingerprint matches");
        assert_eq!(b.health().resumes, 1);
        while !a.is_done() {
            a.step(&wl, &pw, &sup).unwrap();
        }
        while !b.is_done() {
            b.step(&wl, &pw, &sup).unwrap();
        }
        let ra = a.into_result();
        let rb = b.into_result();
        assert_eq!(ra.result.best, rb.result.best);
        assert_eq!(ra.result.error_history, rb.result.error_history);
        assert_eq!(ra.result.evaluations, rb.result.evaluations);
    }

    #[test]
    fn mismatched_config_refuses_resume() {
        let wl = toy(100, 32, 16);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GaConfig::quick(31);
        let sup = SupervisorConfig::default();
        let mut runner = GaRunner::new(&cfg);
        runner.step(&wl, &pw, &sup).unwrap();
        let ckpt = runner.checkpoint();
        let other = GaConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        let err = GaRunner::from_checkpoint(&other, ckpt).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ConfigMismatch { field: "seed", .. }),
            "{err}"
        );
    }

    #[test]
    fn all_quarantined_generation_is_reported() {
        let wl = toy(100, 32, 17);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let cfg = GaConfig::quick(37);
        let sup = SupervisorConfig {
            threads: 2,
            max_retries: 0,
            faults: Some(FaultPlan {
                eval_error_prob: 1.0,
                ..FaultPlan::new(1)
            }),
            ..SupervisorConfig::default()
        };
        let err = search_supervised(&wl, &pw, &cfg, &sup, None).unwrap_err();
        assert!(
            matches!(err, SearchError::GenerationLost { generation: 0 }),
            "{err}"
        );
        assert!(err.to_string().contains("generation 0 lost"));
    }
}
