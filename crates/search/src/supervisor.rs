//! Supervised fitness evaluation: panic isolation, bounded retry, and
//! per-cause health accounting for long GA runs.
//!
//! The genetic search is the longest-running computation in this
//! reproduction, and a single poisoned category history or panicking
//! evaluation must not take the whole run down. This module wraps
//! [`crate::fitness::evaluate_guarded`] in a supervision layer:
//!
//! * every evaluation runs inside `catch_unwind` on a worker thread fed
//!   from a shared queue and drained over a **bounded channel**, so a
//!   panic kills one attempt, never the process;
//! * each evaluation carries a **step budget** (the same watchdog
//!   contract as `Simulation::run_guarded`), so a hung evaluation is cut
//!   off with [`SimError::BudgetExhausted`];
//! * failures are classified **retryable** (panic, budget exhaustion —
//!   plausibly transient) vs **fatal** (a typed evaluator error —
//!   deterministic, retrying is futile), and retryable ones are retried
//!   up to [`SupervisorConfig::max_retries`] times with exponential
//!   backoff and jitter drawn from the workspace [`Rng64`];
//! * individuals whose evaluation ultimately fails are **quarantined**:
//!   they receive the worst fitness in their generation instead of
//!   poisoning it, and the event is recorded per cause in
//!   [`SearchHealth`].
//!
//! Determinism: injected faults ([`FaultPlan::eval_chaos`]) and backoff
//! jitter are drawn from RNGs derived from `(seed, generation,
//! individual, attempt)`, never from shared mutable state, so outcomes
//! are byte-identical whatever the thread interleaving — and identical
//! across a kill-and-resume boundary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use qpredict_predict::{ErrorStats, TemplateSet};
use qpredict_sim::{FaultPlan, SimError};
use qpredict_workload::{JobId, Rng64, Workload};

use crate::fitness::{derived_eval_budget, evaluate_guarded_with_cache};
use crate::workloads::PredictionWorkload;

/// Payload of an injected evaluator panic, so chaos tests and the CLI
/// can tell deliberate panics from real bugs (e.g. to silence the
/// default panic hook for them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic;

/// Tunables for the supervised evaluator.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker threads for fitness evaluation.
    pub threads: usize,
    /// Retries per evaluation after the first attempt fails retryably.
    pub max_retries: u32,
    /// Per-evaluation step budget; `None` derives a generous one from
    /// the prediction-workload size ([`derived_eval_budget`]).
    pub eval_budget: Option<u64>,
    /// First backoff delay, milliseconds (doubles per retry).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for the backoff-jitter streams (derived per attempt).
    pub retry_seed: u64,
    /// Evaluator fault injection (chaos testing); `None` disables it.
    pub faults: Option<FaultPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_retries: 3,
            eval_budget: None,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
            retry_seed: 0x5EED_BACC,
            faults: None,
        }
    }
}

/// Why an individual was quarantined (or an attempt failed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCause {
    /// The evaluation panicked (caught by the worker).
    Panic,
    /// The evaluation exceeded its step budget (hang watchdog).
    Budget,
    /// The evaluator returned a typed error (fatal, not retried).
    Error,
}

impl FailureCause {
    /// Panics and hangs are plausibly transient; typed evaluator errors
    /// are deterministic and retrying them is futile.
    pub fn is_retryable(self) -> bool {
        matches!(self, FailureCause::Panic | FailureCause::Budget)
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FailureCause::Panic => "panic",
            FailureCause::Budget => "budget",
            FailureCause::Error => "error",
        }
    }
}

/// Outcome of one supervised evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// The evaluation (eventually) succeeded.
    Ok(ErrorStats),
    /// Every attempt failed; the individual gets worst fitness.
    Quarantined(FailureCause),
}

/// Aggregate health of a supervised search: what failed, what was
/// retried, what was quarantined, how often the run was resumed. The
/// search-layer analogue of `DegradationCounts` — graceful degradation
/// is only trustworthy when every event is accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchHealth {
    /// Fitness evaluations attempted (including retries).
    pub attempts: u64,
    /// Re-attempts after a retryable failure.
    pub retries: u64,
    /// Attempts that panicked.
    pub panics: u64,
    /// Attempts cut off by the step-budget watchdog.
    pub budget_exhausted: u64,
    /// Attempts that returned a typed evaluator error.
    pub eval_errors: u64,
    /// Individuals given worst fitness after all attempts failed.
    pub quarantined: u64,
    /// Failures caused by injected faults (chaos accounting: in a pure
    /// chaos run this equals `panics + budget_exhausted + eval_errors`).
    pub injected_faults: u64,
    /// Times the search was resumed from a checkpoint.
    pub resumes: u64,
    /// Estimate-cache hits across all successful fitness replays
    /// (deterministic for a given workload/population, so safe to
    /// compare across thread counts and resume boundaries).
    pub cache_hits: u64,
    /// Estimate-cache misses across all successful fitness replays.
    pub cache_misses: u64,
}

impl SearchHealth {
    /// Total failed attempts, by any cause.
    pub fn failures(&self) -> u64 {
        self.panics + self.budget_exhausted + self.eval_errors
    }

    /// Fold another report (e.g. one evaluation's) into this one.
    pub fn absorb(&mut self, other: &SearchHealth) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.panics += other.panics;
        self.budget_exhausted += other.budget_exhausted;
        self.eval_errors += other.eval_errors;
        self.quarantined += other.quarantined;
        self.injected_faults += other.injected_faults;
        self.resumes += other.resumes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Multi-line human-readable report (one line per non-zero class),
    /// mirroring `DegradationCounts::summary`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "attempts {} ({} retries, {} failures)",
            self.attempts,
            self.retries,
            self.failures()
        );
        for (label, n) in [
            ("panics caught", self.panics),
            ("budget exhaustions", self.budget_exhausted),
            ("evaluator errors", self.eval_errors),
            ("individuals quarantined", self.quarantined),
            ("injected faults", self.injected_faults),
            ("resumes from checkpoint", self.resumes),
            ("estimate-cache hits", self.cache_hits),
            ("estimate-cache misses", self.cache_misses),
        ] {
            if n > 0 {
                s.push_str(&format!("\n{label:<24} {n}"));
            }
        }
        s
    }
}

/// An injected fault decision for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectedFault {
    Panic,
    Hang,
    Error,
}

/// Derive a per-attempt RNG from `(seed, generation, individual,
/// attempt, salt)`. Sequential SplitMix64-style folding keeps the
/// streams independent of thread interleaving and of each other.
fn derived_rng(seed: u64, generation: u64, idx: u64, attempt: u64, salt: u64) -> Rng64 {
    let mut state = seed ^ salt;
    for word in [generation, idx, attempt] {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(word);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state = z ^ (z >> 31);
    }
    Rng64::seed_from_u64(state)
}

/// Draw at most one fault for this attempt from the plan's seeded
/// stream. A single uniform draw keeps the per-cause probabilities
/// exact and mutually exclusive.
fn draw_fault(plan: &FaultPlan, generation: u64, idx: u64, attempt: u64) -> Option<InjectedFault> {
    if !plan.has_eval_faults() {
        return None;
    }
    let mut rng = derived_rng(plan.seed, generation, idx, attempt, 0xFA17_1A17_0000_0003);
    let u = rng.gen_f64();
    if u < plan.eval_panic_prob {
        Some(InjectedFault::Panic)
    } else if u < plan.eval_panic_prob + plan.eval_hang_prob {
        Some(InjectedFault::Hang)
    } else if u < plan.eval_panic_prob + plan.eval_hang_prob + plan.eval_error_prob {
        Some(InjectedFault::Error)
    } else {
        None
    }
}

/// Backoff before retry `attempt` (1-based): `base · 2^(attempt-1)`
/// capped, scaled by a jitter factor in `[0.5, 1.5)` so a fleet of
/// retrying workers does not stampede in lockstep.
fn backoff_delay(cfg: &SupervisorConfig, generation: u64, idx: u64, attempt: u64) -> Duration {
    let exp = (attempt - 1).min(16) as u32;
    let base = cfg
        .backoff_base_ms
        .saturating_mul(1u64 << exp)
        .min(cfg.backoff_cap_ms);
    let mut rng = derived_rng(
        cfg.retry_seed,
        generation,
        idx,
        attempt,
        0xBAC0_FF00_0000_0001,
    );
    let jitter = 0.5 + rng.gen_f64();
    Duration::from_micros((base as f64 * 1000.0 * jitter) as u64)
}

/// Evaluate one individual under supervision: attempt, classify,
/// back off, retry; quarantine when attempts are exhausted or the
/// failure is fatal. Returns the outcome plus this evaluation's health
/// delta (folded into the generation report by the caller).
fn evaluate_one(
    generation: u64,
    idx: usize,
    set: &TemplateSet,
    wl: &Workload,
    pw: &PredictionWorkload,
    cfg: &SupervisorConfig,
) -> (EvalOutcome, SearchHealth) {
    let mut health = SearchHealth::default();
    let budget = cfg.eval_budget.unwrap_or_else(|| derived_eval_budget(pw));
    let mut last_cause = FailureCause::Panic;
    for attempt in 0..=u64::from(cfg.max_retries) {
        if attempt > 0 {
            health.retries += 1;
            std::thread::sleep(backoff_delay(cfg, generation, idx as u64, attempt));
        }
        health.attempts += 1;
        let fault = cfg
            .faults
            .as_ref()
            .and_then(|p| draw_fault(p, generation, idx as u64, attempt));
        let attempt_result = catch_unwind(AssertUnwindSafe(|| match fault {
            Some(InjectedFault::Panic) => std::panic::panic_any(InjectedPanic),
            Some(InjectedFault::Hang) => evaluate_guarded_with_cache(set, wl, pw, 0),
            Some(InjectedFault::Error) => Err(SimError::EstimateFailed {
                job: JobId(0),
                reason: "injected evaluator fault".into(),
            }),
            None => evaluate_guarded_with_cache(set, wl, pw, budget),
        }));
        let cause = match attempt_result {
            Ok(Ok((stats, cache))) => {
                health.cache_hits += cache.hits;
                health.cache_misses += cache.misses;
                return (EvalOutcome::Ok(stats), health);
            }
            Ok(Err(SimError::BudgetExhausted { .. })) => {
                health.budget_exhausted += 1;
                FailureCause::Budget
            }
            Ok(Err(_)) => {
                health.eval_errors += 1;
                FailureCause::Error
            }
            Err(_) => {
                health.panics += 1;
                FailureCause::Panic
            }
        };
        if fault.is_some() {
            health.injected_faults += 1;
        }
        last_cause = cause;
        if !cause.is_retryable() {
            break;
        }
    }
    health.quarantined += 1;
    (EvalOutcome::Quarantined(last_cause), health)
}

/// What one supervised generation produced: per-individual outcomes (in
/// input order) and the merged health delta.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// Outcome per individual, aligned with the input sets.
    pub outcomes: Vec<EvalOutcome>,
    /// Health events from this generation only.
    pub health: SearchHealth,
}

/// Evaluate a generation's template sets under supervision.
///
/// Work is pulled from a shared atomic queue by `cfg.threads` scoped
/// workers and the results drained over a bounded channel; outcomes are
/// deterministic in `(cfg, generation, sets)` regardless of thread
/// count or interleaving.
pub fn evaluate_generation(
    generation: u64,
    sets: &[TemplateSet],
    wl: &Workload,
    pw: &PredictionWorkload,
    cfg: &SupervisorConfig,
) -> GenerationReport {
    // Workers never record observability state (the registry is
    // thread-local); this span and the health mirror below run on the
    // caller's thread only.
    let _span = qpredict_obs::span("ga.eval");
    let n = sets.len();
    let threads = cfg.threads.max(1).min(n.max(1));
    let mut outcomes: Vec<Option<EvalOutcome>> = vec![None; n];
    let mut health = SearchHealth::default();
    if threads <= 1 {
        for (i, set) in sets.iter().enumerate() {
            let (o, h) = evaluate_one(generation, i, set, wl, pw, cfg);
            outcomes[i] = Some(o);
            health.absorb(&h);
        }
    } else {
        let next = AtomicUsize::new(0);
        // Bounded: workers block once the collector falls behind, so a
        // huge population cannot balloon the in-flight result set.
        let (tx, rx) = mpsc::sync_channel::<(usize, EvalOutcome, SearchHealth)>(threads * 2);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (o, h) = evaluate_one(generation, i, &sets[i], wl, pw, cfg);
                    if tx.send((i, o, h)).is_err() {
                        break; // collector gone; nothing useful left to do
                    }
                });
            }
            drop(tx);
            for (i, o, h) in rx.iter() {
                outcomes[i] = Some(o);
                health.absorb(&h);
            }
        });
    }
    // A lost worker (a panic that escaped catch_unwind would abort the
    // scope instead, but stay defensive) quarantines its individual
    // rather than poisoning the generation.
    let outcomes: Vec<EvalOutcome> = outcomes
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(|| {
                health.quarantined += 1;
                EvalOutcome::Quarantined(FailureCause::Panic)
            })
        })
        .collect();
    qpredict_obs::counter_add("search.attempts", health.attempts);
    qpredict_obs::counter_add("search.retries", health.retries);
    qpredict_obs::counter_add("search.panics", health.panics);
    qpredict_obs::counter_add("search.budget_exhausted", health.budget_exhausted);
    qpredict_obs::counter_add("search.eval_errors", health.eval_errors);
    qpredict_obs::counter_add("search.quarantined", health.quarantined);
    qpredict_obs::counter_add("search.injected_faults", health.injected_faults);
    qpredict_obs::counter_add("search.cache_hits", health.cache_hits);
    qpredict_obs::counter_add("search.cache_misses", health.cache_misses);
    GenerationReport { outcomes, health }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Target;
    use qpredict_predict::Template;
    use qpredict_sim::Algorithm;
    use qpredict_workload::synthetic::toy;
    use qpredict_workload::Characteristic;

    fn setup() -> (Workload, PredictionWorkload) {
        let wl = toy(150, 32, 21);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        (wl, pw)
    }

    fn sets(n: usize) -> Vec<TemplateSet> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    TemplateSet::new(vec![Template::mean_over(&[Characteristic::User])])
                } else {
                    TemplateSet::new(vec![Template::mean_over(&[])])
                }
            })
            .collect()
    }

    #[test]
    fn clean_supervision_matches_plain_evaluation() {
        let (wl, pw) = setup();
        let ss = sets(6);
        let cfg = SupervisorConfig {
            threads: 3,
            ..SupervisorConfig::default()
        };
        let report = evaluate_generation(0, &ss, &wl, &pw, &cfg);
        assert_eq!(report.health.failures(), 0);
        assert_eq!(report.health.attempts, 6);
        for (s, o) in ss.iter().zip(&report.outcomes) {
            match o {
                EvalOutcome::Ok(stats) => {
                    assert_eq!(*stats, crate::fitness::evaluate(s, &wl, &pw));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn injected_panics_are_isolated_and_retried() {
        let (wl, pw) = setup();
        let ss = sets(8);
        let cfg = SupervisorConfig {
            threads: 4,
            max_retries: 8,
            backoff_base_ms: 0,
            faults: Some(FaultPlan {
                eval_panic_prob: 0.4,
                ..FaultPlan::new(77)
            }),
            ..SupervisorConfig::default()
        };
        let report = evaluate_generation(0, &ss, &wl, &pw, &cfg);
        assert!(report.health.panics > 0, "panic faults must fire");
        assert_eq!(report.health.panics, report.health.injected_faults);
        assert_eq!(report.health.retries, report.health.panics);
        // With 8 retries at p=0.4 every individual recovers.
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, EvalOutcome::Ok(_))));
    }

    #[test]
    fn fault_outcomes_are_deterministic_across_thread_counts() {
        let (wl, pw) = setup();
        let ss = sets(10);
        let base = SupervisorConfig {
            max_retries: 2,
            backoff_base_ms: 0,
            faults: Some(FaultPlan::eval_chaos(5, 0.5)),
            ..SupervisorConfig::default()
        };
        let one = evaluate_generation(
            3,
            &ss,
            &wl,
            &pw,
            &SupervisorConfig {
                threads: 1,
                ..base.clone()
            },
        );
        let four = evaluate_generation(3, &ss, &wl, &pw, &SupervisorConfig { threads: 4, ..base });
        assert_eq!(one.outcomes, four.outcomes);
        assert_eq!(one.health, four.health);
    }

    #[test]
    fn typed_errors_are_fatal_and_quarantine_immediately() {
        let (wl, pw) = setup();
        let ss = sets(6);
        let cfg = SupervisorConfig {
            threads: 2,
            max_retries: 5,
            backoff_base_ms: 0,
            faults: Some(FaultPlan {
                eval_error_prob: 1.0,
                ..FaultPlan::new(9)
            }),
            ..SupervisorConfig::default()
        };
        let report = evaluate_generation(0, &ss, &wl, &pw, &cfg);
        // Fatal: one attempt each, no retries, all quarantined.
        assert_eq!(report.health.attempts, 6);
        assert_eq!(report.health.retries, 0);
        assert_eq!(report.health.quarantined, 6);
        assert_eq!(report.health.eval_errors, 6);
        assert_eq!(report.health.injected_faults, 6);
        assert!(report
            .outcomes
            .iter()
            .all(|o| *o == EvalOutcome::Quarantined(FailureCause::Error)));
    }

    #[test]
    fn hang_faults_surface_as_budget_exhaustion() {
        let (wl, pw) = setup();
        let ss = sets(4);
        let cfg = SupervisorConfig {
            threads: 2,
            max_retries: 0,
            faults: Some(FaultPlan {
                eval_hang_prob: 1.0,
                ..FaultPlan::new(4)
            }),
            ..SupervisorConfig::default()
        };
        let report = evaluate_generation(0, &ss, &wl, &pw, &cfg);
        assert_eq!(report.health.budget_exhausted, 4);
        assert_eq!(report.health.quarantined, 4);
        assert!(report
            .outcomes
            .iter()
            .all(|o| *o == EvalOutcome::Quarantined(FailureCause::Budget)));
    }

    #[test]
    fn health_summary_names_every_nonzero_class() {
        let h = SearchHealth {
            attempts: 10,
            retries: 3,
            panics: 2,
            budget_exhausted: 1,
            eval_errors: 1,
            quarantined: 1,
            injected_faults: 4,
            resumes: 2,
            cache_hits: 9,
            cache_misses: 5,
        };
        let s = h.summary();
        for needle in [
            "panics caught",
            "budget exhaustions",
            "evaluator errors",
            "individuals quarantined",
            "injected faults",
            "resumes from checkpoint",
            "estimate-cache hits",
            "estimate-cache misses",
        ] {
            assert!(s.contains(needle), "{s}");
        }
        assert!(SearchHealth::default().summary().contains("attempts 0"));
    }

    #[test]
    fn derived_rngs_differ_across_attempts() {
        let a = derived_rng(1, 0, 0, 0, 7).next_u64();
        let b = derived_rng(1, 0, 0, 1, 7).next_u64();
        let c = derived_rng(1, 0, 1, 0, 7).next_u64();
        let d = derived_rng(1, 1, 0, 0, 7).next_u64();
        assert!(a != b && a != c && a != d && b != c);
    }
}
