//! Versioned, deterministic checkpoint format for the GA search.
//!
//! A [`Checkpoint`] snapshots everything the search needs to continue
//! bit-identically: the population, the RNG state, the generation
//! counter, the best-so-far individual, the fitness trace, and the
//! accumulated [`SearchHealth`]. The codec is a line-oriented, std-only
//! text format:
//!
//! ```text
//! qpredict-ga-checkpoint v2
//! config pop=<n> elitism=<n> mutation=<f64 bits hex> fmin=<f64 bits hex> seed=<hex> seeds=<hex>
//! rng <s0> <s1> <s2> <s3>
//! gen <n>
//! evals <n>
//! best <f64 bits hex> <chromosome as 0/1 string>
//! hist <f64 bits hex> ...
//! health attempts=<n> retries=<n> panics=<n> budget=<n> errors=<n> quarantined=<n> injected=<n> resumes=<n> cache_hits=<n> cache_misses=<n>
//! pop <chromosome as 0/1 string>        (one line per individual)
//! sum <FNV-1a 64 of everything above, hex>
//! ```
//!
//! Floating-point values are written as the hex of their IEEE-754 bit
//! patterns, so decode∘encode is the identity and a resumed run's
//! fitness trace is *byte*-identical to an uninterrupted one. Loading
//! verifies the trailing checksum before believing any field, so a
//! truncated or bit-flipped file is rejected with a typed
//! [`CheckpointError`], never a panic or a silent garbage resume.
//! [`Checkpoint::save_atomic`] writes to a temporary file and renames it
//! into place, so a kill mid-write leaves the previous checkpoint
//! intact.
//!
//! The checksum framing, atomic replace, and bit-exact float encoding
//! live in the shared [`qpredict_durable`] crate (extracted from this
//! module so the serve WAL/snapshots reuse the same codec); this module
//! keeps the GA-specific record schema and error taxonomy. The byte
//! format is unchanged — pre-extraction checkpoints still load.

use std::fmt;
use std::path::{Path, PathBuf};

use qpredict_durable::{check_frame, fnv1a_byte, parse_kv, seal, FrameError, FNV_OFFSET};
use qpredict_workload::Rng64;

use crate::encoding::{Chromosome, BITS_PER_TEMPLATE};
use crate::ga::GaConfig;
use crate::supervisor::SearchHealth;

/// First line of every checkpoint file; bump the version on breaking
/// changes (v2 added the estimate-cache counters to the health line).
pub const CHECKPOINT_MAGIC: &str = "qpredict-ga-checkpoint v2";

/// Default checkpoint file name inside a `--checkpoint-dir`.
pub const CHECKPOINT_FILE: &str = "ga.ckpt";

/// The GA-configuration facets that must match for a resume to be
/// bit-identical to the original run. `generations` is deliberately
/// excluded so a finished run may be extended; `threads` is excluded
/// because evaluation outcomes are thread-count-invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigFingerprint {
    /// Individuals per generation.
    pub population: usize,
    /// Individuals preserved unmutated each generation.
    pub elitism: usize,
    /// Per-bit mutation probability (compared by bit pattern).
    pub mutation_rate: f64,
    /// Minimum scaled fitness (compared by bit pattern).
    pub f_min: f64,
    /// RNG seed.
    pub seed: u64,
    /// FNV-1a 64 hash over the encoded warm-start seed sets.
    pub seeds_hash: u64,
}

impl ConfigFingerprint {
    /// The fingerprint of a [`GaConfig`].
    pub fn of(cfg: &GaConfig) -> ConfigFingerprint {
        let mut hash = FNV_OFFSET;
        for set in &cfg.seeds {
            for bit in crate::encoding::encode(set) {
                hash = fnv1a_byte(hash, bit as u8 + b'0');
            }
            hash = fnv1a_byte(hash, b';');
        }
        ConfigFingerprint {
            population: cfg.population,
            elitism: cfg.elitism,
            mutation_rate: cfg.mutation_rate,
            f_min: cfg.f_min,
            seed: cfg.seed,
            seeds_hash: hash,
        }
    }

    /// The first facet that differs from `other`, as
    /// `(name, stored, current)` — the payload of
    /// [`CheckpointError::ConfigMismatch`].
    pub fn mismatch(&self, other: &ConfigFingerprint) -> Option<(&'static str, String, String)> {
        if self.population != other.population {
            return Some((
                "population",
                self.population.to_string(),
                other.population.to_string(),
            ));
        }
        if self.elitism != other.elitism {
            return Some((
                "elitism",
                self.elitism.to_string(),
                other.elitism.to_string(),
            ));
        }
        if self.mutation_rate.to_bits() != other.mutation_rate.to_bits() {
            return Some((
                "mutation_rate",
                self.mutation_rate.to_string(),
                other.mutation_rate.to_string(),
            ));
        }
        if self.f_min.to_bits() != other.f_min.to_bits() {
            return Some(("f_min", self.f_min.to_string(), other.f_min.to_string()));
        }
        if self.seed != other.seed {
            return Some(("seed", self.seed.to_string(), other.seed.to_string()));
        }
        if self.seeds_hash != other.seeds_hash {
            return Some((
                "seeds",
                format!("{:016X}", self.seeds_hash),
                format!("{:016X}", other.seeds_hash),
            ));
        }
        None
    }
}

/// A complete snapshot of a GA search between generations.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the configuration that produced this state.
    pub config: ConfigFingerprint,
    /// Generations completed (the next [`crate::ga::GaRunner::step`]
    /// runs this generation index).
    pub generation: usize,
    /// Fitness evaluations charged so far.
    pub evaluations: usize,
    /// GA RNG state ([`Rng64::state`]) at the generation boundary.
    pub rng_state: [u64; 4],
    /// Best error so far, minutes.
    pub best_error: f64,
    /// Best chromosome so far.
    pub best: Chromosome,
    /// Best error per completed generation.
    pub error_history: Vec<f64>,
    /// Accumulated supervision health.
    pub health: SearchHealth,
    /// The population the next generation starts from.
    pub population: Vec<Chromosome>,
}

/// Why a checkpoint could not be saved or loaded. Every variant is a
/// typed, printable error — corruption is *detected*, never propagated.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (with the operation and path in the message).
    Io {
        /// What was being attempted, e.g. `"read /dir/ga.ckpt"`.
        op: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not start with [`CHECKPOINT_MAGIC`] — not a
    /// checkpoint, or a format version this build does not speak.
    BadMagic {
        /// The first line actually found (truncated).
        found: String,
    },
    /// The trailing checksum does not match the body: the file was
    /// truncated or corrupted.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum of the body as read.
        computed: u64,
    },
    /// A line failed to parse after the checksum verified (version skew
    /// within v1 would land here).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The checkpoint was produced under a different GA configuration;
    /// resuming would not be bit-identical.
    ConfigMismatch {
        /// Which facet differs.
        field: &'static str,
        /// Value stored in the checkpoint.
        stored: String,
        /// Value in the current configuration.
        current: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, source } => write!(f, "checkpoint I/O: {op}: {source}"),
            CheckpointError::BadMagic { found } => write!(
                f,
                "not a checkpoint (expected {CHECKPOINT_MAGIC:?}, found {found:?})"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint corrupt: checksum {computed:016X} != recorded {stored:016X} \
                 (truncated or bit-flipped file)"
            ),
            CheckpointError::Malformed { line, reason } => {
                write!(f, "checkpoint malformed at line {line}: {reason}")
            }
            CheckpointError::ConfigMismatch {
                field,
                stored,
                current,
            } => write!(
                f,
                "checkpoint was produced under a different configuration: \
                 {field} was {stored}, now {current}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

impl Checkpoint {
    /// Serialize to the text format described in the module docs.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256 + self.population.len() * 240);
        let _ = writeln!(s, "{CHECKPOINT_MAGIC}");
        let c = &self.config;
        let _ = writeln!(
            s,
            "config pop={} elitism={} mutation={:016X} fmin={:016X} seed={:016X} seeds={:016X}",
            c.population,
            c.elitism,
            c.mutation_rate.to_bits(),
            c.f_min.to_bits(),
            c.seed,
            c.seeds_hash
        );
        let r = self.rng_state;
        let _ = writeln!(
            s,
            "rng {:016X} {:016X} {:016X} {:016X}",
            r[0], r[1], r[2], r[3]
        );
        let _ = writeln!(s, "gen {}", self.generation);
        let _ = writeln!(s, "evals {}", self.evaluations);
        let _ = writeln!(
            s,
            "best {:016X} {}",
            self.best_error.to_bits(),
            bits_to_string(&self.best)
        );
        let _ = write!(s, "hist");
        for e in &self.error_history {
            let _ = write!(s, " {:016X}", e.to_bits());
        }
        s.push('\n');
        let h = &self.health;
        let _ = writeln!(
            s,
            "health attempts={} retries={} panics={} budget={} errors={} quarantined={} \
             injected={} resumes={} cache_hits={} cache_misses={}",
            h.attempts,
            h.retries,
            h.panics,
            h.budget_exhausted,
            h.eval_errors,
            h.quarantined,
            h.injected_faults,
            h.resumes,
            h.cache_hits,
            h.cache_misses
        );
        for c in &self.population {
            let _ = writeln!(s, "pop {}", bits_to_string(c));
        }
        seal(s)
    }

    /// Parse and validate the text format. The checksum is verified
    /// before any field is interpreted.
    pub fn decode(text: &str) -> Result<Checkpoint, CheckpointError> {
        let body = check_frame(text).map_err(|e| match e {
            // No checksum line at all: distinguish "not a checkpoint"
            // from "truncated checkpoint".
            FrameError::MissingChecksum { lines } => {
                if !text.starts_with(CHECKPOINT_MAGIC) {
                    CheckpointError::BadMagic {
                        found: text.lines().next().unwrap_or("").chars().take(60).collect(),
                    }
                } else {
                    CheckpointError::Malformed {
                        line: lines,
                        reason: "missing trailing checksum line (truncated file?)".into(),
                    }
                }
            }
            FrameError::UnreadableChecksum { lines } => CheckpointError::Malformed {
                line: lines,
                reason: "unreadable checksum line".into(),
            },
            FrameError::Mismatch { stored, computed } => {
                CheckpointError::ChecksumMismatch { stored, computed }
            }
        })?;

        let mut lines = body.lines().enumerate();
        let malformed = |line: usize, reason: String| CheckpointError::Malformed {
            line: line + 1,
            reason,
        };
        let (_, magic) = lines.next().ok_or(CheckpointError::BadMagic {
            found: String::new(),
        })?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic {
                found: magic.chars().take(60).collect(),
            });
        }

        let mut config = None;
        let mut rng_state = None;
        let mut generation = None;
        let mut evaluations = None;
        let mut best = None;
        let mut error_history = None;
        let mut health = None;
        let mut population: Vec<Chromosome> = Vec::new();

        for (ln, line) in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "config" => config = Some(parse_config(rest).map_err(|r| malformed(ln, r))?),
                "rng" => {
                    let words: Vec<u64> = rest
                        .split_whitespace()
                        .map(|w| u64::from_str_radix(w, 16))
                        .collect::<Result<_, _>>()
                        .map_err(|e| malformed(ln, format!("bad rng word: {e}")))?;
                    let s: [u64; 4] = words
                        .try_into()
                        .map_err(|_| malformed(ln, "rng needs exactly 4 words".into()))?;
                    rng_state = Some(s);
                }
                "gen" => {
                    generation = Some(
                        rest.parse::<usize>()
                            .map_err(|e| malformed(ln, format!("bad generation: {e}")))?,
                    )
                }
                "evals" => {
                    evaluations = Some(
                        rest.parse::<usize>()
                            .map_err(|e| malformed(ln, format!("bad evaluations: {e}")))?,
                    )
                }
                "best" => {
                    let (err_hex, bits) = rest
                        .split_once(' ')
                        .ok_or_else(|| malformed(ln, "best needs error and bits".into()))?;
                    let err = f64::from_bits(
                        u64::from_str_radix(err_hex, 16)
                            .map_err(|e| malformed(ln, format!("bad best error: {e}")))?,
                    );
                    best = Some((err, parse_bits(bits).map_err(|r| malformed(ln, r))?));
                }
                "hist" => {
                    let hist: Vec<f64> = rest
                        .split_whitespace()
                        .map(|w| u64::from_str_radix(w, 16).map(f64::from_bits))
                        .collect::<Result<_, _>>()
                        .map_err(|e| malformed(ln, format!("bad history entry: {e}")))?;
                    error_history = Some(hist);
                }
                "health" => health = Some(parse_health(rest).map_err(|r| malformed(ln, r))?),
                "pop" => population.push(parse_bits(rest).map_err(|r| malformed(ln, r))?),
                other => {
                    return Err(malformed(ln, format!("unknown record {other:?}")));
                }
            }
        }

        let require = |name: &str, line: usize| malformed(line, format!("missing {name} record"));
        let config = config.ok_or_else(|| require("config", 1))?;
        let rng_state = rng_state.ok_or_else(|| require("rng", 1))?;
        let generation = generation.ok_or_else(|| require("gen", 1))?;
        let evaluations = evaluations.ok_or_else(|| require("evals", 1))?;
        let (best_error, best) = best.ok_or_else(|| require("best", 1))?;
        let error_history = error_history.ok_or_else(|| require("hist", 1))?;
        let health = health.ok_or_else(|| require("health", 1))?;

        // Cross-field validation: a verified checksum proves the bytes,
        // not the semantics.
        if generation == 0 {
            return Err(malformed(
                1,
                "checkpoint at generation 0 is meaningless".into(),
            ));
        }
        if error_history.len() != generation {
            return Err(malformed(
                1,
                format!(
                    "history has {} entries for {generation} generations",
                    error_history.len()
                ),
            ));
        }
        if population.len() != config.population {
            return Err(malformed(
                1,
                format!(
                    "population has {} individuals, config says {}",
                    population.len(),
                    config.population
                ),
            ));
        }
        Ok(Checkpoint {
            config,
            generation,
            evaluations,
            rng_state,
            best_error,
            best,
            error_history,
            health,
            population,
        })
    }

    /// The checkpoint file inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(CHECKPOINT_FILE)
    }

    /// Write atomically: serialize to `<path>.tmp`, flush, then rename
    /// over `path`. A kill at any instant leaves either the old or the
    /// new checkpoint intact, never a torn one.
    pub fn save_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let _span = qpredict_obs::span("ga.checkpoint");
        qpredict_obs::counter_add("ga.checkpoints", 1);
        qpredict_durable::write_atomic(path, &self.encode(), "ckpt.tmp").map_err(|e| {
            CheckpointError::Io {
                op: e.op,
                source: e.source,
            }
        })
    }

    /// Read and decode `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = qpredict_durable::read_to_string(path).map_err(|e| CheckpointError::Io {
            op: e.op,
            source: e.source,
        })?;
        Checkpoint::decode(&text)
    }

    /// The [`Rng64`] this checkpoint resumes with.
    pub fn rng(&self) -> Rng64 {
        Rng64::from_state(self.rng_state)
    }
}

fn parse_config(rest: &str) -> Result<ConfigFingerprint, String> {
    let v = parse_kv(
        rest,
        &["pop", "elitism", "mutation", "fmin", "seed", "seeds"],
    )?;
    let dec = |s: &str| {
        s.parse::<usize>()
            .map_err(|e| format!("bad integer {s:?}: {e}"))
    };
    let hex = |s: &str| u64::from_str_radix(s, 16).map_err(|e| format!("bad hex {s:?}: {e}"));
    Ok(ConfigFingerprint {
        population: dec(v[0])?,
        elitism: dec(v[1])?,
        mutation_rate: f64::from_bits(hex(v[2])?),
        f_min: f64::from_bits(hex(v[3])?),
        seed: hex(v[4])?,
        seeds_hash: hex(v[5])?,
    })
}

fn parse_health(rest: &str) -> Result<SearchHealth, String> {
    let v = parse_kv(
        rest,
        &[
            "attempts",
            "retries",
            "panics",
            "budget",
            "errors",
            "quarantined",
            "injected",
            "resumes",
            "cache_hits",
            "cache_misses",
        ],
    )?;
    let dec = |s: &str| {
        s.parse::<u64>()
            .map_err(|e| format!("bad integer {s:?}: {e}"))
    };
    Ok(SearchHealth {
        attempts: dec(v[0])?,
        retries: dec(v[1])?,
        panics: dec(v[2])?,
        budget_exhausted: dec(v[3])?,
        eval_errors: dec(v[4])?,
        quarantined: dec(v[5])?,
        injected_faults: dec(v[6])?,
        resumes: dec(v[7])?,
        cache_hits: dec(v[8])?,
        cache_misses: dec(v[9])?,
    })
}

fn parse_bits(s: &str) -> Result<Chromosome, String> {
    let bits: Chromosome = s
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid chromosome character {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    if bits.is_empty() || !bits.len().is_multiple_of(BITS_PER_TEMPLATE) {
        return Err(format!(
            "chromosome length {} is not a positive multiple of {BITS_PER_TEMPLATE}",
            bits.len()
        ));
    }
    if bits.len() / BITS_PER_TEMPLATE > 10 {
        return Err(format!(
            "chromosome has {} templates, the cap is 10",
            bits.len() / BITS_PER_TEMPLATE
        ));
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(gen: usize, pop: usize) -> Checkpoint {
        let mut rng = Rng64::seed_from_u64(gen as u64 * 31 + pop as u64);
        let chromo = |rng: &mut Rng64| -> Chromosome {
            let k = 1 + rng.gen_index(10);
            (0..k * BITS_PER_TEMPLATE)
                .map(|_| rng.gen_bool(0.5))
                .collect()
        };
        let population: Vec<Chromosome> = (0..pop).map(|_| chromo(&mut rng)).collect();
        Checkpoint {
            config: ConfigFingerprint {
                population: pop,
                elitism: 2,
                mutation_rate: 0.01,
                f_min: 1.0,
                seed: 0xCA15_7EAD,
                seeds_hash: 0xABCD,
            },
            generation: gen,
            evaluations: gen * pop,
            rng_state: rng.state(),
            best_error: 12.5 + gen as f64,
            best: population[0].clone(),
            error_history: (0..gen).map(|g| 20.0 - g as f64 * 0.25).collect(),
            health: SearchHealth {
                attempts: (gen * pop) as u64,
                retries: 3,
                panics: 2,
                budget_exhausted: 1,
                eval_errors: 0,
                quarantined: 1,
                injected_faults: 3,
                resumes: 1,
                cache_hits: (gen * pop * 10) as u64,
                cache_misses: (gen * pop) as u64,
            },
            population,
        }
    }

    #[test]
    fn encode_decode_is_identity() {
        let ck = sample(7, 12);
        let back = Checkpoint::decode(&ck.encode()).expect("round trip");
        assert_eq!(ck, back);
    }

    #[test]
    fn save_load_round_trips_atomically() {
        let dir = std::env::temp_dir().join("qpredict_ckpt_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = Checkpoint::path_in(&dir);
        let ck = sample(3, 6);
        ck.save_atomic(&path).expect("save");
        // No stray temp file left behind.
        assert!(!path.with_extension("ckpt.tmp").exists());
        assert_eq!(Checkpoint::load(&path).expect("load"), ck);
        // Overwriting is atomic too.
        let ck2 = sample(4, 6);
        ck2.save_atomic(&path).expect("save over");
        assert_eq!(Checkpoint::load(&path).expect("reload"), ck2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let text = sample(5, 8).encode();
        for cut in [1, text.len() / 3, text.len() / 2, text.len() - 2] {
            let err = Checkpoint::decode(&text[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::ChecksumMismatch { .. }
                        | CheckpointError::Malformed { .. }
                        | CheckpointError::BadMagic { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let text = sample(5, 8).encode();
        let mut rng = Rng64::seed_from_u64(99);
        for _ in 0..40 {
            let mut bytes = text.as_bytes().to_vec();
            let i = rng.gen_index(bytes.len());
            bytes[i] ^= 1 << rng.gen_index(7);
            let Ok(mutated) = String::from_utf8(bytes) else {
                continue; // non-UTF8 would be an I/O-layer rejection
            };
            if mutated == text {
                continue;
            }
            assert!(
                Checkpoint::decode(&mutated).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_is_typed() {
        let err = Checkpoint::decode("not a checkpoint\n").unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic { .. }), "{err}");
        let err = Checkpoint::decode("").unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/qpredict/ga.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "{err}");
        assert!(err.to_string().contains("ga.ckpt"));
    }

    #[test]
    fn semantic_inconsistencies_are_rejected() {
        // A checkpoint whose history length disagrees with its
        // generation counter re-encodes with a valid checksum but must
        // still be rejected.
        let mut ck = sample(4, 6);
        ck.error_history.pop();
        let err = Checkpoint::decode(&ck.encode()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");

        let mut ck = sample(4, 6);
        ck.population.pop();
        let err = Checkpoint::decode(&ck.encode()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
    }

    #[test]
    fn fingerprint_mismatch_reports_first_differing_field() {
        let cfg = GaConfig::quick(5);
        let a = ConfigFingerprint::of(&cfg);
        let b = ConfigFingerprint::of(&GaConfig {
            population: cfg.population + 2,
            ..cfg.clone()
        });
        let (field, stored, current) = a.mismatch(&b).expect("differs");
        assert_eq!(field, "population");
        assert_ne!(stored, current);
        assert!(a.mismatch(&a.clone()).is_none());
        // Thread count is not part of the fingerprint.
        let c = ConfigFingerprint::of(&GaConfig {
            threads: cfg.threads + 3,
            generations: cfg.generations + 9,
            ..cfg
        });
        assert!(a.mismatch(&c).is_none());
    }

    #[test]
    fn nan_and_infinity_round_trip_bitwise() {
        let mut ck = sample(2, 4);
        ck.error_history = vec![f64::INFINITY, f64::NAN];
        ck.best_error = f64::NAN;
        let back = Checkpoint::decode(&ck.encode()).expect("round trip");
        assert_eq!(
            ck.error_history
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
            back.error_history
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(ck.best_error.to_bits(), back.best_error.to_bits());
    }
}
