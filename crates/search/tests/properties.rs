//! Property-based tests for the chromosome encoding and search
//! machinery.

use proptest::prelude::*;

use qpredict_predict::{CharSet, EstimatorKind, Template, TemplateSet};
use qpredict_search::{decode, encode, BITS_PER_TEMPLATE};

/// Strategy: an arbitrary valid template.
fn arb_template() -> impl Strategy<Value = Template> {
    (
        0u8..=255,          // charset bits
        proptest::option::of(0u8..=9),
        proptest::option::of(1u32..=16),
        any::<bool>(),
        any::<bool>(),
        0usize..4,
    )
        .prop_map(|(chars, node, hist_exp, relative, use_rtime, est)| Template {
            chars: CharSet(chars),
            node_range_log2: node,
            max_history: hist_exp.map(|e| 1u32 << e.clamp(1, 16)),
            relative,
            use_rtime,
            estimator: EstimatorKind::ALL[est],
        })
}

/// Strategy: a valid template set (1..=10 templates).
fn arb_set() -> impl Strategy<Value = TemplateSet> {
    proptest::collection::vec(arb_template(), 1..=10).prop_map(TemplateSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode/decode is the identity on every valid template set.
    #[test]
    fn encode_decode_roundtrip(set in arb_set()) {
        let bits = encode(&set);
        prop_assert_eq!(bits.len(), set.len() * BITS_PER_TEMPLATE);
        let back = decode(&bits);
        prop_assert_eq!(set, back);
    }

    /// decode is total on well-shaped bit strings: any multiple of the
    /// template width up to 10 templates decodes to a valid set, and
    /// re-encoding it is stable (decode . encode . decode == decode).
    #[test]
    fn decode_is_total_and_stable(
        bits in proptest::collection::vec(any::<bool>(), BITS_PER_TEMPLATE..=10 * BITS_PER_TEMPLATE),
    ) {
        let len = (bits.len() / BITS_PER_TEMPLATE) * BITS_PER_TEMPLATE;
        let bits = &bits[..len];
        let set = decode(bits);
        prop_assert!(!set.is_empty() && set.len() <= 10);
        for t in set.templates() {
            if let Some(k) = t.node_range_log2 {
                prop_assert!(k <= 9);
            }
            if let Some(h) = t.max_history {
                prop_assert!((2..=65_536).contains(&h) && h.is_power_of_two());
            }
        }
        let again = decode(&encode(&set));
        prop_assert_eq!(set, again);
    }
}

mod search_behaviour {
    use qpredict_search::{evaluate, PredictionWorkload, Target};
    use qpredict_sim::Algorithm;
    use qpredict_workload::synthetic::toy;
    use qpredict_workload::Characteristic;

    use super::*;

    /// Fitness is invariant under template-set *order* for mean-only,
    /// disjoint-CI-free sets? Not in general (tie-breaking is by
    /// template index) — so assert the weaker, true property: appending
    /// a dead template (a characteristic the workload never records)
    /// never changes the error.
    #[test]
    fn dead_templates_are_inert() {
        let wl = toy(200, 32, 60);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let base = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]),
            Template::mean_over(&[]),
        ]);
        let with_dead = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]),
            Template::mean_over(&[]),
            Template::mean_over(&[Characteristic::Queue]), // toy has no queues
        ]);
        assert_eq!(
            evaluate(&base, &wl, &pw),
            evaluate(&with_dead, &wl, &pw),
            "a never-matching template changed predictions"
        );
    }

    /// Adding an *informative* template never has to be used — the
    /// smallest-CI rule may still pick it — but the evaluation must
    /// remain deterministic and finite.
    #[test]
    fn evaluation_is_total() {
        let wl = toy(150, 16, 61);
        let pw = PredictionWorkload::build(&wl, Target::Scheduling(Algorithm::Backfill), 3);
        let set = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User, Characteristic::Executable])
                .with_node_range(1)
                .relative()
                .with_rtime()
                .with_max_history(4),
        ]);
        let stats = evaluate(&set, &wl, &pw);
        assert!(stats.mean_abs_error_min().is_finite());
        assert_eq!(stats.count(), pw.n_predictions as u64);
    }
}
