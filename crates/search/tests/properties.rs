//! Randomized tests for the chromosome encoding and search machinery.
//!
//! Deterministic seeded loops stand in for an external property-testing
//! harness: the workspace must build offline with no crates beyond std.

use qpredict_predict::{CharSet, EstimatorKind, Template, TemplateSet};
use qpredict_search::{decode, encode, BITS_PER_TEMPLATE};
use qpredict_workload::Rng64;

/// An arbitrary valid template.
fn random_template(rng: &mut Rng64) -> Template {
    Template {
        chars: CharSet(rng.gen_index(256) as u8),
        node_range_log2: if rng.gen_bool(0.5) {
            Some(rng.gen_index(10) as u8)
        } else {
            None
        },
        max_history: if rng.gen_bool(0.5) {
            Some(1u32 << (1 + rng.gen_index(16)))
        } else {
            None
        },
        relative: rng.gen_bool(0.5),
        use_rtime: rng.gen_bool(0.5),
        estimator: EstimatorKind::ALL[rng.gen_index(4)],
    }
}

/// A valid template set (1..=10 templates).
fn random_set(rng: &mut Rng64) -> TemplateSet {
    let n = 1 + rng.gen_index(10);
    TemplateSet::new((0..n).map(|_| random_template(rng)).collect())
}

/// encode/decode is the identity on every valid template set.
#[test]
fn encode_decode_roundtrip() {
    for seed in 0u64..256 {
        let mut rng = Rng64::seed_from_u64(seed);
        let set = random_set(&mut rng);
        let bits = encode(&set);
        assert_eq!(bits.len(), set.len() * BITS_PER_TEMPLATE, "seed {seed}");
        let back = decode(&bits);
        assert_eq!(set, back, "seed {seed}");
    }
}

/// decode is total on well-shaped bit strings: any multiple of the
/// template width up to 10 templates decodes to a valid set, and
/// re-encoding it is stable (decode . encode . decode == decode).
#[test]
fn decode_is_total_and_stable() {
    for seed in 0u64..256 {
        let mut rng = Rng64::seed_from_u64(seed);
        let n_templates = 1 + rng.gen_index(10);
        let bits: Vec<bool> = (0..n_templates * BITS_PER_TEMPLATE)
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let set = decode(&bits);
        assert!(!set.is_empty() && set.len() <= 10, "seed {seed}");
        for t in set.templates() {
            if let Some(k) = t.node_range_log2 {
                assert!(k <= 9, "seed {seed}");
            }
            if let Some(h) = t.max_history {
                assert!(
                    (2..=65_536).contains(&h) && h.is_power_of_two(),
                    "seed {seed}"
                );
            }
        }
        let again = decode(&encode(&set));
        assert_eq!(set, again, "seed {seed}");
    }
}

mod checkpoint_codec {
    use qpredict_search::checkpoint::{Checkpoint, CheckpointError, ConfigFingerprint};
    use qpredict_search::{GaConfig, SearchHealth};

    use super::*;

    /// An arbitrary semantically-valid checkpoint: population and
    /// history sizes consistent with the fingerprint, chromosomes a
    /// multiple of the template width, arbitrary float bit patterns
    /// (including negatives and subnormals — the codec is bitwise).
    fn random_checkpoint(rng: &mut Rng64) -> Checkpoint {
        let population = 4 + rng.gen_index(12);
        let generation = 1 + rng.gen_index(20);
        let chromo = |rng: &mut Rng64| -> Vec<bool> {
            let k = 1 + rng.gen_index(10);
            (0..k * BITS_PER_TEMPLATE)
                .map(|_| rng.gen_bool(0.5))
                .collect()
        };
        let cfg = GaConfig {
            population,
            mutation_rate: rng.gen_f64() * 0.1,
            f_min: 0.5 + rng.gen_f64(),
            seed: rng.next_u64(),
            seeds: if rng.gen_bool(0.5) {
                vec![random_set(rng)]
            } else {
                Vec::new()
            },
            ..GaConfig::default()
        };
        Checkpoint {
            config: ConfigFingerprint::of(&cfg),
            generation,
            evaluations: generation * population,
            rng_state: [rng.next_u64(), rng.next_u64(), rng.next_u64(), 1],
            best_error: f64::from_bits(rng.next_u64()).abs().min(1e300) + 0.1,
            best: chromo(rng),
            error_history: (0..generation).map(|_| rng.gen_f64() * 500.0).collect(),
            health: SearchHealth {
                attempts: rng.next_u64() % 10_000,
                retries: rng.next_u64() % 100,
                panics: rng.next_u64() % 100,
                budget_exhausted: rng.next_u64() % 100,
                eval_errors: rng.next_u64() % 100,
                quarantined: rng.next_u64() % 100,
                injected_faults: rng.next_u64() % 300,
                resumes: rng.next_u64() % 10,
                cache_hits: rng.next_u64() % 1_000_000,
                cache_misses: rng.next_u64() % 100_000,
            },
            population: (0..population).map(|_| chromo(rng)).collect(),
        }
    }

    /// decode ∘ encode is the identity on every valid checkpoint.
    #[test]
    fn encode_decode_roundtrip() {
        for seed in 0u64..128 {
            let mut rng = Rng64::seed_from_u64(0xC0DE + seed);
            let ckpt = random_checkpoint(&mut rng);
            let text = ckpt.encode();
            let back = Checkpoint::decode(&text).unwrap_or_else(|e| {
                panic!("seed {seed}: valid checkpoint rejected: {e}");
            });
            assert_eq!(ckpt, back, "seed {seed}");
            assert_eq!(text, back.encode(), "seed {seed}: encode not stable");
        }
    }

    /// Every truncation that loses data is rejected with a typed error
    /// — never a panic, never an `Ok`. (Cutting only the trailing
    /// newline loses nothing — body and checksum are intact — so that
    /// single cut is excluded.)
    #[test]
    fn every_truncation_is_rejected() {
        let mut rng = Rng64::seed_from_u64(0x7200);
        let text = random_checkpoint(&mut rng).encode();
        // Exhaustive on char boundaries (the text is ASCII).
        for cut in 0..text.len() - 1 {
            let err = Checkpoint::decode(&text[..cut]).expect_err("truncation must be rejected");
            assert!(
                matches!(
                    err,
                    CheckpointError::BadMagic { .. }
                        | CheckpointError::ChecksumMismatch { .. }
                        | CheckpointError::Malformed { .. }
                ),
                "cut at {cut}: unexpected error class: {err}"
            );
        }
    }

    /// Seeded random bit flips anywhere in the file are caught, almost
    /// always by the checksum (a flip inside the checksum line itself
    /// surfaces as a malformed or mismatching checksum instead).
    #[test]
    fn random_bit_flips_never_pass_undetected() {
        for seed in 0u64..256 {
            let mut rng = Rng64::seed_from_u64(0xF11B + seed);
            let text = random_checkpoint(&mut rng).encode();
            let mut bytes = text.clone().into_bytes();
            let pos = rng.gen_index(bytes.len());
            let bit = 1u8 << rng.gen_index(7); // stay ASCII
            bytes[pos] ^= bit;
            let mutated = String::from_utf8(bytes).expect("still ASCII");
            if mutated == text {
                continue; // the flip was a no-op (cannot happen with XOR, but be safe)
            }
            let result = Checkpoint::decode(&mutated);
            assert!(
                result.is_err(),
                "seed {seed}: flip at byte {pos} (bit {bit:#04x}) went undetected"
            );
        }
    }
}

mod search_behaviour {
    use qpredict_search::{evaluate, PredictionWorkload, Target};
    use qpredict_sim::Algorithm;
    use qpredict_workload::synthetic::toy;
    use qpredict_workload::Characteristic;

    use super::*;

    /// Fitness is invariant under template-set *order* for mean-only,
    /// disjoint-CI-free sets? Not in general (tie-breaking is by
    /// template index) — so assert the weaker, true property: appending
    /// a dead template (a characteristic the workload never records)
    /// never changes the error.
    #[test]
    fn dead_templates_are_inert() {
        let wl = toy(200, 32, 60);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let base = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]),
            Template::mean_over(&[]),
        ]);
        let with_dead = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]),
            Template::mean_over(&[]),
            Template::mean_over(&[Characteristic::Queue]), // toy has no queues
        ]);
        assert_eq!(
            evaluate(&base, &wl, &pw),
            evaluate(&with_dead, &wl, &pw),
            "a never-matching template changed predictions"
        );
    }

    /// Adding an *informative* template never has to be used — the
    /// smallest-CI rule may still pick it — but the evaluation must
    /// remain deterministic and finite.
    #[test]
    fn evaluation_is_total() {
        let wl = toy(150, 16, 61);
        let pw = PredictionWorkload::build(&wl, Target::Scheduling(Algorithm::Backfill), 3);
        let set = TemplateSet::new(vec![Template::mean_over(&[
            Characteristic::User,
            Characteristic::Executable,
        ])
        .with_node_range(1)
        .relative()
        .with_rtime()
        .with_max_history(4)]);
        let stats = evaluate(&set, &wl, &pw);
        assert!(stats.mean_abs_error_min().is_finite());
        assert_eq!(stats.count(), pw.n_predictions as u64);
    }
}
