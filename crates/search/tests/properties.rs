//! Randomized tests for the chromosome encoding and search machinery.
//!
//! Deterministic seeded loops stand in for an external property-testing
//! harness: the workspace must build offline with no crates beyond std.

use qpredict_predict::{CharSet, EstimatorKind, Template, TemplateSet};
use qpredict_search::{decode, encode, BITS_PER_TEMPLATE};
use qpredict_workload::Rng64;

/// An arbitrary valid template.
fn random_template(rng: &mut Rng64) -> Template {
    Template {
        chars: CharSet(rng.gen_index(256) as u8),
        node_range_log2: if rng.gen_bool(0.5) {
            Some(rng.gen_index(10) as u8)
        } else {
            None
        },
        max_history: if rng.gen_bool(0.5) {
            Some(1u32 << (1 + rng.gen_index(16)))
        } else {
            None
        },
        relative: rng.gen_bool(0.5),
        use_rtime: rng.gen_bool(0.5),
        estimator: EstimatorKind::ALL[rng.gen_index(4)],
    }
}

/// A valid template set (1..=10 templates).
fn random_set(rng: &mut Rng64) -> TemplateSet {
    let n = 1 + rng.gen_index(10);
    TemplateSet::new((0..n).map(|_| random_template(rng)).collect())
}

/// encode/decode is the identity on every valid template set.
#[test]
fn encode_decode_roundtrip() {
    for seed in 0u64..256 {
        let mut rng = Rng64::seed_from_u64(seed);
        let set = random_set(&mut rng);
        let bits = encode(&set);
        assert_eq!(bits.len(), set.len() * BITS_PER_TEMPLATE, "seed {seed}");
        let back = decode(&bits);
        assert_eq!(set, back, "seed {seed}");
    }
}

/// decode is total on well-shaped bit strings: any multiple of the
/// template width up to 10 templates decodes to a valid set, and
/// re-encoding it is stable (decode . encode . decode == decode).
#[test]
fn decode_is_total_and_stable() {
    for seed in 0u64..256 {
        let mut rng = Rng64::seed_from_u64(seed);
        let n_templates = 1 + rng.gen_index(10);
        let bits: Vec<bool> = (0..n_templates * BITS_PER_TEMPLATE)
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let set = decode(&bits);
        assert!(!set.is_empty() && set.len() <= 10, "seed {seed}");
        for t in set.templates() {
            if let Some(k) = t.node_range_log2 {
                assert!(k <= 9, "seed {seed}");
            }
            if let Some(h) = t.max_history {
                assert!(
                    (2..=65_536).contains(&h) && h.is_power_of_two(),
                    "seed {seed}"
                );
            }
        }
        let again = decode(&encode(&set));
        assert_eq!(set, again, "seed {seed}");
    }
}

mod search_behaviour {
    use qpredict_search::{evaluate, PredictionWorkload, Target};
    use qpredict_sim::Algorithm;
    use qpredict_workload::synthetic::toy;
    use qpredict_workload::Characteristic;

    use super::*;

    /// Fitness is invariant under template-set *order* for mean-only,
    /// disjoint-CI-free sets? Not in general (tie-breaking is by
    /// template index) — so assert the weaker, true property: appending
    /// a dead template (a characteristic the workload never records)
    /// never changes the error.
    #[test]
    fn dead_templates_are_inert() {
        let wl = toy(200, 32, 60);
        let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Fcfs), 4);
        let base = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]),
            Template::mean_over(&[]),
        ]);
        let with_dead = TemplateSet::new(vec![
            Template::mean_over(&[Characteristic::User]),
            Template::mean_over(&[]),
            Template::mean_over(&[Characteristic::Queue]), // toy has no queues
        ]);
        assert_eq!(
            evaluate(&base, &wl, &pw),
            evaluate(&with_dead, &wl, &pw),
            "a never-matching template changed predictions"
        );
    }

    /// Adding an *informative* template never has to be used — the
    /// smallest-CI rule may still pick it — but the evaluation must
    /// remain deterministic and finite.
    #[test]
    fn evaluation_is_total() {
        let wl = toy(150, 16, 61);
        let pw = PredictionWorkload::build(&wl, Target::Scheduling(Algorithm::Backfill), 3);
        let set = TemplateSet::new(vec![Template::mean_over(&[
            Characteristic::User,
            Characteristic::Executable,
        ])
        .with_node_range(1)
        .relative()
        .with_rtime()
        .with_max_history(4)]);
        let stats = evaluate(&set, &wl, &pw);
        assert!(stats.mean_abs_error_min().is_finite());
        assert_eq!(stats.count(), pw.n_predictions as u64);
    }
}
