#![warn(missing_docs)]

//! # qpredict
//!
//! A reproduction of Smith, Taylor & Foster, *"Using Run-Time Predictions
//! to Estimate Queue Wait Times and Improve Scheduler Performance"*
//! (IPPS/SPDP 1999), as a reusable Rust library.
//!
//! The workspace provides, and this facade re-exports:
//!
//! * [`workload`] — job/trace models, SWF I/O, and calibrated synthetic
//!   generators for the paper's four workloads (ANL, CTC, SDSC95, SDSC96);
//! * [`sim`] — a deterministic discrete-event simulator of a space-shared
//!   parallel machine with FCFS, least-work-first, and conservative
//!   backfill scheduling;
//! * [`predict`] — run-time predictors: the paper's template-based
//!   predictor plus the Gibbons, Downey, maximum-run-time, and oracle
//!   baselines;
//! * [`search`] — genetic-algorithm and greedy search for good template
//!   sets;
//! * [`core`] — queue wait-time prediction by nested simulation,
//!   prediction-driven scheduling, and the experiment harness that
//!   regenerates every quantitative table in the paper;
//! * [`serve`] — a crash-safe online predictor service: write-ahead
//!   logged, snapshotted, tolerant of disordered/duplicated/late events,
//!   with bounded memory and kill-anywhere recovery.
//!
//! ## Quickstart
//!
//! ```
//! use qpredict::prelude::*;
//!
//! // A small synthetic workload in the style of the paper's traces.
//! let wl = qpredict::workload::synthetic::toy(400, 64, 42);
//!
//! // Schedule it with conservative backfill, using user-supplied maximum
//! // run times as the run-time estimate (EASY style)...
//! let outcome = qpredict::core::run_scheduling(
//!     &wl, Algorithm::Backfill, PredictorKind::MaxRuntime);
//!
//! // ...and again with the paper's history-based predictor.
//! let smart = qpredict::core::run_scheduling(
//!     &wl, Algorithm::Backfill, PredictorKind::Smith);
//!
//! assert!(smart.metrics.utilization > 0.0);
//! println!("mean wait: {:.1} min -> {:.1} min",
//!          outcome.metrics.mean_wait.minutes(),
//!          smart.metrics.mean_wait.minutes());
//! ```

pub use qpredict_core as core;
pub use qpredict_obs as obs;
pub use qpredict_predict as predict;
pub use qpredict_search as search;
pub use qpredict_serve as serve;
pub use qpredict_sim as sim;
pub use qpredict_workload as workload;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use qpredict_core::{
        run_scheduling, run_wait_prediction, PredictorKind, SchedulingOutcome,
        WaitPredictionOutcome,
    };
    pub use qpredict_predict::{Prediction, RunTimePredictor};
    pub use qpredict_sim::{Algorithm, Metrics, RuntimeEstimator};
    pub use qpredict_workload::{
        Characteristic, Dur, Job, JobBuilder, JobId, Time, Workload, WorkloadStats,
    };
}
