//! `qpredict` — command-line front end to the library.
//!
//! ```text
//! qpredict generate <ANL|CTC|SDSC95|SDSC96|toy> [--jobs N] [--out FILE]
//! qpredict analyze  <trace.swf|site> [--nodes N]
//! qpredict simulate <trace.swf|site> [--nodes N] [--alg A] [--predictor P]
//! qpredict waitpred <trace.swf|site> [--nodes N] [--alg A] [--predictor P]
//! qpredict gantt    <trace.swf|site> [--nodes N] [--alg A] [--out FILE]
//! qpredict search   <trace.swf|site> [--generations N] [--population N]
//!                   [--checkpoint-dir DIR] [--resume] [--max-retries N]
//!                   [--eval-budget N] [--fault-eval P]
//! qpredict events   <trace.swf|site> [--jobs N] [--query-every K]
//!                   [--shuffle W] [--seed N] [--out FILE]
//! qpredict serve    <events.log|-> [--state-dir DIR] [--resume]
//!                   [--predictor P] [--nodes N] [--horizon N]
//!                   [--snapshot-every N] [--fsync always|batch[=N]|never]
//!                   [--max-jobs N] [--max-done N] [--max-history N]
//!                   [--throttle-us N] [--out FILE]
//! ```
//!
//! Common flags: `--ingest lenient|strict` controls SWF parsing
//! (lenient skips and reports malformed lines), and `--fault-seed N` /
//! `--fault-pred-noise P` drive the deterministic fault-injection
//! harness during `simulate`.
//!
//! `search` runs the supervised GA template search: `--checkpoint-dir`
//! snapshots every generation so a killed run can continue with
//! `--resume` (bit-identical to an uninterrupted run), `--max-retries` /
//! `--eval-budget` tune the evaluation supervisor, and `--fault-eval`
//! injects evaluator chaos (panics/hangs/errors) at the given rate,
//! seeded by `--fault-seed`.
//!
//! `events` derives a job-event stream (submissions, starts, finishes,
//! periodic wait-time queries) from a workload, optionally block-shuffled
//! (`--shuffle W`) to exercise reorder handling. `serve` runs the
//! crash-safe online predictor service over such a stream: with
//! `--state-dir` every input line is write-ahead logged and state is
//! snapshotted, so a killed run restarted with `--resume` reproduces the
//! uninterrupted run bit for bit.
//!
//! Sites are generated synthetically (full Table 1 size unless `--jobs`);
//! `.swf` paths are parsed as Standard Workload Format traces.

use std::process::exit;

use qpredict::core::{
    run_scheduling_with, run_template_search, run_wait_prediction, PredictorKind,
    TemplateSearchSpec,
};
use qpredict::obs::json::Json;
use qpredict::obs::report::RunReport;
use qpredict::prelude::*;
use qpredict::search::{CheckpointPolicy, GaConfig, InjectedPanic, SearchError, SupervisorConfig};
use qpredict::sim::{timeline_of, ActualEstimator, FaultPlan};
use qpredict::workload::{analysis, swf, synthetic, IngestPolicy};

struct Opts {
    positional: Vec<String>,
    nodes: u32,
    jobs: Option<usize>,
    alg: Algorithm,
    predictor: PredictorKind,
    out: Option<String>,
    ingest: IngestPolicy,
    fault_seed: Option<u64>,
    fault_pred_noise: Option<f64>,
    fault_eval: Option<f64>,
    generations: Option<usize>,
    population: Option<usize>,
    seed: Option<u64>,
    checkpoint_dir: Option<String>,
    resume: bool,
    max_retries: Option<u32>,
    eval_budget: Option<u64>,
    report_out: Option<String>,
    state_dir: Option<String>,
    horizon: Option<usize>,
    snapshot_every: Option<u64>,
    fsync: Option<qpredict::serve::FsyncPolicy>,
    max_jobs: Option<usize>,
    max_done: Option<usize>,
    max_history: Option<u32>,
    throttle_us: Option<u64>,
    query_every: Option<usize>,
    shuffle: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: qpredict <generate|analyze|simulate|waitpred|gantt|search> <trace.swf|site> \
         [--nodes N] [--jobs N] [--alg fcfs|lwf|backfill|easy] \
         [--predictor actual|maxrt|smith|gibbons|downey-avg|downey-med|fallback] \
         [--ingest strict|lenient] [--fault-seed N] [--fault-pred-noise P] [--out FILE] \
         [--generations N] [--population N] [--seed N] [--checkpoint-dir DIR] [--resume] \
         [--max-retries N] [--eval-budget N] [--fault-eval P] [--report-out FILE|-]\n\
         \x20      qpredict events <trace.swf|site> [--jobs N] [--query-every K] [--shuffle W] \
         [--seed N] [--out FILE]\n\
         \x20      qpredict serve <events.log|-> [--state-dir DIR] [--resume] [--predictor P] \
         [--nodes N] [--horizon N] [--snapshot-every N] [--fsync always|batch[=N]|never] \
         [--max-jobs N] [--max-done N] [--max-history N] [--throttle-us N] [--out FILE]\n\
         \x20      qpredict check-report <report.json>"
    );
    exit(2)
}

/// Exit with code 2 and a pointed diagnostic — `usage()` is for "you
/// don't know the command shape", this is for "this one flag is wrong".
fn flag_error(msg: String) -> ! {
    eprintln!("qpredict: {msg}");
    exit(2)
}

/// Serve-layer failures: configuration contradictions (stale state dir,
/// fingerprint mismatch) are usage errors (exit 2); disk failures are
/// runtime errors (exit 1).
fn serve_fail(e: qpredict::serve::ServeError) -> ! {
    match e {
        qpredict::serve::ServeError::Config(msg) => flag_error(msg),
        other => {
            eprintln!("qpredict: {other}");
            exit(1)
        }
    }
}

/// Print one response line, tolerating a closed pipe.
fn print_resp(r: &qpredict::serve::Response) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if writeln!(lock, "resp {} {}", r.ordinal, r.line).is_err() {
        exit(0);
    }
}

fn flag_value(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| flag_error(format!("missing value for {flag}")))
}

fn parse_value<T>(it: &mut impl Iterator<Item = String>, flag: &str, expected: &str) -> T
where
    T: std::str::FromStr,
{
    let v = flag_value(it, flag);
    v.parse().unwrap_or_else(|_| {
        flag_error(format!(
            "invalid value {v:?} for {flag} (expected {expected})"
        ))
    })
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        positional: Vec::new(),
        nodes: 128,
        jobs: None,
        alg: Algorithm::Backfill,
        predictor: PredictorKind::Smith,
        out: None,
        ingest: IngestPolicy::Strict,
        fault_seed: None,
        fault_pred_noise: None,
        fault_eval: None,
        generations: None,
        population: None,
        seed: None,
        checkpoint_dir: None,
        resume: false,
        max_retries: None,
        eval_budget: None,
        report_out: None,
        state_dir: None,
        horizon: None,
        snapshot_every: None,
        fsync: None,
        max_jobs: None,
        max_done: None,
        max_history: None,
        throttle_us: None,
        query_every: None,
        shuffle: None,
    };
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => o.nodes = parse_value(&mut it, "--nodes", "a node count"),
            "--jobs" => o.jobs = Some(parse_value(&mut it, "--jobs", "a job count")),
            "--alg" => {
                let v = flag_value(&mut it, "--alg");
                o.alg = Algorithm::parse(&v).unwrap_or_else(|| {
                    flag_error(format!(
                        "invalid value {v:?} for --alg (expected fcfs|lwf|backfill|easy)"
                    ))
                });
            }
            "--predictor" => {
                let v = flag_value(&mut it, "--predictor");
                o.predictor = PredictorKind::parse(&v).unwrap_or_else(|| {
                    flag_error(format!(
                        "invalid value {v:?} for --predictor (expected actual|maxrt|smith|\
                         gibbons|downey-avg|downey-med|fallback)"
                    ))
                });
            }
            "--ingest" => {
                let v = flag_value(&mut it, "--ingest");
                o.ingest = IngestPolicy::parse(&v).unwrap_or_else(|| {
                    flag_error(format!(
                        "invalid value {v:?} for --ingest (expected strict|lenient)"
                    ))
                });
            }
            "--fault-seed" => {
                o.fault_seed = Some(parse_value(&mut it, "--fault-seed", "an integer seed"))
            }
            "--fault-pred-noise" => {
                let p: f64 = parse_value(&mut it, "--fault-pred-noise", "a probability in [0, 1]");
                if !(0.0..=1.0).contains(&p) {
                    flag_error(format!(
                        "invalid value \"{p}\" for --fault-pred-noise (expected a probability \
                         in [0, 1])"
                    ));
                }
                o.fault_pred_noise = Some(p);
            }
            "--fault-eval" => {
                let p: f64 = parse_value(&mut it, "--fault-eval", "a probability in [0, 1]");
                if !(0.0..=1.0).contains(&p) {
                    flag_error(format!(
                        "invalid value \"{p}\" for --fault-eval (expected a probability in [0, 1])"
                    ));
                }
                o.fault_eval = Some(p);
            }
            "--generations" => {
                o.generations = Some(parse_value(&mut it, "--generations", "a generation count"))
            }
            "--population" => {
                let n: usize = parse_value(&mut it, "--population", "a population size (>= 4)");
                if n < 4 {
                    flag_error(format!(
                        "invalid value \"{n}\" for --population (the GA needs at least 4 \
                         individuals for parents and elites)"
                    ));
                }
                o.population = Some(n);
            }
            "--seed" => o.seed = Some(parse_value(&mut it, "--seed", "an integer seed")),
            "--checkpoint-dir" => o.checkpoint_dir = Some(flag_value(&mut it, "--checkpoint-dir")),
            "--resume" => o.resume = true,
            "--max-retries" => {
                o.max_retries = Some(parse_value(&mut it, "--max-retries", "a retry count"))
            }
            "--eval-budget" => {
                o.eval_budget = Some(parse_value(&mut it, "--eval-budget", "a step count"))
            }
            "--out" => o.out = Some(flag_value(&mut it, "--out")),
            "--report-out" => o.report_out = Some(flag_value(&mut it, "--report-out")),
            "--state-dir" => o.state_dir = Some(flag_value(&mut it, "--state-dir")),
            "--horizon" => {
                o.horizon = Some(parse_value(&mut it, "--horizon", "a reorder-buffer size"))
            }
            "--snapshot-every" => {
                o.snapshot_every = Some(parse_value(&mut it, "--snapshot-every", "a line interval"))
            }
            "--fsync" => {
                let v = flag_value(&mut it, "--fsync");
                o.fsync = Some(qpredict::serve::FsyncPolicy::parse(&v).unwrap_or_else(|e| {
                    flag_error(format!("invalid value {v:?} for --fsync ({e})"))
                }));
            }
            "--max-jobs" => {
                let n: usize = parse_value(&mut it, "--max-jobs", "a live-job cap (>= 1)");
                if n == 0 {
                    flag_error(
                        "invalid value \"0\" for --max-jobs (the cap must admit at \
                                least one job)"
                            .to_string(),
                    );
                }
                o.max_jobs = Some(n);
            }
            "--max-done" => {
                o.max_done = Some(parse_value(&mut it, "--max-done", "a done-record cap"))
            }
            "--max-history" => {
                let n: u32 = parse_value(&mut it, "--max-history", "a per-category cap (>= 1)");
                if n == 0 {
                    flag_error(
                        "invalid value \"0\" for --max-history (a predictor with no \
                                history cannot predict)"
                            .to_string(),
                    );
                }
                o.max_history = Some(n);
            }
            "--throttle-us" => {
                o.throttle_us = Some(parse_value(&mut it, "--throttle-us", "microseconds"))
            }
            "--query-every" => {
                o.query_every = Some(parse_value(&mut it, "--query-every", "a job interval"))
            }
            "--shuffle" => o.shuffle = Some(parse_value(&mut it, "--shuffle", "a shuffle window")),
            "--help" | "-h" => usage(),
            // A bare "-" is the conventional stdin positional (serve).
            "-" => o.positional.push("-".to_string()),
            other if other.starts_with('-') => {
                flag_error(format!("unknown flag {other:?} (see --help)"))
            }
            other => o.positional.push(other.to_string()),
        }
    }
    if o.positional.len() < 2 {
        usage();
    }
    o
}

/// The fault plan implied by `--fault-seed` / `--fault-pred-noise`, or
/// `None` when neither flag was given.
fn fault_plan(opts: &Opts) -> Option<FaultPlan> {
    if opts.fault_seed.is_none() && opts.fault_pred_noise.is_none() {
        return None;
    }
    Some(FaultPlan::pred_noise(
        opts.fault_seed.unwrap_or(0),
        opts.fault_pred_noise.unwrap_or(0.0),
    ))
}

fn load(source: &str, opts: &Opts) -> Workload {
    if source.ends_with(".swf") {
        let text = std::fs::read_to_string(source).unwrap_or_else(|e| {
            eprintln!("cannot read {source}: {e}");
            exit(1)
        });
        match swf::parse_with(source, opts.nodes, &text, opts.ingest) {
            Ok((w, report)) => {
                if !report.is_clean() {
                    eprintln!(
                        "{source}: recovered under {} ingestion:",
                        opts.ingest.name()
                    );
                    for line in report.summary().lines() {
                        eprintln!("  {line}");
                    }
                }
                w
            }
            Err(e) => {
                eprintln!("{e}");
                exit(1)
            }
        }
    } else if source.eq_ignore_ascii_case("toy") {
        synthetic::toy(opts.jobs.unwrap_or(2000), opts.nodes.min(128), 42)
    } else {
        let mut spec = synthetic::sites::spec_by_name(source).unwrap_or_else(|| {
            eprintln!(
                "unknown site {source:?} (use ANL, CTC, SDSC95, SDSC96, toy, or a .swf path)"
            );
            exit(1)
        });
        if let Some(n) = opts.jobs {
            spec.n_jobs = n;
            spec.n_users = spec.n_users.min((n / 20).max(4));
        }
        synthetic::generate(&spec)
    }
}

/// Bulk output to stdout, tolerating a closed pipe (`qpredict gantt … |
/// head` must not panic).
fn emit_stdout(text: &str) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if lock.write_all(text.as_bytes()).is_err() {
        exit(0); // downstream closed the pipe; nothing left to do
    }
    let _ = lock.flush();
}

/// Validate a run report written by `--report-out`; exits 1 on a
/// malformed or inactive report.
fn check_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    let report = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("qpredict: {path} is not JSON: {e}");
        exit(1)
    });
    if let Err(e) = qpredict::obs::report::validate(&report, true) {
        eprintln!("qpredict: invalid report {path}: {e}");
        exit(1)
    }
    let count = |key: &str| {
        report
            .get(key)
            .and_then(Json::as_arr)
            .map(|a| a.len())
            .unwrap_or(0)
    };
    println!(
        "report ok: {} spans, {} counters",
        count("spans"),
        count("counters")
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_opts(&argv);
    let cmd = opts.positional[0].as_str();
    let source = opts.positional[1].as_str();

    if cmd == "check-report" {
        check_report(source);
        return;
    }
    if opts.report_out.is_some() {
        qpredict::obs::set_recording(true);
        qpredict::obs::reset();
    }
    let mut report_metrics: Vec<(String, Json)> = Vec::new();
    let mut metric = |key: &str, v: f64| report_metrics.push((key.to_string(), Json::Num(v)));

    match cmd {
        "generate" => {
            let wl = load(source, &opts);
            metric("n_jobs", wl.len() as f64);
            let text = swf::write(&wl);
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &text).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    eprintln!("{} jobs written to {path}", wl.len());
                }
                None => emit_stdout(&text),
            }
        }
        "analyze" => {
            let wl = load(source, &opts);
            metric("n_jobs", wl.len() as f64);
            println!("=== {} ===", wl.name);
            println!("{}\n", WorkloadStats::of(&wl));
            println!("{}", analysis::analyze(&wl));
        }
        "simulate" => {
            let wl = load(source, &opts);
            let plan = fault_plan(&opts);
            let out = run_scheduling_with(&wl, opts.alg, opts.predictor.clone(), plan.as_ref());
            metric("n_jobs", out.metrics.n_jobs as f64);
            metric("utilization_window", out.metrics.utilization_window);
            metric("mean_wait_min", out.metrics.mean_wait.minutes());
            metric("median_wait_min", out.metrics.median_wait.minutes());
            metric("mean_bounded_slowdown", out.metrics.mean_bounded_slowdown);
            if out.runtime_errors.count() > 0 {
                metric("runtime_mae_min", out.runtime_errors.mean_abs_error_min());
            }
            println!(
                "{} jobs under {} + {}:",
                out.metrics.n_jobs,
                opts.alg.name(),
                opts.predictor.name()
            );
            println!(
                "  utilization     {:.2}% (arrival window)",
                100.0 * out.metrics.utilization_window
            );
            println!(
                "  mean wait       {:.2} min",
                out.metrics.mean_wait.minutes()
            );
            println!(
                "  median wait     {:.2} min",
                out.metrics.median_wait.minutes()
            );
            println!(
                "  max wait        {:.2} min",
                out.metrics.max_wait.minutes()
            );
            println!(
                "  bounded slowdown {:.2}",
                out.metrics.mean_bounded_slowdown
            );
            if out.runtime_errors.count() > 0 {
                println!(
                    "  run-time predictions: {} made, MAE {:.2} min ({:.0}% of mean run time)",
                    out.runtime_errors.count(),
                    out.runtime_errors.mean_abs_error_min(),
                    out.runtime_errors.pct_of_mean_actual()
                );
            }
            if let Some(d) = &out.degradations {
                println!("  predictor degradation:");
                for line in d.summary().lines() {
                    println!("    {line}");
                }
            }
            if let Some(f) = &out.faults {
                println!(
                    "  faults injected (seed {}): {} cancelled, {} failed, {} delayed; \
                     estimates: {} scaled, {} inverted, {} dropped",
                    plan.as_ref().map(|p| p.seed).unwrap_or(0),
                    f.trace.cancelled,
                    f.trace.failed,
                    f.trace.delayed,
                    f.estimates.scaled,
                    f.estimates.inverted,
                    f.estimates.dropped
                );
            }
        }
        "waitpred" => {
            let wl = load(source, &opts);
            let out = run_wait_prediction(&wl, opts.alg, opts.predictor.clone());
            metric("n_jobs", wl.len() as f64);
            metric("wait_mae_min", out.wait_errors.mean_abs_error_min());
            metric("runtime_mae_min", out.runtime_errors.mean_abs_error_min());
            println!(
                "wait-time prediction on {} under {} + {}:",
                wl.name,
                opts.alg.name(),
                opts.predictor.name()
            );
            println!(
                "  wait MAE     {:.2} min ({:.0}% of mean wait {:.2} min)",
                out.wait_errors.mean_abs_error_min(),
                out.wait_errors.pct_of_mean_actual(),
                out.wait_errors.mean_actual_min()
            );
            println!(
                "  run-time MAE {:.2} min ({:.0}% of mean run time)",
                out.runtime_errors.mean_abs_error_min(),
                out.runtime_errors.pct_of_mean_actual()
            );
        }
        "gantt" => {
            let wl = load(source, &opts);
            let (timeline, result) = timeline_of(&wl, opts.alg, &mut ActualEstimator);
            metric("n_jobs", result.outcomes.len() as f64);
            let csv = timeline.jobs_csv();
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &csv).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    eprintln!(
                        "{} intervals written to {path} ({})",
                        result.outcomes.len(),
                        result.metrics
                    );
                }
                None => emit_stdout(&csv),
            }
        }
        "search" => {
            if opts.resume && opts.checkpoint_dir.is_none() {
                flag_error(
                    "--resume requires --checkpoint-dir (there is no checkpoint to resume from)"
                        .to_string(),
                );
            }
            let wl = load(source, &opts);
            let mut ga = GaConfig::default();
            if let Some(g) = opts.generations {
                ga.generations = g;
            }
            if let Some(p) = opts.population {
                ga.population = p;
            }
            if let Some(s) = opts.seed {
                ga.seed = s;
            }
            let faults = opts
                .fault_eval
                .map(|p| FaultPlan::eval_chaos(opts.fault_seed.unwrap_or(0), p));
            if faults.is_some() {
                // Injected panics are supervised and expected; keep the
                // default hook's backtraces for *real* panics only.
                let default_hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(move |info| {
                    if !info.payload().is::<InjectedPanic>() {
                        default_hook(info);
                    }
                }));
            }
            let spec = TemplateSearchSpec {
                algorithm: opts.alg,
                depth: 4,
                supervisor: SupervisorConfig {
                    threads: ga.threads,
                    max_retries: opts.max_retries.unwrap_or(3),
                    eval_budget: opts.eval_budget,
                    faults,
                    ..SupervisorConfig::default()
                },
                ga,
                checkpoint: opts
                    .checkpoint_dir
                    .as_ref()
                    .map(CheckpointPolicy::every_generation),
                resume: opts.resume,
            };
            let out = run_template_search(&wl, &spec).unwrap_or_else(|e| match e {
                SearchError::Checkpoint(_) => flag_error(format!("cannot resume search: {e}")),
                SearchError::GenerationLost { .. } => {
                    eprintln!("qpredict: {e}");
                    exit(1)
                }
            });
            metric("best_error_min", out.best_error_min);
            metric("evaluations", out.evaluations as f64);
            metric("generations", spec.ga.generations as f64);
            println!(
                "template search on {} under {} ({} generations x {} individuals):",
                out.workload,
                out.algorithm.name(),
                spec.ga.generations,
                spec.ga.population
            );
            println!("  best MAE     {:.2} min", out.best_error_min);
            if let (Some(first), Some(last)) = (out.error_history.first(), out.error_history.last())
            {
                println!("  convergence  {first:.2} -> {last:.2} min");
            }
            println!("  evaluations  {}", out.evaluations);
            println!("  best set     {}", out.best);
            for (i, line) in out.health.summary().lines().enumerate() {
                if i == 0 {
                    println!("  health       {line}");
                } else {
                    println!("               {line}");
                }
            }
            if let Some(g) = out.resumed_from {
                println!("  resumed from generation {g}");
            }
            if let Some(p) = &spec.checkpoint {
                println!("  checkpoint   {}", p.file().display());
            }
        }
        "events" => {
            let wl = load(source, &opts);
            let mut events =
                qpredict::workload::synthesize_events(&wl, opts.query_every.unwrap_or(10));
            // Optional deterministic disorder: shuffle within blocks of
            // `--shuffle` events, bounding every event's displacement
            // below the window so a serve --horizon >= W recovers the
            // canonical order exactly.
            if let Some(w) = opts.shuffle.filter(|w| *w > 1) {
                let mut rng = qpredict::workload::Rng64::seed_from_u64(opts.seed.unwrap_or(42));
                for chunk in events.chunks_mut(w) {
                    for i in (1..chunk.len()).rev() {
                        chunk.swap(i, rng.gen_index(i + 1));
                    }
                }
            }
            metric("n_events", events.len() as f64);
            let mut text = String::with_capacity(events.len() * 32);
            for e in &events {
                text.push_str(&e.encode());
                text.push('\n');
            }
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &text).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    eprintln!("{} events written to {path}", events.len());
                }
                None => emit_stdout(&text),
            }
        }
        "serve" => {
            if opts.resume && opts.state_dir.is_none() {
                flag_error(
                    "--resume requires --state-dir (there is no durable state to resume from)"
                        .to_string(),
                );
            }
            let kind =
                qpredict::serve::PredictorKind::parse(opts.predictor.name()).unwrap_or_else(|| {
                    flag_error(format!(
                        "serve hosts smith|gibbons|downey-avg|downey-med, not {:?}",
                        opts.predictor.name()
                    ))
                });
            let defaults = qpredict::serve::ServeConfig::default();
            let cfg = qpredict::serve::ServeConfig {
                predictor: kind,
                machine_nodes: opts.nodes,
                horizon: opts.horizon.unwrap_or(defaults.horizon),
                max_history: opts.max_history.unwrap_or(defaults.max_history),
                max_jobs: opts.max_jobs.unwrap_or(defaults.max_jobs),
                max_done: opts.max_done.unwrap_or(defaults.max_done),
                snapshot_every: opts.snapshot_every.unwrap_or(defaults.snapshot_every),
                fsync: opts.fsync.unwrap_or(defaults.fsync),
            };
            let state_dir = opts.state_dir.as_ref().map(std::path::PathBuf::from);
            let out_path = opts.out.as_ref().map(std::path::PathBuf::from);
            let mut svc = qpredict::serve::Service::open(
                cfg,
                state_dir.as_deref(),
                out_path.as_deref(),
                opts.resume,
            )
            .unwrap_or_else(|e| serve_fail(e));
            if svc.recovery.resumed {
                let r = svc.recovery;
                eprintln!(
                    "serve: recovered (snapshot seq {}, {} WAL records replayed, {} torn WAL \
                     bytes truncated, {} snapshot fallbacks, {} responses re-emitted)",
                    r.snapshot_seq,
                    r.wal_replayed,
                    r.wal_torn_bytes,
                    r.snapshot_fallbacks,
                    r.responses_reemitted
                );
            }
            let run = |svc: &mut qpredict::serve::Service, reader: &mut dyn std::io::BufRead| {
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(e) => {
                            eprintln!("qpredict: cannot read event stream: {e}");
                            exit(1)
                        }
                    }
                    if let Some(us) = opts.throttle_us.filter(|us| *us > 0) {
                        std::thread::sleep(std::time::Duration::from_micros(us));
                    }
                    let fresh = svc
                        .feed_line(line.trim_end_matches(['\n', '\r']))
                        .unwrap_or_else(|e| serve_fail(e));
                    if opts.out.is_none() {
                        for r in &fresh {
                            print_resp(r);
                        }
                    }
                }
            };
            if source == "-" {
                let stdin = std::io::stdin();
                run(&mut svc, &mut stdin.lock());
            } else {
                let file = std::fs::File::open(source).unwrap_or_else(|e| {
                    eprintln!("cannot read {source}: {e}");
                    exit(1)
                });
                run(&mut svc, &mut std::io::BufReader::new(file));
            }
            let fresh = svc.finish().unwrap_or_else(|e| serve_fail(e));
            if opts.out.is_none() {
                for r in &fresh {
                    print_resp(r);
                }
            }
            let c = *svc.state().counters();
            metric("events", c.events as f64);
            metric("responses", c.responses as f64);
            metric("completions", c.completions as f64);
            metric("duplicate", c.duplicate as f64);
            metric("out_of_order", c.out_of_order as f64);
            metric("late", c.late as f64);
            metric("orphan", c.orphan as f64);
            metric("shed", c.shed as f64);
            metric("evicted", c.evicted as f64);
            metric("malformed", c.malformed as f64);
            metric("live_jobs", svc.state().live_jobs() as f64);
            metric(
                "resident_history_points",
                svc.state().predictor_resident_points() as f64,
            );
            metric("snapshots", svc.snapshots_written() as f64);
            eprintln!(
                "serve: {} events, {} responses, {} completions ({} duplicate, {} out-of-order, \
                 {} late, {} orphan, {} malformed)",
                c.events,
                c.responses,
                c.completions,
                c.duplicate,
                c.out_of_order,
                c.late,
                c.orphan,
                c.malformed
            );
            eprintln!(
                "serve: memory: {} live jobs, {} done records evicted, {} shed, {} resident \
                 history points; {} snapshots; state fp {:016X}",
                svc.state().live_jobs(),
                c.evicted,
                c.shed,
                svc.state().predictor_resident_points(),
                svc.snapshots_written(),
                svc.state().fingerprint()
            );
        }
        _ => usage(),
    }

    if let Some(dest) = &opts.report_out {
        let mut report = RunReport::new(cmd, &argv);
        for (k, v) in report_metrics {
            report.metric(&k, v);
        }
        let text = report.to_json(&qpredict::obs::snapshot()).to_pretty();
        qpredict::obs::set_recording(false);
        if dest == "-" {
            emit_stdout(&text);
        } else {
            let path = std::path::Path::new(dest);
            qpredict::obs::report::write_atomic(path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write report {dest}: {e}");
                exit(1)
            });
            eprintln!("run report written to {dest}");
        }
    }
}
