//! `qpredict` — command-line front end to the library.
//!
//! ```text
//! qpredict generate <ANL|CTC|SDSC95|SDSC96|toy> [--jobs N] [--out FILE]
//! qpredict analyze  <trace.swf|site> [--nodes N]
//! qpredict simulate <trace.swf|site> [--nodes N] [--alg A] [--predictor P]
//! qpredict waitpred <trace.swf|site> [--nodes N] [--alg A] [--predictor P]
//! qpredict gantt    <trace.swf|site> [--nodes N] [--alg A] [--out FILE]
//! ```
//!
//! Sites are generated synthetically (full Table 1 size unless `--jobs`);
//! `.swf` paths are parsed as Standard Workload Format traces.

use std::process::exit;

use qpredict::core::{run_scheduling, run_wait_prediction, PredictorKind};
use qpredict::prelude::*;
use qpredict::sim::{timeline_of, ActualEstimator};
use qpredict::workload::{analysis, swf, synthetic};

struct Opts {
    positional: Vec<String>,
    nodes: u32,
    jobs: Option<usize>,
    alg: Algorithm,
    predictor: PredictorKind,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: qpredict <generate|analyze|simulate|waitpred|gantt> <trace.swf|site> \
         [--nodes N] [--jobs N] [--alg fcfs|lwf|backfill|easy] \
         [--predictor actual|maxrt|smith|gibbons|downey-avg|downey-med] [--out FILE]"
    );
    exit(2)
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        positional: Vec::new(),
        nodes: 128,
        jobs: None,
        alg: Algorithm::Backfill,
        predictor: PredictorKind::Smith,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                o.nodes = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--jobs" => {
                o.jobs = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--alg" => {
                o.alg = it
                    .next()
                    .and_then(|v| Algorithm::parse(&v))
                    .unwrap_or_else(|| usage())
            }
            "--predictor" => {
                o.predictor = it
                    .next()
                    .and_then(|v| PredictorKind::parse(&v))
                    .unwrap_or_else(|| usage())
            }
            "--out" => o.out = it.next().or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => o.positional.push(other.to_string()),
        }
    }
    if o.positional.len() < 2 {
        usage();
    }
    o
}

fn load(source: &str, opts: &Opts) -> Workload {
    if source.ends_with(".swf") {
        let text = std::fs::read_to_string(source).unwrap_or_else(|e| {
            eprintln!("cannot read {source}: {e}");
            exit(1)
        });
        match swf::parse(source, opts.nodes, &text) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("{e}");
                exit(1)
            }
        }
    } else if source.eq_ignore_ascii_case("toy") {
        synthetic::toy(opts.jobs.unwrap_or(2000), opts.nodes.min(128), 42)
    } else {
        let mut spec = synthetic::sites::spec_by_name(source).unwrap_or_else(|| {
            eprintln!("unknown site {source:?} (use ANL, CTC, SDSC95, SDSC96, toy, or a .swf path)");
            exit(1)
        });
        if let Some(n) = opts.jobs {
            spec.n_jobs = n;
            spec.n_users = spec.n_users.min((n / 20).max(4));
        }
        synthetic::generate(&spec)
    }
}

/// Bulk output to stdout, tolerating a closed pipe (`qpredict gantt … |
/// head` must not panic).
fn emit_stdout(text: &str) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if lock.write_all(text.as_bytes()).is_err() {
        exit(0); // downstream closed the pipe; nothing left to do
    }
    let _ = lock.flush();
}

fn main() {
    let opts = parse_opts();
    let cmd = opts.positional[0].as_str();
    let source = opts.positional[1].as_str();

    match cmd {
        "generate" => {
            let wl = load(source, &opts);
            let text = swf::write(&wl);
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &text).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    eprintln!("{} jobs written to {path}", wl.len());
                }
                None => emit_stdout(&text),
            }
        }
        "analyze" => {
            let wl = load(source, &opts);
            println!("=== {} ===", wl.name);
            println!("{}\n", WorkloadStats::of(&wl));
            println!("{}", analysis::analyze(&wl));
        }
        "simulate" => {
            let wl = load(source, &opts);
            let out = run_scheduling(&wl, opts.alg, opts.predictor.clone());
            println!(
                "{} jobs under {} + {}:",
                out.metrics.n_jobs,
                opts.alg.name(),
                opts.predictor.name()
            );
            println!("  utilization     {:.2}% (arrival window)", 100.0 * out.metrics.utilization_window);
            println!("  mean wait       {:.2} min", out.metrics.mean_wait.minutes());
            println!("  median wait     {:.2} min", out.metrics.median_wait.minutes());
            println!("  max wait        {:.2} min", out.metrics.max_wait.minutes());
            println!("  bounded slowdown {:.2}", out.metrics.mean_bounded_slowdown);
            if out.runtime_errors.count() > 0 {
                println!(
                    "  run-time predictions: {} made, MAE {:.2} min ({:.0}% of mean run time)",
                    out.runtime_errors.count(),
                    out.runtime_errors.mean_abs_error_min(),
                    out.runtime_errors.pct_of_mean_actual()
                );
            }
        }
        "waitpred" => {
            let wl = load(source, &opts);
            let out = run_wait_prediction(&wl, opts.alg, opts.predictor.clone());
            println!(
                "wait-time prediction on {} under {} + {}:",
                wl.name,
                opts.alg.name(),
                opts.predictor.name()
            );
            println!(
                "  wait MAE     {:.2} min ({:.0}% of mean wait {:.2} min)",
                out.wait_errors.mean_abs_error_min(),
                out.wait_errors.pct_of_mean_actual(),
                out.wait_errors.mean_actual_min()
            );
            println!(
                "  run-time MAE {:.2} min ({:.0}% of mean run time)",
                out.runtime_errors.mean_abs_error_min(),
                out.runtime_errors.pct_of_mean_actual()
            );
        }
        "gantt" => {
            let wl = load(source, &opts);
            let (timeline, result) = timeline_of(&wl, opts.alg, &mut ActualEstimator);
            let csv = timeline.jobs_csv();
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &csv).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    eprintln!(
                        "{} intervals written to {path} ({})",
                        result.outcomes.len(),
                        result.metrics
                    );
                }
                None => emit_stdout(&csv),
            }
        }
        _ => usage(),
    }
}
