#!/usr/bin/env bash
# Continuous-integration gate: formatting, lints, and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Run-report smoke: an instrumented run must emit a report that the
# binary's own schema checker accepts (non-empty spans and counters).
echo "==> report schema smoke (simulate --report-out + check-report)"
REPORT_TMP="$(mktemp -d)"
trap 'rm -rf "$REPORT_TMP"' EXIT
./target/release/qpredict simulate toy --jobs 150 --nodes 32 \
    --report-out "$REPORT_TMP/report.json"
./target/release/qpredict check-report "$REPORT_TMP/report.json"

# Kill-and-recover smoke: SIGKILL the serve subcommand mid-stream (the
# throttle guarantees the kill lands before the stream ends), resume,
# and require byte-identical output to an uninterrupted run.
echo "==> serve kill-and-recover smoke (SIGKILL + --resume)"
SERVE_TMP="$(mktemp -d)"
trap 'rm -rf "$REPORT_TMP" "$SERVE_TMP"' EXIT
./target/release/qpredict events toy --jobs 60 --query-every 5 \
    --out "$SERVE_TMP/events.log" 2>/dev/null
./target/release/qpredict serve "$SERVE_TMP/events.log" \
    --state-dir "$SERVE_TMP/ref-state" --snapshot-every 16 \
    --out "$SERVE_TMP/ref.out" 2>/dev/null
./target/release/qpredict serve "$SERVE_TMP/events.log" \
    --state-dir "$SERVE_TMP/state" --snapshot-every 16 --fsync always \
    --throttle-us 3000 --out "$SERVE_TMP/run.out" 2>/dev/null &
SERVE_PID=$!
sleep 0.25
kill -KILL "$SERVE_PID" 2>/dev/null
wait "$SERVE_PID" 2>/dev/null || true
./target/release/qpredict serve "$SERVE_TMP/events.log" \
    --state-dir "$SERVE_TMP/state" --resume --snapshot-every 16 \
    --out "$SERVE_TMP/run.out" 2>/dev/null
cmp "$SERVE_TMP/ref.out" "$SERVE_TMP/run.out"
echo "    serve recovered bit-identically after SIGKILL"

# One-iteration smoke run of every bench: catches panics, broken
# assertions, and artifact-emission bugs in the bench binaries without
# paying for real measurements. The estimation bench also asserts the
# recording-off observability overhead stays under 2% per prediction.
echo "==> QPREDICT_BENCH_SMOKE=1 cargo bench -q -p qpredict-bench"
QPREDICT_BENCH_SMOKE=1 cargo bench -q -p qpredict-bench

echo "CI green."
