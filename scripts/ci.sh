#!/usr/bin/env bash
# Continuous-integration gate: formatting, lints, and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Run-report smoke: an instrumented run must emit a report that the
# binary's own schema checker accepts (non-empty spans and counters).
echo "==> report schema smoke (simulate --report-out + check-report)"
REPORT_TMP="$(mktemp -d)"
trap 'rm -rf "$REPORT_TMP"' EXIT
./target/release/qpredict simulate toy --jobs 150 --nodes 32 \
    --report-out "$REPORT_TMP/report.json"
./target/release/qpredict check-report "$REPORT_TMP/report.json"

# One-iteration smoke run of every bench: catches panics, broken
# assertions, and artifact-emission bugs in the bench binaries without
# paying for real measurements. The estimation bench also asserts the
# recording-off observability overhead stays under 2% per prediction.
echo "==> QPREDICT_BENCH_SMOKE=1 cargo bench -q -p qpredict-bench"
QPREDICT_BENCH_SMOKE=1 cargo bench -q -p qpredict-bench

echo "CI green."
