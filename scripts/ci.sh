#!/usr/bin/env bash
# Continuous-integration gate: formatting, lints, and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "CI green."
