//! Use a real accounting trace in Standard Workload Format.
//!
//! Writes a synthetic workload out as SWF, reads it back (as one would a
//! Parallel Workloads Archive trace), and runs the paper's pipeline on
//! it. Point the optional argument at a real `.swf` file to analyze an
//! actual trace instead.
//!
//! ```sh
//! cargo run --release --example swf_trace [trace.swf] [machine_nodes]
//! ```

use qpredict::core::{run_scheduling, run_wait_prediction, PredictorKind};
use qpredict::prelude::*;
use qpredict::workload::{swf, synthetic};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wl = if let Some(path) = args.get(1) {
        let nodes: u32 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(128);
        let text = std::fs::read_to_string(path).expect("read SWF file");
        let wl = swf::parse("swf-trace", nodes, &text).expect("parse SWF");
        println!("loaded {} jobs from {path}", wl.len());
        wl
    } else {
        // No trace on hand: demonstrate the round trip on a synthetic one.
        let original = synthetic::toy(1_500, 64, 23);
        let text = swf::write(&original);
        println!(
            "no trace given; round-tripping a synthetic workload through SWF \
             ({} bytes)",
            text.len()
        );
        swf::parse("roundtrip", original.machine_nodes, &text).expect("reparse")
    };

    wl.validate().expect("valid workload");
    println!("\n{}\n", WorkloadStats::of(&wl));

    // SWF keeps user/executable/queue — enough for the whole pipeline.
    let sched = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Smith);
    println!(
        "backfill + smith:  util {:.1}%  mean wait {:.2} min  rt-err {:.0}% of mean rt",
        100.0 * sched.metrics.utilization_window,
        sched.metrics.mean_wait.minutes(),
        sched.runtime_errors.pct_of_mean_actual()
    );
    let wait = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith);
    println!(
        "wait prediction:   MAE {:.2} min ({:.0}% of mean wait)",
        wait.wait_errors.mean_abs_error_min(),
        wait.wait_errors.pct_of_mean_actual()
    );
}
