//! Quickstart: generate a workload, schedule it three ways, and compare
//! run-time predictors.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qpredict::prelude::*;
use qpredict::workload::synthetic;

fn main() {
    // A small synthetic site in the style of the paper's traces: users
    // resubmit the same applications, so history predicts run times.
    let wl = synthetic::toy(2_000, 64, 42);
    let stats = WorkloadStats::of(&wl);
    println!("workload: {}\n{stats}\n", wl.name);

    // 1. How much does the scheduling algorithm matter? Schedule with
    //    user-supplied maximum run times (what EASY-style systems do).
    println!("scheduling with maximum run times:");
    for alg in [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill] {
        let out = qpredict::core::run_scheduling(&wl, alg, PredictorKind::MaxRuntime);
        println!(
            "  {:<8}  util {:5.1}%  mean wait {:8.2} min",
            alg.name(),
            100.0 * out.metrics.utilization_window,
            out.metrics.mean_wait.minutes()
        );
    }

    // 2. How much do better run-time predictions matter? Drive backfill
    //    with each predictor the paper compares.
    println!("\nbackfill driven by each run-time predictor:");
    for kind in PredictorKind::ALL {
        let out = qpredict::core::run_scheduling(&wl, Algorithm::Backfill, kind.clone());
        println!(
            "  {:<10}  mean wait {:8.2} min   run-time error {:5.1}% of mean run time",
            kind.name(),
            out.metrics.mean_wait.minutes(),
            out.runtime_errors.pct_of_mean_actual()
        );
    }

    // 3. Predict queue wait times: how far off are the estimates a user
    //    would see at submission?
    println!("\nwait-time prediction under backfill:");
    for kind in [
        PredictorKind::Actual,
        PredictorKind::MaxRuntime,
        PredictorKind::Smith,
    ] {
        let out = run_wait_prediction(&wl, Algorithm::Backfill, kind.clone());
        println!(
            "  {:<10}  mean |predicted - actual wait| = {:7.2} min ({:4.0}% of mean wait)",
            kind.name(),
            out.wait_errors.mean_abs_error_min(),
            out.wait_errors.pct_of_mean_actual()
        );
    }
}
