//! A "how long until my job starts?" service — the user-facing product
//! of the paper's Section 3.
//!
//! Replays a day of a busy site and, for a sample of arrivals, prints
//! the wait estimate each user would have been shown at submission next
//! to the wait they actually experienced.
//!
//! ```sh
//! cargo run --release --example wait_estimator
//! ```

use qpredict::core::{forecast_start, PredictorKind};
use qpredict::predict::RunTimePredictor;
use qpredict::prelude::*;
use qpredict::sim::{MaxRuntimeEstimator, SimHooks, Simulation, Snapshot};
use qpredict::workload::synthetic;

struct Kiosk {
    predictor: qpredict::core::kind::BoxedPredictor,
    belief: MaxRuntimeEstimator,
    /// (job, queue depth, predicted wait) for sampled arrivals.
    shown: Vec<(JobId, usize, Dur)>,
}

impl Kiosk {
    fn new(wl: &Workload) -> Kiosk {
        Kiosk {
            predictor: PredictorKind::Smith.build(wl),
            belief: MaxRuntimeEstimator::from_workload(wl),
            shown: Vec::new(),
        }
    }
}

struct KioskHooks<'w> {
    wl: &'w Workload,
    kiosk: Kiosk,
}

impl SimHooks for KioskHooks<'_> {
    fn after_submit(&mut self, snap: &Snapshot, job: &Job) {
        // Sample every 40th arrival to keep the report readable.
        if !job.id.0.is_multiple_of(40) {
            return;
        }
        let kiosk = &mut self.kiosk;
        let belief = &mut kiosk.belief;
        let predictor = &mut kiosk.predictor;
        let now = snap.now;
        let start = forecast_start(
            self.wl,
            Algorithm::Backfill,
            snap,
            |j, e| belief.estimate(j, now, e),
            |j, e| predictor.predict(j, e).estimate,
            job.id,
        );
        kiosk
            .shown
            .push((job.id, snap.queued.len() - 1, start - now));
    }

    fn on_job_complete(&mut self, job: &Job, _now: Time) {
        RunTimePredictor::on_complete(&mut self.kiosk.predictor, job);
    }
}

fn main() {
    let wl = synthetic::toy(2_000, 48, 31);
    let mut hooks = KioskHooks {
        wl: &wl,
        kiosk: Kiosk::new(&wl),
    };
    let mut outer = MaxRuntimeEstimator::from_workload(&wl);
    let mut sim = Simulation::new(&wl, Algorithm::Backfill);
    let result = sim.run_with_hooks(&mut outer, &mut hooks);

    println!(
        "{:>6} {:>8} {:>16} {:>16} {:>12}",
        "job", "queued", "predicted wait", "actual wait", "error"
    );
    let mut abs_err = 0.0;
    for &(id, depth, predicted) in &hooks.kiosk.shown {
        let actual = result.outcome(id).wait();
        abs_err += (predicted - actual).abs().minutes();
        println!(
            "{:>6} {:>8} {:>16} {:>16} {:>12}",
            id.0,
            depth,
            predicted.to_string(),
            actual.to_string(),
            (predicted - actual).to_string(),
        );
    }
    println!(
        "\nmean |error| over {} sampled arrivals: {:.1} min",
        hooks.kiosk.shown.len(),
        abs_err / hooks.kiosk.shown.len().max(1) as f64
    );
}
