//! One-off capture of scheduler/wait-time outputs used to seed the
//! estimation-refactor regression lock (`tests/estimation_lock.rs`).
//!
//! Run with `cargo run --release --example lock_capture` and paste the
//! printed rows into the lock test's constant tables. Every floating
//! value is fingerprinted via `f64::to_bits`, so the lock is exact to
//! the last ulp — any change in summation order, estimator math, or
//! scheduling decisions shows up as a mismatch.

use qpredict_core::{run_scheduling, run_wait_prediction, PredictorKind};
use qpredict_predict::{ErrorStats, EstimatorKind, Template, TemplateSet};
use qpredict_sim::{Algorithm, Metrics};
use qpredict_workload::synthetic::toy;
use qpredict_workload::Characteristic as C;

/// FNV-1a over the bit patterns of an [`ErrorStats`]' public accessors
/// (which jointly determine every private field up to bit identity).
fn fp_stats(e: &ErrorStats) -> u64 {
    let words = [
        e.count(),
        e.mean_abs_error_min().to_bits(),
        e.mean_bias_min().to_bits(),
        e.mean_actual_min().to_bits(),
        e.rmse_min().to_bits(),
        e.max_abs_error_min().to_bits(),
    ];
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over a schedule's [`Metrics`].
fn fp_metrics(m: &Metrics) -> u64 {
    let words = [
        m.n_jobs as u64,
        m.mean_wait.seconds() as u64,
        m.median_wait.seconds() as u64,
        m.max_wait.seconds() as u64,
        m.makespan.seconds() as u64,
        m.utilization.to_bits(),
        m.utilization_window.to_bits(),
        m.mean_bounded_slowdown.to_bits(),
        m.total_work_node_s.to_bits(),
    ];
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A template set that deliberately exercises every estimator path:
/// regressions in all three transform spaces, relative (ratio) values,
/// capped history (the eviction path), and elapsed-time conditioning.
fn lock_set() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::User, C::Executable]).with_node_range(1),
        Template::mean_over(&[C::User]).with_estimator(EstimatorKind::LinearRegression),
        Template::mean_over(&[C::User])
            .with_estimator(EstimatorKind::InverseRegression)
            .relative(),
        Template::mean_over(&[C::Executable])
            .with_estimator(EstimatorKind::LogRegression)
            .with_max_history(8),
        Template::mean_over(&[]).relative().with_max_history(4),
        Template::mean_over(&[C::User]).with_rtime(),
    ])
}

fn kinds() -> Vec<(&'static str, PredictorKind)> {
    vec![
        ("actual", PredictorKind::Actual),
        ("maxrt", PredictorKind::MaxRuntime),
        ("smith", PredictorKind::Smith),
        ("smith-lock", PredictorKind::SmithWith(lock_set())),
        ("gibbons", PredictorKind::Gibbons),
        ("downey-avg", PredictorKind::DowneyAverage),
    ]
}

fn main() {
    println!("// --- scheduling lock: toy(300, 32, 41) ---");
    let wl = toy(300, 32, 41);
    for alg in [Algorithm::Lwf, Algorithm::Backfill, Algorithm::EasyBackfill] {
        for (label, kind) in kinds() {
            let out = run_scheduling(&wl, alg, kind);
            println!(
                "    (\"{alg}\", \"{label}\", {:#018x}, {:#018x}),",
                fp_metrics(&out.metrics),
                fp_stats(&out.runtime_errors),
            );
        }
    }

    println!("// --- wait-time lock: toy(220, 32, 42) ---");
    let wl = toy(220, 32, 42);
    for (alg, label, kind) in [
        (Algorithm::Fcfs, "smith", PredictorKind::Smith),
        (
            Algorithm::Lwf,
            "smith-lock",
            PredictorKind::SmithWith(lock_set()),
        ),
        (Algorithm::Backfill, "smith", PredictorKind::Smith),
        (Algorithm::Backfill, "gibbons", PredictorKind::Gibbons),
    ] {
        let out = run_wait_prediction(&wl, alg, kind);
        println!(
            "    (\"{alg}\", \"{label}\", {:#018x}, {:#018x}, {:#018x}),",
            fp_metrics(&out.metrics),
            fp_stats(&out.wait_errors),
            fp_stats(&out.runtime_errors),
        );
    }
}
