//! Analyze a workload's predictability before trusting history-based
//! prediction on it — the due-diligence a site operator should run.
//!
//! ```sh
//! cargo run --release --example analyze_workload [ANL|CTC|SDSC95|SDSC96|trace.swf]
//! ```

use qpredict::workload::{analysis, swf, synthetic, WorkloadStats};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "ANL".to_string());
    let wl = if arg.ends_with(".swf") {
        let text = std::fs::read_to_string(&arg).expect("read SWF trace");
        swf::parse(&arg, 512, &text).expect("parse SWF")
    } else {
        let mut spec = synthetic::sites::spec_by_name(&arg).unwrap_or_else(|| {
            panic!("unknown site {arg:?}; use ANL/CTC/SDSC95/SDSC96 or a .swf path")
        });
        spec.n_jobs = spec.n_jobs.min(8000); // keep the example snappy
        synthetic::generate(&spec)
    };

    println!("=== {} ===", wl.name);
    println!("{}\n", WorkloadStats::of(&wl));
    let report = analysis::analyze(&wl);
    println!("{report}");
    println!(
        "reading the grouping table: a ratio of 0.30 means jobs sharing those\n\
         characteristics deviate from their group mean only 30% as much as jobs\n\
         deviate globally — exactly the signal the paper's templates exploit."
    );
}
