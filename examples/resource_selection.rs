//! Resource selection across sites — the motivating scenario of the
//! paper's introduction: *"estimates of queue wait times are useful to
//! guide resource selection when several systems are available."*
//!
//! A user with a moldable job asks every site "when would my job start
//! if I submitted it right now?", using each site's live scheduler state
//! and its history-trained run-time predictor, then submits to the site
//! with the earliest predicted start.
//!
//! ```sh
//! cargo run --release --example resource_selection
//! ```

use qpredict::core::{forecast_start, PredictorKind};
use qpredict::predict::RunTimePredictor;
use qpredict::prelude::*;
use qpredict::sim::{MaxRuntimeEstimator, SimHooks, Simulation, Snapshot};
use qpredict::workload::synthetic;

/// Captures the machine state at a fixed instant mid-trace.
struct StateGrabber {
    at: Time,
    snap: Option<Snapshot>,
}

impl SimHooks for StateGrabber {
    fn after_submit(&mut self, snap: &Snapshot, _job: &Job) {
        if self.snap.is_none() && snap.now >= self.at {
            self.snap = Some(snap.clone());
        }
    }
}

fn main() {
    // Three candidate sites with different machines and loads.
    let sites = [
        synthetic::toy(1_500, 32, 7),
        synthetic::toy(1_500, 64, 8),
        synthetic::toy(1_500, 128, 9),
    ];

    // Our job: 16 nodes, and we believe it needs about 2 hours.
    let job_nodes = 16u32;
    let job_estimate = Dur::hours(2);

    println!("asking each site for a predicted start time of a {job_nodes}-node job...\n");
    let mut best: Option<(usize, Dur)> = None;
    for (i, wl) in sites.iter().enumerate() {
        // Replay the site's history up to "now" (mid-trace) to (a) train
        // its predictor and (b) capture its live scheduler state.
        let mid = wl.jobs[wl.len() / 2].submit;
        let mut grabber = StateGrabber {
            at: mid,
            snap: None,
        };
        let mut est = MaxRuntimeEstimator::from_workload(wl);
        let mut sim = Simulation::new(wl, Algorithm::Backfill);
        sim.run_with_hooks(&mut est, &mut grabber);
        let snap = grabber.snap.expect("trace passes the midpoint");

        // Train the site's predictor on everything that completed before
        // the capture instant.
        let mut predictor = PredictorKind::Smith.build(wl);
        for j in &wl.jobs {
            if j.submit + j.runtime < snap.now {
                RunTimePredictor::on_complete(&mut predictor, j);
            }
        }

        // Inject our job into the captured queue as the last arrival.
        let mut wl2 = wl.clone();
        let probe_id = JobId(wl2.len() as u32);
        let probe = JobBuilder::new()
            .nodes(job_nodes)
            .submit(snap.now)
            .runtime(job_estimate) // used only as our own belief
            .max_runtime(job_estimate * 2)
            .build(probe_id);
        wl2.jobs.push(probe);
        let mut snap2 = snap.clone();
        let next_seq = snap2.queued.iter().map(|&(_, s)| s + 1).max().unwrap_or(0);
        snap2.queued.push((probe_id, next_seq));

        let start = forecast_start(
            &wl2,
            Algorithm::Backfill,
            &snap2,
            |j, e| {
                // The scheduler believes user limits.
                MaxRuntimeEstimator::from_workload(&wl2).estimate(j, snap.now, e)
            },
            |j, e| predictor.predict(j, e).estimate,
            probe_id,
        );
        let wait = start - snap.now;
        println!(
            "  site {i}: {:3} running, {:3} queued -> predicted wait {}",
            snap.running.len(),
            snap.queued.len(),
            wait
        );
        if best.is_none_or(|(_, w)| wait < w) {
            best = Some((i, wait));
        }
    }
    let (site, wait) = best.expect("at least one site");
    println!("\nsubmit to site {site}: predicted wait {wait}");
}
