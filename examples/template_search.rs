//! Run the genetic template search on a workload and inspect what it
//! learns — the paper's core claim is that *searched* templates beat
//! fixed ones.
//!
//! ```sh
//! cargo run --release --example template_search [jobs]
//! ```

use qpredict::predict::{Template, TemplateSet};
use qpredict::search::{
    evaluate, greedy_search, search, GaConfig, GreedyConfig, PredictionWorkload, Target,
};
use qpredict::sim::Algorithm;
use qpredict::workload::synthetic;
use qpredict::workload::Characteristic;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    let wl = synthetic::toy(jobs, 64, 17);

    // The stream of predictions an LWF scheduler would demand.
    let pw = PredictionWorkload::build_capped(&wl, Target::Scheduling(Algorithm::Lwf), 20_000);
    println!(
        "prediction workload: {} predictions, {} events\n",
        pw.n_predictions,
        pw.events.len()
    );

    // Baseline: the single most obvious template (mean over the user).
    let naive = TemplateSet::new(vec![Template::mean_over(&[Characteristic::User])]);
    let e = evaluate(&naive, &wl, &pw);
    println!(
        "naive (u)-mean:        MAE {:.2} min",
        e.mean_abs_error_min()
    );

    // Greedy search over a candidate pool.
    let (greedy_set, _) = greedy_search(&wl, &pw, &GreedyConfig::default());
    let e = evaluate(&greedy_set, &wl, &pw);
    println!(
        "greedy search:         MAE {:.2} min   {greedy_set}",
        e.mean_abs_error_min()
    );

    // The genetic algorithm (the paper's approach).
    let cfg = GaConfig {
        population: 20,
        generations: 10,
        ..GaConfig::default()
    };
    let result = search(&wl, &pw, &cfg);
    println!(
        "genetic algorithm:     MAE {:.2} min   ({} evaluations)",
        result.best_error_min, result.evaluations
    );
    println!("\nbest template set found:");
    for t in result.best.templates() {
        println!("  {t}");
    }
    println!("\nconvergence (best error per generation, minutes):");
    for (g, e) in result.error_history.iter().enumerate() {
        println!("  gen {g:>2}: {e:.2}");
    }
}
