//! Scheduler-and-predictor comparison on one of the paper's workloads —
//! a miniature of Section 4's study.
//!
//! Sweeps the offered load of a site (by interarrival compression) and
//! shows where better run-time predictions start to pay off: the paper's
//! finding is that prediction accuracy matters most when the machine is
//! busiest.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison [jobs]
//! ```

use qpredict::core::{run_scheduling, PredictorKind};
use qpredict::prelude::*;
use qpredict::workload::{compress_interarrivals, synthetic};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3_000);

    // Start from the SDSC96 site model (moderate load) and compress.
    let mut spec = synthetic::sites::spec_by_name("SDSC96").expect("known site");
    spec.n_jobs = jobs;
    spec.n_users = spec.n_users.min((jobs / 20).max(4));
    let base = synthetic::generate(&spec);

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "load x", "algorithm", "actual", "maxrt", "smith", "smith vs maxrt"
    );
    for factor in [1.0, 1.5, 2.0, 3.0] {
        let wl = if factor == 1.0 {
            base.clone()
        } else {
            compress_interarrivals(&base, factor)
        };
        for alg in [Algorithm::Lwf, Algorithm::Backfill] {
            let actual = run_scheduling(&wl, alg, PredictorKind::Actual);
            let maxrt = run_scheduling(&wl, alg, PredictorKind::MaxRuntime);
            let smith = run_scheduling(&wl, alg, PredictorKind::Smith);
            let gain = 100.0
                * (maxrt.metrics.mean_wait.minutes() - smith.metrics.mean_wait.minutes())
                / maxrt.metrics.mean_wait.minutes().max(1e-9);
            println!(
                "{:>8.1} {:>10} {:>10.1}m {:>10.1}m {:>10.1}m {:>+11.1}%",
                factor,
                alg.name(),
                actual.metrics.mean_wait.minutes(),
                maxrt.metrics.mean_wait.minutes(),
                smith.metrics.mean_wait.minutes(),
                gain,
            );
        }
    }
    println!("\n(positive last column: history-based predictions reduce mean wait)");
}
