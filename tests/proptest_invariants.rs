//! Randomized tests over the core invariants of the stack.
//!
//! Deterministic seeded loops stand in for an external property-testing
//! harness: the workspace must build offline with no crates beyond std.
//! Every case is reproducible from the loop seed printed on failure.

use qpredict::core::{forecast_start, PredictorKind};
use qpredict::prelude::*;
use qpredict::sim::{ActualEstimator, Profile, Simulation};
use qpredict::workload::{synthetic, Rng64};

/// A small random workload on a 4–64 node machine.
fn random_workload(rng: &mut Rng64) -> Workload {
    let machine = 1u32 << (2 + rng.gen_index(5)); // 4..=64 nodes
    let n = 1 + rng.gen_index(60);
    let mut w = Workload::new("prop", machine);
    w.jobs = (0..n)
        .map(|i| {
            let submit = rng.gen_range_i64(0, 4_999);
            let nodes = (1 + rng.gen_index(64) as u32).min(machine);
            let rt = rng.gen_range_i64(1, 1_999);
            let maxrt = rng.gen_range_i64(1, 3_999).max(rt);
            JobBuilder::new()
                .submit(Time(submit))
                .nodes(nodes)
                .runtime(Dur(rt))
                .max_runtime(Dur(maxrt))
                .build(JobId(i as u32))
        })
        .collect();
    w.finalize();
    w
}

/// Every algorithm finishes every job; no job starts early; run
/// times pass through untouched; the machine is never oversubscribed.
#[test]
fn engine_invariants() {
    for seed in 0u64..64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let wl = random_workload(&mut rng);
        let alg = [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill][rng.gen_index(3)];
        let result = Simulation::run(&wl, alg, &mut ActualEstimator);
        assert_eq!(result.outcomes.len(), wl.len(), "seed {seed}");
        for o in &result.outcomes {
            assert!(o.start >= o.submit, "seed {seed}");
            assert_eq!(o.finish - o.start, wl.job(o.id).runtime, "seed {seed}");
        }
        // Node accounting sweep.
        let mut events: Vec<(Time, i64)> = Vec::new();
        for o in &result.outcomes {
            events.push((o.start, wl.job(o.id).nodes as i64));
            events.push((o.finish, -(wl.job(o.id).nodes as i64)));
        }
        events.sort_by_key(|&(t, d)| (t, d));
        let mut used = 0i64;
        for (_, d) in events {
            used += d;
            assert!(
                used <= wl.machine_nodes as i64,
                "seed {seed}: oversubscribed"
            );
        }
    }
}

/// FCFS preserves arrival order of start times.
#[test]
fn fcfs_starts_in_arrival_order() {
    for seed in 0u64..64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let wl = random_workload(&mut rng);
        let result = Simulation::run(&wl, Algorithm::Fcfs, &mut ActualEstimator);
        for pair in result.outcomes.windows(2) {
            assert!(
                pair[0].start <= pair[1].start,
                "seed {seed}: FCFS must start jobs in arrival order"
            );
        }
    }
}

/// FCFS + oracle forecasts are exact for every job of every random
/// workload (the Table 4 argument, randomly probed).
#[test]
fn fcfs_oracle_forecast_exact() {
    for seed in 0u64..32 {
        let mut rng = Rng64::seed_from_u64(seed);
        let wl = random_workload(&mut rng);
        let out = qpredict::core::run_wait_prediction(&wl, Algorithm::Fcfs, PredictorKind::Actual);
        assert_eq!(out.wait_errors.mean_abs_error_min(), 0.0, "seed {seed}");
    }
}

/// With exact estimates, no job's backfill start is later than its start
/// in a machine that runs jobs strictly one at a time in arrival order
/// (the worst feasible schedule).
#[test]
fn backfill_beats_serial_execution() {
    for seed in 0u64..64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let wl = random_workload(&mut rng);
        let bf = Simulation::run(&wl, Algorithm::Backfill, &mut ActualEstimator);
        // Strictly serial: each job starts after all earlier jobs finished.
        let mut t = Time::ZERO;
        for (o, j) in bf.outcomes.iter().zip(&wl.jobs) {
            t = t.max(j.submit);
            assert!(
                o.start <= t + Dur(wl.jobs.iter().map(|x| x.runtime.seconds()).sum::<i64>()),
                "seed {seed}: absurdly late start"
            );
            t += j.runtime;
            let _ = o;
        }
    }
}

/// Profile: any reservation placed at `earliest_fit` keeps the profile
/// valid and the window genuinely free.
#[test]
fn profile_fit_reserve_invariant() {
    for seed in 0u64..64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let machine = 32u32;
        // Keep running jobs within capacity by construction.
        let mut acc = 0u32;
        let running: Vec<(u32, Time)> = (0..rng.gen_index(6))
            .filter_map(|_| {
                let n = 1 + rng.gen_index(16) as u32;
                let end = rng.gen_range_i64(1, 499);
                if acc + n <= machine {
                    acc += n;
                    Some((n, Time(end)))
                } else {
                    None
                }
            })
            .collect();
        let mut p = Profile::new(machine, Time(0), &running);
        for _ in 0..(1 + rng.gen_index(19)) {
            let nodes = (1 + rng.gen_index(32) as u32).min(machine);
            let d = Dur(rng.gen_range_i64(1, 299));
            let at = p.earliest_fit(nodes, d);
            assert!(p.free_at(at) >= nodes, "seed {seed}");
            p.reserve(at, d, nodes);
            assert!(p.check().is_ok(), "seed {seed}");
        }
    }
}

/// Interarrival compression by a rational factor preserves job count,
/// run times, and ordering.
#[test]
fn compression_preserves_structure() {
    for seed in 0u64..32 {
        let mut rng = Rng64::seed_from_u64(seed);
        let wl = random_workload(&mut rng);
        let f = 1 + rng.gen_index(5) as u32;
        let c = qpredict::workload::compress_interarrivals(&wl, f as f64);
        assert_eq!(c.len(), wl.len(), "seed {seed}");
        assert!(c.validate().is_ok(), "seed {seed}");
        // Note: jobs may be renumbered if equal submit times reorder, so
        // compare multisets of runtimes.
        let mut a: Vec<i64> = wl.jobs.iter().map(|j| j.runtime.seconds()).collect();
        let mut b: Vec<i64> = c.jobs.iter().map(|j| j.runtime.seconds()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "seed {seed}");
    }
}

/// Predictions from every predictor are positive and at least
/// `elapsed + 1` for running jobs, whatever the history.
#[test]
fn predictions_respect_elapsed() {
    for seed in 0u64..50 {
        let mut rng = Rng64::seed_from_u64(seed);
        let elapsed = rng.gen_range_i64(0, 9_999);
        let wl = synthetic::toy(60, 16, seed);
        for kind in PredictorKind::ALL {
            let mut p = kind.build(&wl);
            use qpredict::predict::RunTimePredictor;
            // Train on the first half.
            for j in wl.jobs.iter().take(30) {
                RunTimePredictor::on_complete(&mut p, j);
            }
            let pred = p.predict(&wl.jobs[40], Dur(elapsed));
            assert!(
                pred.estimate >= Dur(elapsed + 1),
                "{}: {:?} given elapsed {} (seed {seed})",
                kind.name(),
                pred.estimate,
                elapsed
            );
        }
    }
}

/// Whatever the history — even degenerate one-second runtimes that pull
/// every fitted estimate toward zero — a clamped prediction never
/// rounds below one second.
#[test]
fn predictions_never_round_below_one_second() {
    use qpredict::predict::RunTimePredictor;
    for seed in 0u64..40 {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut tiny = synthetic::toy(40, 16, seed);
        for j in &mut tiny.jobs {
            j.runtime = Dur(1);
        }
        for kind in PredictorKind::ALL {
            let mut p = kind.build(&tiny);
            for j in tiny.jobs.iter().take(10 + rng.gen_index(30)) {
                RunTimePredictor::on_complete(&mut p, j);
            }
            let pred = p.predict(&tiny.jobs[39], Dur::ZERO);
            assert!(
                pred.estimate >= Dur(1),
                "{}: estimate {:?} fell below the one-second floor (seed {seed})",
                kind.name(),
                pred.estimate
            );
        }
    }
}

/// Profile vs brute force: `free_at` and `earliest_fit` agree with a
/// naive per-second free-node array on random running sets, with random
/// reservations applied to both as the exercise proceeds.
#[test]
fn profile_matches_per_second_oracle() {
    const HORIZON: i64 = 4_000;
    for seed in 0u64..40 {
        let mut rng = Rng64::seed_from_u64(seed);
        let machine = 1 + rng.gen_index(31) as u32;
        let now = rng.gen_range_i64(0, 99);
        let mut acc = 0u32;
        let running: Vec<(u32, Time)> = (0..rng.gen_index(6))
            .filter_map(|_| {
                let n = 1 + rng.gen_index(machine as usize) as u32;
                let end = now + rng.gen_range_i64(1, 399);
                if acc + n <= machine {
                    acc += n;
                    Some((n, Time(end)))
                } else {
                    None
                }
            })
            .collect();
        let mut p = Profile::new(machine, Time(now), &running);
        // The oracle: free nodes for every second of [now, now+HORIZON);
        // everything is free past the horizon.
        let mut free = vec![machine; HORIZON as usize];
        for &(n, end) in &running {
            for t in now..end.0.min(now + HORIZON) {
                free[(t - now) as usize] -= n;
            }
        }
        let free_at = |free: &[u32], t: i64| -> u32 {
            if t >= now + HORIZON {
                machine
            } else {
                free[(t - now) as usize]
            }
        };
        for _ in 0..(1 + rng.gen_index(8)) {
            for t in now..(now + 1000) {
                assert_eq!(
                    p.free_at(Time(t)),
                    free_at(&free, t),
                    "seed {seed}: free_at({t}) disagrees with per-second scan"
                );
            }
            let nodes = 1 + rng.gen_index(machine as usize) as u32;
            let d = Dur(rng.gen_range_i64(1, 199));
            let at = p.earliest_fit(nodes, d);
            let mut want = now;
            while let Some(busy) = (want..want + d.0).find(|&t| free_at(&free, t) < nodes) {
                want = busy + 1;
            }
            assert_eq!(
                at.0, want,
                "seed {seed}: earliest_fit({nodes}, {d:?}) disagrees with first-window scan"
            );
            p.reserve(at, d, nodes);
            assert!(p.check().is_ok(), "seed {seed}");
            for t in at.0..(at.0 + d.0).min(now + HORIZON) {
                free[(t - now) as usize] -= nodes;
            }
        }
    }
}

/// Forecast monotonicity: a target behind a *longer-believed* queue
/// never starts earlier under FCFS.
#[test]
fn fcfs_forecast_monotone_in_predictions() {
    for seed in 0u64..64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let base = rng.gen_range_i64(10, 499);
        let extra = rng.gen_range_i64(0, 499);
        let mut w = Workload::new("t", 8);
        w.jobs = vec![
            JobBuilder::new()
                .nodes(8)
                .runtime(Dur(base))
                .build(JobId(0)),
            JobBuilder::new()
                .nodes(8)
                .runtime(Dur(50))
                .submit(Time(1))
                .build(JobId(1)),
        ];
        w.finalize();
        let snap = qpredict::sim::Snapshot {
            now: Time(1),
            free_nodes: 0,
            running: vec![(JobId(0), Time(0))],
            queued: vec![(JobId(1), 0)],
        };
        let short = forecast_start(
            &w,
            Algorithm::Fcfs,
            &snap,
            |_, e| Dur(base).max(e + Dur(1)),
            |_, e| Dur(base).max(e + Dur(1)),
            JobId(1),
        );
        let long = forecast_start(
            &w,
            Algorithm::Fcfs,
            &snap,
            |_, e| Dur(base + extra).max(e + Dur(1)),
            |_, e| Dur(base + extra).max(e + Dur(1)),
            JobId(1),
        );
        assert!(long >= short, "seed {seed}");
    }
}
