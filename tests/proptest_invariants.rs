//! Property-based tests over the core invariants of the stack.

use proptest::prelude::*;

use qpredict::core::{forecast_start, PredictorKind};
use qpredict::prelude::*;
use qpredict::sim::{ActualEstimator, Profile, Simulation};
use qpredict::workload::synthetic;

/// Strategy: a small random workload on an 8–64 node machine.
fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        2u32..=6,                        // machine = 2^k nodes
        1usize..=60,                     // jobs
        proptest::collection::vec((0i64..5_000, 1u32..=64, 1i64..2_000, 1i64..4_000), 1..60),
    )
        .prop_map(|(mexp, _n, specs)| {
            let machine = 1u32 << mexp;
            let mut w = Workload::new("prop", machine);
            w.jobs = specs
                .into_iter()
                .enumerate()
                .map(|(i, (submit, nodes, rt, maxrt))| {
                    JobBuilder::new()
                        .submit(Time(submit))
                        .nodes(nodes.min(machine))
                        .runtime(Dur(rt))
                        .max_runtime(Dur(maxrt.max(rt)))
                        .build(JobId(i as u32))
                })
                .collect();
            w.finalize();
            w
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm finishes every job; no job starts early; run
    /// times pass through untouched; the machine is never oversubscribed.
    #[test]
    fn engine_invariants(wl in arb_workload(), alg_idx in 0usize..3) {
        let alg = [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill][alg_idx];
        let result = Simulation::run(&wl, alg, &mut ActualEstimator);
        prop_assert_eq!(result.outcomes.len(), wl.len());
        for o in &result.outcomes {
            prop_assert!(o.start >= o.submit);
            prop_assert_eq!(o.finish - o.start, wl.job(o.id).runtime);
        }
        // Node accounting sweep.
        let mut events: Vec<(Time, i64)> = Vec::new();
        for o in &result.outcomes {
            events.push((o.start, wl.job(o.id).nodes as i64));
            events.push((o.finish, -(wl.job(o.id).nodes as i64)));
        }
        events.sort_by_key(|&(t, d)| (t, d));
        let mut used = 0i64;
        for (_, d) in events {
            used += d;
            prop_assert!(used <= wl.machine_nodes as i64);
        }
    }

    /// FCFS preserves arrival order of start times.
    #[test]
    fn fcfs_starts_in_arrival_order(wl in arb_workload()) {
        let result = Simulation::run(&wl, Algorithm::Fcfs, &mut ActualEstimator);
        for pair in result.outcomes.windows(2) {
            prop_assert!(pair[0].start <= pair[1].start,
                "FCFS must start jobs in arrival order");
        }
    }

    /// FCFS + oracle forecasts are exact for every job of every random
    /// workload (the Table 4 argument, property-tested).
    #[test]
    fn fcfs_oracle_forecast_exact(wl in arb_workload()) {
        let out = qpredict::core::run_wait_prediction(
            &wl, Algorithm::Fcfs, PredictorKind::Actual);
        prop_assert_eq!(out.wait_errors.mean_abs_error_min(), 0.0);
    }

    /// Backfill never delays a job past the start FCFS would give it
    /// when the scheduler knows exact run times... that guarantee holds
    /// only against the *reservation*, so assert the weaker, true
    /// invariant: with exact estimates, no job's backfill start is later
    /// than its start in a machine that runs jobs strictly one at a time
    /// in arrival order (the worst feasible schedule).
    #[test]
    fn backfill_beats_serial_execution(wl in arb_workload()) {
        let bf = Simulation::run(&wl, Algorithm::Backfill, &mut ActualEstimator);
        // Strictly serial: each job starts after all earlier jobs finished.
        let mut t = Time::ZERO;
        for (o, j) in bf.outcomes.iter().zip(&wl.jobs) {
            t = t.max(j.submit);
            prop_assert!(o.start <= t + Dur(
                wl.jobs.iter().map(|x| x.runtime.seconds()).sum::<i64>()),
                "absurdly late start");
            t += j.runtime;
            let _ = o;
        }
    }

    /// Profile: any reservation placed at `earliest_fit` keeps the
    /// profile valid and the window genuinely free.
    #[test]
    fn profile_fit_reserve_invariant(
        running in proptest::collection::vec((1u32..=16, 1i64..500), 0..6),
        requests in proptest::collection::vec((1u32..=32, 1i64..300), 1..20),
    ) {
        let machine = 32u32;
        let used: u32 = running.iter().map(|&(n, _)| n.min(8)).sum::<u32>().min(machine);
        let _ = used;
        // Keep running jobs within capacity by construction.
        let mut acc = 0u32;
        let running_ok: Vec<(u32, Time)> = running
            .iter()
            .filter_map(|&(n, end)| {
                if acc + n <= machine {
                    acc += n;
                    Some((n, Time(end)))
                } else {
                    None
                }
            })
            .collect();
        let mut p = Profile::new(machine, Time(0), &running_ok);
        for (nodes, dur) in requests {
            let nodes = nodes.min(machine);
            let d = Dur(dur);
            let at = p.earliest_fit(nodes, d);
            prop_assert!(p.free_at(at) >= nodes);
            p.reserve(at, d, nodes);
            prop_assert!(p.check().is_ok());
        }
    }

    /// Interarrival compression by a rational factor preserves job count,
    /// run times, and ordering.
    #[test]
    fn compression_preserves_structure(wl in arb_workload(), f in 1u32..=5) {
        let c = qpredict::workload::compress_interarrivals(&wl, f as f64);
        prop_assert_eq!(c.len(), wl.len());
        prop_assert!(c.validate().is_ok());
        // Note: jobs may be renumbered if equal submit times reorder, so
        // compare multisets of runtimes.
        let mut a: Vec<i64> = wl.jobs.iter().map(|j| j.runtime.seconds()).collect();
        let mut b: Vec<i64> = c.jobs.iter().map(|j| j.runtime.seconds()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Predictions from every predictor are positive and at least
    /// `elapsed + 1` for running jobs, whatever the history.
    #[test]
    fn predictions_respect_elapsed(seed in 0u64..50, elapsed in 0i64..10_000) {
        let wl = synthetic::toy(60, 16, seed);
        for kind in PredictorKind::ALL {
            let mut p = kind.build(&wl);
            use qpredict::predict::RunTimePredictor;
            // Train on the first half.
            for j in wl.jobs.iter().take(30) {
                p.on_complete(j);
            }
            let pred = p.predict(&wl.jobs[40], Dur(elapsed));
            prop_assert!(pred.estimate >= Dur(elapsed + 1),
                "{}: {:?} given elapsed {}", kind.name(), pred.estimate, elapsed);
        }
    }

    /// Forecast monotonicity: a target behind a *longer-believed* queue
    /// never starts earlier under FCFS.
    #[test]
    fn fcfs_forecast_monotone_in_predictions(
        base in 10i64..500,
        extra in 0i64..500,
    ) {
        let mut w = Workload::new("t", 8);
        w.jobs = vec![
            JobBuilder::new().nodes(8).runtime(Dur(base)).build(JobId(0)),
            JobBuilder::new().nodes(8).runtime(Dur(50)).submit(Time(1)).build(JobId(1)),
        ];
        w.finalize();
        let snap = qpredict::sim::Snapshot {
            now: Time(1),
            free_nodes: 0,
            running: vec![(JobId(0), Time(0))],
            queued: vec![(JobId(1), 0)],
        };
        let short = forecast_start(&w, Algorithm::Fcfs, &snap,
            |_, e| Dur(base).max(e + Dur(1)), |_, e| Dur(base).max(e + Dur(1)), JobId(1));
        let long = forecast_start(&w, Algorithm::Fcfs, &snap,
            |_, e| Dur(base + extra).max(e + Dur(1)),
            |_, e| Dur(base + extra).max(e + Dur(1)), JobId(1));
        prop_assert!(long >= short);
    }
}
