//! End-to-end tests of the `qpredict` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qpredict"))
}

#[test]
fn simulate_toy_reports_metrics() {
    let out = bin()
        .args(["simulate", "toy", "--jobs", "300", "--nodes", "32"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("utilization"), "{text}");
    assert!(text.contains("mean wait"), "{text}");
    assert!(text.contains("run-time predictions"), "{text}");
}

#[test]
fn generate_then_analyze_round_trip() {
    let dir = std::env::temp_dir().join("qpredict_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let swf = dir.join("trace.swf");
    let out = bin()
        .args([
            "generate",
            "toy",
            "--jobs",
            "120",
            "--nodes",
            "32",
            "--out",
            swf.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(swf.exists());

    let out = bin()
        .args(["analyze", swf.to_str().unwrap(), "--nodes", "32"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests: 120"), "{text}");
    assert!(text.contains("identity groupings"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn waitpred_runs_on_site() {
    let out = bin()
        .args([
            "waitpred",
            "SDSC95",
            "--jobs",
            "200",
            "--alg",
            "lwf",
            "--predictor",
            "maxrt",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wait MAE"), "{text}");
}

#[test]
fn gantt_emits_csv() {
    let out = bin()
        .args(["gantt", "toy", "--jobs", "50", "--nodes", "16"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("job,start,finish,nodes"));
    assert_eq!(lines.count(), 50);
}

#[test]
fn search_runs_and_reports_health() {
    let out = bin()
        .args([
            "search",
            "toy",
            "--jobs",
            "100",
            "--nodes",
            "32",
            "--generations",
            "2",
            "--population",
            "8",
            "--seed",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best MAE"), "{text}");
    assert!(text.contains("health"), "{text}");
    assert!(text.contains("attempts"), "{text}");
}

#[test]
fn search_checkpoint_then_resume_round_trip() {
    let dir = std::env::temp_dir().join("qpredict_cli_resume");
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt_dir = dir.to_str().unwrap();
    let base = [
        "search",
        "toy",
        "--jobs",
        "100",
        "--nodes",
        "32",
        "--population",
        "8",
        "--seed",
        "7",
        "--checkpoint-dir",
        ckpt_dir,
    ];

    let out = bin()
        .args(base)
        .args(["--generations", "2"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("ga.ckpt").exists(), "checkpoint written");

    let out = bin()
        .args(base)
        .args(["--generations", "4", "--resume"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("resumed from generation 2"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn search_resume_without_checkpoint_dir_exits_2() {
    let out = bin()
        .args(["search", "toy", "--jobs", "50", "--resume"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--resume requires --checkpoint-dir"), "{err}");
}

#[test]
fn search_resume_with_missing_checkpoint_exits_2() {
    let dir = std::env::temp_dir().join("qpredict_cli_no_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .args([
            "search",
            "toy",
            "--jobs",
            "50",
            "--resume",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot resume search"), "{err}");
    assert!(err.contains("ga.ckpt"), "{err}");
}

#[test]
fn search_resume_with_corrupt_checkpoint_exits_2() {
    let dir = std::env::temp_dir().join("qpredict_cli_corrupt_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ga.ckpt"), "qpredict-ga-checkpoint v1\ngarbage\n").unwrap();
    let out = bin()
        .args([
            "search",
            "toy",
            "--jobs",
            "50",
            "--resume",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot resume search"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn search_rejects_bad_fault_eval_rate() {
    let out = bin()
        .args(["search", "toy", "--jobs", "50", "--fault-eval", "1.5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--fault-eval"),
        "stderr names the bad flag"
    );
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = bin().args(["simulate"]).output().expect("binary runs");
    assert!(!out.status.success());
    let out = bin()
        .args(["frobnicate", "toy"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let out = bin()
        .args(["simulate", "NERSC"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown site"));
}

#[test]
fn events_then_serve_round_trip_with_resume() {
    let dir = std::env::temp_dir().join("qpredict_cli_serve_rt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ev = dir.join("events.log");
    let out = bin()
        .args([
            "events",
            "toy",
            "--jobs",
            "30",
            "--query-every",
            "5",
            "--out",
            ev.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Uninterrupted reference run.
    let ref_out = dir.join("ref.out");
    let out = bin()
        .args([
            "serve",
            ev.to_str().unwrap(),
            "--state-dir",
            dir.join("ref-state").to_str().unwrap(),
            "--snapshot-every",
            "16",
            "--out",
            ref_out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Interrupted run (a prefix of the stream), then resume over the full
    // stream into the same output log.
    let text = std::fs::read_to_string(&ev).unwrap();
    let cut: String = text.lines().take(40).map(|l| format!("{l}\n")).collect();
    let part = dir.join("events.part.log");
    std::fs::write(&part, cut).unwrap();
    let state = dir.join("state");
    let r_out = dir.join("resumed.out");
    let out = bin()
        .args([
            "serve",
            part.to_str().unwrap(),
            "--state-dir",
            state.to_str().unwrap(),
            "--snapshot-every",
            "16",
            "--out",
            r_out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let out = bin()
        .args([
            "serve",
            ev.to_str().unwrap(),
            "--state-dir",
            state.to_str().unwrap(),
            "--resume",
            "--snapshot-every",
            "16",
            "--out",
            r_out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("recovered"));
    assert_eq!(
        std::fs::read_to_string(&r_out).unwrap(),
        std::fs::read_to_string(&ref_out).unwrap(),
        "resumed output must match the uninterrupted reference"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_resume_without_state_dir_exits_2() {
    let out = bin()
        .args(["serve", "-", "--resume"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume requires --state-dir"),
        "stderr names the missing flag"
    );
}

#[test]
fn serve_rejects_bad_fsync_and_zero_caps() {
    let out = bin()
        .args(["serve", "-", "--fsync", "sometimes"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fsync"));

    let out = bin()
        .args(["serve", "-", "--max-jobs", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-jobs"));

    let out = bin()
        .args(["serve", "-", "--max-history", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-history"));
}

#[test]
fn serve_rejects_unhosted_predictor() {
    let out = bin()
        .args(["serve", "-", "--predictor", "actual"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("serve hosts"),
        "stderr lists the supported predictors"
    );
}

#[test]
fn serve_fresh_open_on_existing_wal_exits_2() {
    let dir = std::env::temp_dir().join("qpredict_cli_serve_wal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ev = dir.join("ev.log");
    std::fs::write(&ev, "submit 1 100 nodes=4\nfinish 1 400\n").unwrap();
    let state = dir.join("state");
    let run = |extra: &[&str]| {
        let mut args = vec![
            "serve",
            ev.to_str().unwrap(),
            "--state-dir",
            state.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        bin().args(&args).output().expect("binary runs")
    };
    assert!(run(&[]).status.success());
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resume"),
        "stderr tells the operator to pass --resume"
    );
    assert!(run(&["--resume"]).status.success());
    std::fs::remove_dir_all(&dir).ok();
}
