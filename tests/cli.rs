//! End-to-end tests of the `qpredict` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qpredict"))
}

#[test]
fn simulate_toy_reports_metrics() {
    let out = bin()
        .args(["simulate", "toy", "--jobs", "300", "--nodes", "32"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("utilization"), "{text}");
    assert!(text.contains("mean wait"), "{text}");
    assert!(text.contains("run-time predictions"), "{text}");
}

#[test]
fn generate_then_analyze_round_trip() {
    let dir = std::env::temp_dir().join("qpredict_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let swf = dir.join("trace.swf");
    let out = bin()
        .args([
            "generate",
            "toy",
            "--jobs",
            "120",
            "--nodes",
            "32",
            "--out",
            swf.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(swf.exists());

    let out = bin()
        .args(["analyze", swf.to_str().unwrap(), "--nodes", "32"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests: 120"), "{text}");
    assert!(text.contains("identity groupings"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn waitpred_runs_on_site() {
    let out = bin()
        .args([
            "waitpred",
            "SDSC95",
            "--jobs",
            "200",
            "--alg",
            "lwf",
            "--predictor",
            "maxrt",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wait MAE"), "{text}");
}

#[test]
fn gantt_emits_csv() {
    let out = bin()
        .args(["gantt", "toy", "--jobs", "50", "--nodes", "16"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("job,start,finish,nodes"));
    assert_eq!(lines.count(), 50);
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = bin().args(["simulate"]).output().expect("binary runs");
    assert!(!out.status.success());
    let out = bin()
        .args(["frobnicate", "toy"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let out = bin()
        .args(["simulate", "NERSC"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown site"));
}
