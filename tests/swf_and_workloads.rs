//! Integration tests for trace I/O and the synthetic site generators.

use qpredict::core::{run_scheduling, PredictorKind};
use qpredict::prelude::*;
use qpredict::workload::{swf, synthetic};

/// SWF round trip at scale preserves everything SWF can represent, and
/// the reparsed trace drives the scheduler to identical outcomes.
#[test]
fn swf_round_trip_preserves_schedule() {
    let wl = synthetic::toy(800, 64, 201);
    let text = swf::write(&wl);
    let back = swf::parse("back", wl.machine_nodes, &text).unwrap();
    assert_eq!(back.len(), wl.len());
    for (a, b) in wl.jobs.iter().zip(&back.jobs) {
        assert_eq!(a.submit, b.submit);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.max_runtime, b.max_runtime);
    }
    // Schedule both under FCFS (identity-independent): outcomes match.
    use qpredict::sim::{ActualEstimator, Simulation};
    let x = Simulation::run(&wl, Algorithm::Fcfs, &mut ActualEstimator);
    let y = Simulation::run(&back, Algorithm::Fcfs, &mut ActualEstimator);
    for (a, b) in x.outcomes.iter().zip(&y.outcomes) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.finish, b.finish);
    }
}

/// Real-trace replacement path: an SWF trace (here synthesized) runs the
/// whole experiment pipeline, exercising user/executable/queue symbols
/// created by the parser.
#[test]
fn swf_trace_drives_experiments() {
    let wl = synthetic::toy(500, 32, 202);
    let text = swf::write(&wl);
    let back = swf::parse("swf", 32, &text).unwrap();
    let out = run_scheduling(&back, Algorithm::Backfill, PredictorKind::Smith);
    assert_eq!(out.metrics.n_jobs, 500);
    assert!(out.runtime_errors.count() > 0);
}

/// The four site models hit their Table 1 calibration targets at full
/// size (this is the one test that generates the full-size traces).
#[test]
fn site_models_hit_table1_targets_at_full_size() {
    for (name, requests, mean_rt, load) in [
        ("ANL", 7994usize, 97.75, 0.715),
        ("CTC", 13_217, 171.14, 0.525),
        ("SDSC95", 22_885, 108.21, 0.425),
        ("SDSC96", 22_337, 166.98, 0.48),
    ] {
        let wl = synthetic::by_name(name).unwrap();
        wl.validate().unwrap();
        let s = WorkloadStats::of(&wl);
        assert_eq!(s.requests, requests, "{name}");
        assert!(
            (s.mean_runtime_min - mean_rt).abs() / mean_rt < 0.01,
            "{name}: mean rt {:.2} vs target {mean_rt}",
            s.mean_runtime_min
        );
        assert!(
            (s.offered_load - load).abs() < 0.03,
            "{name}: offered load {:.3} vs target {load}",
            s.offered_load
        );
    }
}

/// SDSC queues partition the workload in a runtime-correlated way: the
/// derived per-queue maxima must span at least an order of magnitude.
#[test]
fn sdsc_queues_correlate_with_runtime() {
    let mut spec = synthetic::sites::spec_by_name("SDSC95").unwrap();
    spec.n_jobs = 3000;
    let wl = synthetic::generate(&spec);
    let maxima = wl.derive_queue_max_runtimes();
    let named: Vec<f64> = maxima
        .iter()
        .filter(|(q, _)| q.is_some())
        .map(|(_, d)| d.as_secs_f64())
        .collect();
    assert!(
        named.len() >= 10,
        "expected many queues, got {}",
        named.len()
    );
    let hi = named.iter().cloned().fold(f64::MIN, f64::max);
    let lo = named.iter().cloned().fold(f64::MAX, f64::min);
    assert!(hi / lo > 10.0, "queue maxima span too narrow: {lo}..{hi}");
}

/// Workloads from different seeds differ, same seeds agree (generator
/// determinism at the API boundary).
#[test]
fn generator_determinism_boundary() {
    let a = synthetic::toy(200, 32, 7);
    let b = synthetic::toy(200, 32, 7);
    let c = synthetic::toy(200, 32, 8);
    assert_eq!(a.jobs, b.jobs);
    assert_ne!(a.jobs, c.jobs);
}
