//! Integration tests for the observability layer: spans and counters
//! flow from instrumented library code into the thread-local registry,
//! recording is inert when off, and a full run report round-trips
//! through the JSON writer/parser and schema validator.
//!
//! The recording flag is process-global while the registry is
//! thread-local, so every test here serializes on one mutex and leaves
//! the flag off when done.

use std::sync::Mutex;

use qpredict::core::{run_scheduling, PredictorKind};
use qpredict::obs::{self, json::Json, report};
use qpredict::sim::Algorithm;
use qpredict::workload::synthetic::toy;

static FLAG: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FLAG.lock().unwrap_or_else(|e| e.into_inner())
}

/// A scheduling run populates the seams the tentpole names: sim spans,
/// predictor spans, and cache counters, all nested under the
/// run-scheduling root span.
#[test]
fn scheduling_run_populates_spans_and_counters() {
    let _guard = locked();
    obs::set_recording(true);
    obs::reset();
    let wl = toy(60, 16, 5);
    let out = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Smith);
    obs::set_recording(false);
    let snap = obs::snapshot();
    obs::reset();

    let root = snap.span("run.scheduling").expect("root span recorded");
    assert_eq!(root.count, 1);
    let sim = snap
        .span("run.scheduling/sim.run")
        .expect("nested sim span");
    assert_eq!(sim.count, 1);
    assert!(sim.total_ns <= root.total_ns, "child cannot exceed parent");
    assert!(
        snap.span("run.scheduling/sim.run/sim.schedule/smith.predict")
            .is_some(),
        "predictor span nests under the schedule pass: {:?}",
        snap.spans.iter().map(|(l, _)| l).collect::<Vec<_>>()
    );
    assert_eq!(
        snap.counter("sim.jobs_started"),
        wl.len() as u64,
        "every job starts exactly once"
    );
    assert_eq!(snap.counter("sim.jobs_completed"), wl.len() as u64);
    let hits = snap.counter("cache.hits");
    let misses = snap.counter("cache.misses");
    assert!(misses > 0, "cold cache must miss at least once");
    assert!(
        hits + misses >= out.runtime_errors.count(),
        "every scored prediction went through the cache \
         (hits {hits} + misses {misses} < scored {})",
        out.runtime_errors.count()
    );
}

/// With recording off (the default), instrumented runs leave the
/// registry completely empty.
#[test]
fn recording_off_is_inert() {
    let _guard = locked();
    obs::set_recording(false);
    obs::reset();
    let wl = toy(40, 16, 6);
    let _ = run_scheduling(&wl, Algorithm::Lwf, PredictorKind::Gibbons);
    let snap = obs::snapshot();
    assert!(snap.spans.is_empty(), "spans leaked: {:?}", snap.spans);
    assert!(
        snap.counters.is_empty(),
        "counters leaked: {:?}",
        snap.counters
    );
}

/// The full report pipeline: record a run, build the report, serialize,
/// re-parse, and validate against the version-1 schema.
#[test]
fn run_report_round_trips_through_schema_validation() {
    let _guard = locked();
    obs::set_recording(true);
    obs::reset();
    let wl = toy(50, 16, 7);
    let out = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Smith);
    obs::set_recording(false);
    let snap = obs::snapshot();
    obs::reset();

    let args: Vec<String> = ["simulate", "toy", "--jobs", "50", "--nodes", "16"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rep = report::RunReport::new("simulate", &args);
    rep.metric("n_jobs", Json::Num(out.metrics.n_jobs as f64));
    rep.metric("mean_wait_min", Json::Num(out.metrics.mean_wait.minutes()));
    let json = rep.to_json(&snap);
    let text = json.to_pretty();
    let parsed = Json::parse(&text).expect("report text parses back");
    assert_eq!(parsed, json, "serialize/parse must be lossless");
    report::validate(&parsed, true).expect("schema-valid with activity");
    assert_eq!(
        parsed
            .get("config")
            .and_then(|c| c.get("fingerprint"))
            .and_then(Json::as_str)
            .map(str::len),
        Some(16)
    );
    let spans = parsed.get("spans").and_then(Json::as_arr).unwrap();
    assert!(
        spans
            .iter()
            .any(|s| s.get("label").and_then(Json::as_str) == Some("run.scheduling")),
        "root span present in serialized report"
    );
}
